//! Prometheus-style plain-text metrics snapshot.
//!
//! One line per sample in the classic exposition format:
//!
//! ```text
//! # TYPE audo_icache_hits counter
//! audo_icache_hits 4211
//! # TYPE audo_emem_fill_ratio gauge
//! audo_emem_fill_ratio 0.25
//! # TYPE audo_drain_chunk_bytes histogram
//! audo_drain_chunk_bytes_bucket{le="63"} 2
//! audo_drain_chunk_bytes_bucket{le="+Inf"} 9
//! audo_drain_chunk_bytes_sum 512
//! audo_drain_chunk_bytes_count 9
//! ```
//!
//! Names are sanitised to the Prometheus charset (`[a-zA-Z0-9_:]`, other
//! characters become `_`), everything is emitted in sorted name order, and
//! no timestamps are attached (the snapshot is implicitly "at the end of
//! the simulated run"), so identical runs render byte-identical snapshots.

use std::fmt::Write as _;

use crate::Registry;

/// Sanitises an instrument name into the Prometheus metric charset.
#[must_use]
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders the snapshot. `prefix` is prepended to every metric name
/// (conventionally `"audo_"`).
#[must_use]
pub fn render(reg: &Registry, prefix: &str) -> String {
    let mut out = String::new();
    for (name, value) in reg.counters() {
        let n = sanitize(&format!("{prefix}{name}"));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in reg.gauges() {
        let n = sanitize(&format!("{prefix}{name}"));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in reg.histograms() {
        let n = sanitize(&format!("{prefix}{name}"));
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.nonzero_buckets() {
            cumulative += count;
            if bound != u64::MAX {
                let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_sorted() {
        let mut reg = Registry::new();
        reg.add("b.hits", 2);
        reg.add("a.hits", 1);
        reg.gauge("fill", 0.25);
        let text = render(&reg, "audo_");
        let a = text.find("audo_a_hits 1").unwrap();
        let b = text.find("audo_b_hits 2").unwrap();
        assert!(a < b, "sorted name order");
        assert!(text.contains("# TYPE audo_fill gauge"));
        assert!(text.contains("audo_fill 0.25"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut reg = Registry::new();
        reg.observe("lat", 1);
        reg.observe("lat", 3);
        reg.observe("lat", 3);
        let text = render(&reg, "");
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 7"));
        assert!(text.contains("lat_count 3"));
    }

    #[test]
    fn sanitize_replaces_invalid_chars() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn disabled_registry_renders_empty() {
        assert!(render(&Registry::disabled(), "audo_").is_empty());
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let mut reg = Registry::new();
            reg.add("x", 7);
            reg.observe("h", 100);
            reg.gauge("g", 1.5);
            render(&reg, "audo_")
        };
        assert_eq!(build(), build());
    }
}
