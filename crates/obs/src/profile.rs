//! Block-level sampling-profile model.
//!
//! The execution tiers' decode caches already know basic-block
//! boundaries, so a low-overhead profiler falls out of bookkeeping they
//! do anyway: the functional ISS counts block *executions* and the
//! cycle-level pipeline additionally charges every one of its cycles —
//! retire cycles and per-cause stall cycles — to the block that owns the
//! retiring/stalled instruction. This module is the deterministic data
//! model those counters land in: [`BlockProfile`] (keyed, mergeable
//! counters plus an explicit unattributed bucket so cycle totals always
//! balance), [`SymbolMap`] symbolization, folded-stack flamegraph
//! synthesis from a static [`CallGraph`] (no trace needed), and the
//! text/JSON renderers the `profile` CLI and the fleet service share.
//!
//! Everything here is contractually byte-identical across runs and
//! worker counts: ordered containers only, no wall clock, and every
//! renderer sorts with total, documented tie-breaks.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use audo_common::events::StallReason;

/// Identity of one profiled basic block.
///
/// Blocks are keyed by the base address of the memory region their bytes
/// live in, the block's byte offset inside that region, and the region's
/// write-generation counter at decode time. The generation stamp keeps
/// self-modified or overlay-swapped code distinct: after a store into
/// the region, re-executions of the same addresses profile under a new
/// key instead of polluting the stale one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockKey {
    /// Base address of the containing memory region.
    pub region: u32,
    /// Byte offset of the block start within the region.
    pub offset: u32,
    /// Write generation of the region when the block was decoded.
    pub generation: u64,
}

impl BlockKey {
    /// Absolute address of the block start.
    #[must_use]
    pub fn addr(&self) -> u32 {
        self.region.wrapping_add(self.offset)
    }
}

/// Counters attributed to one block (or to the unattributed bucket).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCounts {
    /// Times execution entered the block at its first instruction.
    pub executions: u64,
    /// Instructions retired while executing the block.
    pub instructions: u64,
    /// Bytes from the block start covered by recorded instructions (the
    /// furthest `instruction end - block start` seen), for disassembly.
    pub span: u32,
    /// Cycles in which an instruction of this block retired
    /// (cycle-level tier only; zero on the functional tier).
    pub retire_cycles: u64,
    /// Stall cycles charged to this block, by cause
    /// (indexed by [`StallReason::index`]).
    pub stall_cycles: [u64; StallReason::COUNT],
}

impl BlockCounts {
    /// Total stall cycles across all causes.
    #[must_use]
    pub fn stall_total(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Total cycles attributed to the block: `retire + Σ stalls`. Zero on
    /// the functional tier, which has no notion of time.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.retire_cycles + self.stall_total()
    }

    /// The stall cause with the most cycles charged, if any cycles were
    /// charged at all. Ties break toward the lower [`StallReason::index`].
    #[must_use]
    pub fn dominant_stall(&self) -> Option<StallReason> {
        let mut best: Option<StallReason> = None;
        for reason in StallReason::ALL {
            let c = self.stall_cycles[reason.index()];
            if c > 0 && best.is_none_or(|b| c > self.stall_cycles[b.index()]) {
                best = Some(reason);
            }
        }
        best
    }

    /// Adds another set of counters into this one (`span` takes the max).
    pub fn merge(&mut self, other: &BlockCounts) {
        self.executions += other.executions;
        self.instructions += other.instructions;
        self.span = self.span.max(other.span);
        self.retire_cycles += other.retire_cycles;
        for (a, b) in self.stall_cycles.iter_mut().zip(other.stall_cycles) {
            *a += b;
        }
    }

    /// The deterministic hotness ordering used by every renderer: cycles,
    /// then instructions, then executions (all descending).
    #[must_use]
    pub fn weight(&self) -> (u64, u64, u64) {
        (self.cycles(), self.instructions, self.executions)
    }
}

/// A deterministic per-block profile.
///
/// The recording methods are branch-free on the disabled path by
/// construction — the tiers hold an `Option<Box<BlockProfile>>` and only
/// call in when profiling is on — and cheap enough on the enabled path
/// (one ordered-map lookup per event) that profiling stays usable on
/// full workloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockProfile {
    /// Per-block counters, ordered by [`BlockKey`].
    pub blocks: BTreeMap<BlockKey, BlockCounts>,
    /// Cycles (and instructions) that could not be tied to a block:
    /// cold-start fetch before any block identity exists, interrupt-entry
    /// serialization, and instructions carved from unstamped bytes. Kept
    /// explicit so `Σ per-block cycles + unattributed == retire + Σ
    /// stalls == cycles` holds exactly.
    pub unattributed: BlockCounts,
}

impl BlockProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> BlockProfile {
        BlockProfile::default()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.unattributed == BlockCounts::default()
    }

    fn counts_mut(&mut self, key: Option<BlockKey>) -> &mut BlockCounts {
        match key {
            Some(k) => self.blocks.entry(k).or_default(),
            None => &mut self.unattributed,
        }
    }

    /// Records one entry into the block (execution reached its first
    /// instruction).
    pub fn record_entry(&mut self, key: BlockKey) {
        self.blocks.entry(key).or_default().executions += 1;
    }

    /// Records one retired instruction whose encoding ends `end_offset`
    /// bytes after the block start (`None` = unattributable).
    pub fn record_instr(&mut self, key: Option<BlockKey>, end_offset: u32) {
        let c = self.counts_mut(key);
        c.instructions += 1;
        c.span = c.span.max(end_offset);
    }

    /// Charges one retire cycle to the block owning the first instruction
    /// retired this cycle (`None` = unattributable).
    pub fn record_retire_cycle(&mut self, key: Option<BlockKey>) {
        self.counts_mut(key).retire_cycles += 1;
    }

    /// Charges one stall cycle to the block owning the instruction that
    /// caused the stall (`None` = unattributable).
    pub fn record_stall_cycle(&mut self, key: Option<BlockKey>, reason: StallReason) {
        self.counts_mut(key).stall_cycles[reason.index()] += 1;
    }

    /// Merges another profile into this one. Merging is associative and
    /// commutative, so shard-folded aggregates equal serial folds.
    pub fn merge(&mut self, other: &BlockProfile) {
        for (key, counts) in &other.blocks {
            self.blocks.entry(*key).or_default().merge(counts);
        }
        self.unattributed.merge(&other.unattributed);
    }

    /// Sums every bucket (blocks plus unattributed) into one counter set.
    #[must_use]
    pub fn total(&self) -> BlockCounts {
        let mut t = self.unattributed;
        for counts in self.blocks.values() {
            t.merge(counts);
        }
        t
    }

    /// The `n` hottest blocks by [`BlockCounts::weight`], ties broken by
    /// ascending key — a total, deterministic order.
    #[must_use]
    pub fn top_blocks(&self, n: usize) -> Vec<(&BlockKey, &BlockCounts)> {
        let mut v: Vec<_> = self.blocks.iter().collect();
        v.sort_by(|(ka, ca), (kb, cb)| cb.weight().cmp(&ca.weight()).then(ka.cmp(kb)));
        v.truncate(n);
        v
    }
}

/// Address-to-name symbolization built from static analysis.
///
/// Function starts come from the recovered CFG (entry root, interrupt
/// vector roots, call-edge targets); named address ranges (the platform
/// memory map) act as a fallback so every block resolves to *something*
/// stable.
#[derive(Debug, Clone, Default)]
pub struct SymbolMap {
    /// `(start, name)` function entries, sorted by start address.
    funcs: Vec<(u32, String)>,
    /// `(base, len, name)` fallback ranges, sorted by base.
    regions: Vec<(u32, u32, String)>,
}

impl SymbolMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> SymbolMap {
        SymbolMap::default()
    }

    /// Registers a function entry point. The first name registered for an
    /// address wins (register roots before synthetic call targets).
    pub fn add_func(&mut self, start: u32, name: impl Into<String>) {
        match self.funcs.binary_search_by_key(&start, |&(s, _)| s) {
            Ok(_) => {}
            Err(at) => self.funcs.insert(at, (start, name.into())),
        }
    }

    /// Registers a named fallback address range.
    pub fn add_region(&mut self, base: u32, len: u32, name: impl Into<String>) {
        let at = self
            .regions
            .binary_search_by_key(&base, |&(b, _, _)| b)
            .unwrap_or_else(|e| e);
        self.regions.insert(at, (base, len, name.into()));
    }

    /// Registered function entries, sorted by start address.
    #[must_use]
    pub fn funcs(&self) -> &[(u32, String)] {
        &self.funcs
    }

    fn region_of(&self, addr: u32) -> Option<&(u32, u32, String)> {
        self.regions
            .iter()
            .find(|(base, len, _)| addr.wrapping_sub(*base) < *len)
    }

    /// Resolves an address to the containing function name, falling back
    /// to the named range and finally to `"?"`. A function only claims
    /// addresses inside its own fallback range, so code in one memory
    /// never inherits a symbol from another.
    #[must_use]
    pub fn resolve(&self, addr: u32) -> &str {
        let func = match self.funcs.binary_search_by_key(&addr, |&(s, _)| s) {
            Ok(i) => Some(&self.funcs[i]),
            Err(0) => None,
            Err(i) => Some(&self.funcs[i - 1]),
        };
        let region = self.region_of(addr);
        if let Some((start, name)) = func {
            let same_range = match (region, self.region_of(*start)) {
                (Some(a), Some(b)) => std::ptr::eq(a, b),
                (None, None) => true,
                _ => false,
            };
            if same_range {
                return name;
            }
        }
        region.map_or("?", |(_, _, name)| name.as_str())
    }
}

/// A static call graph over symbol names, used to synthesize folded
/// stacks from flat block counts without any execution trace.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Stack roots in discovery-priority order (entry first, then
    /// vectors); earlier roots claim reachable functions first.
    roots: Vec<String>,
    calls: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Creates an empty call graph.
    #[must_use]
    pub fn new() -> CallGraph {
        CallGraph::default()
    }

    /// Registers a stack root (ignored if already present).
    pub fn add_root(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.roots.contains(&name) {
            self.roots.push(name);
        }
    }

    /// Registers a caller → callee edge.
    pub fn add_call(&mut self, caller: impl Into<String>, callee: impl Into<String>) {
        self.calls
            .entry(caller.into())
            .or_default()
            .insert(callee.into());
    }

    /// One deterministic stack path per reachable function: each root in
    /// order claims everything it can reach (breadth-first, callees in
    /// name order) before the next root starts, the first discoverer
    /// fixing the path. Recursion cannot loop — a function already
    /// assigned a path is never reassigned.
    #[must_use]
    pub fn stack_paths(&self) -> BTreeMap<String, Vec<String>> {
        let mut paths: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<String> = std::collections::VecDeque::new();
        for root in &self.roots {
            if paths.contains_key(root) {
                continue;
            }
            paths.insert(root.clone(), vec![root.clone()]);
            queue.push_back(root.clone());
            while let Some(caller) = queue.pop_front() {
                let Some(callees) = self.calls.get(&caller) else {
                    continue;
                };
                let base = paths[&caller].clone();
                for callee in callees {
                    if !paths.contains_key(callee) {
                        let mut p = base.clone();
                        p.push(callee.clone());
                        paths.insert(callee.clone(), p);
                        queue.push_back(callee.clone());
                    }
                }
            }
        }
        paths
    }
}

/// Synthesizes a folded-stack flamegraph from flat block counts: each
/// block's weight (cycles on the cycle tier, retired instructions on the
/// functional tier) lands on its function's [`CallGraph::stack_paths`]
/// path. Unattributed weight folds under `[unattributed]`.
#[must_use]
pub fn flame_stacks(
    profile: &BlockProfile,
    symbols: &SymbolMap,
    calls: &CallGraph,
) -> crate::FoldedStacks {
    let paths = calls.stack_paths();
    let mut stacks = crate::FoldedStacks::new();
    let weight_of = |c: &BlockCounts| {
        if c.cycles() > 0 {
            c.cycles()
        } else {
            c.instructions
        }
    };
    for (key, counts) in &profile.blocks {
        let w = weight_of(counts);
        if w == 0 {
            continue;
        }
        let sym = symbols.resolve(key.addr());
        match paths.get(sym) {
            Some(path) => stacks.add(path, w),
            None => stacks.add(&[sym.to_string()], w),
        }
    }
    let w = weight_of(&profile.unattributed);
    if w > 0 {
        stacks.add(&["[unattributed]".to_string()], w);
    }
    stacks
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)] // reason: display-only percentage
        {
            part as f64 * 100.0 / whole as f64
        }
    }
}

/// Renders the top-`n` hot-block table. On the cycle tier rows rank and
/// percentage by attributed cycles; on the functional tier (no cycles
/// recorded anywhere) by retired instructions.
#[must_use]
pub fn render_hot_blocks(profile: &BlockProfile, symbols: &SymbolMap, n: usize) -> String {
    let total = profile.total();
    let timed = total.cycles() > 0;
    let (metric, whole) = if timed {
        ("cycles", total.cycles())
    } else {
        ("instructions", total.instructions)
    };
    let mut out = format!(
        "hot blocks: top {} of {} ({} {} total, {} unattributed)\n",
        n.min(profile.blocks.len()),
        profile.blocks.len(),
        whole,
        metric,
        if timed {
            profile.unattributed.cycles()
        } else {
            profile.unattributed.instructions
        },
    );
    out.push_str(
        "rank  addr        gen  symbol                  exec    instrs    cycles  share  dominant-stall\n",
    );
    for (rank, (key, c)) in profile.top_blocks(n).iter().enumerate() {
        let part = if timed { c.cycles() } else { c.instructions };
        let stall = c
            .dominant_stall()
            .map_or("-", audo_common::events::StallReason::key);
        let _ = writeln!(
            out,
            "{:>4}  0x{:08x} {:>4}  {:<22} {:>5} {:>9} {:>9}  {:>4.1}%  {}",
            rank + 1,
            key.addr(),
            key.generation,
            symbols.resolve(key.addr()),
            c.executions,
            c.instructions,
            c.cycles(),
            pct(part, whole),
            stall,
        );
    }
    out
}

/// Renders the top-`n` blocks with per-instruction disassembly.
///
/// `lister` maps `(block start address, span in bytes)` to disassembled
/// `(address, text)` lines; the caller owns the image and the
/// disassembler, keeping this crate free of ISA dependencies.
pub fn render_annotated<F>(
    profile: &BlockProfile,
    symbols: &SymbolMap,
    n: usize,
    mut lister: F,
) -> String
where
    F: FnMut(u32, u32) -> Vec<(u32, String)>,
{
    let total = profile.total();
    let timed = total.cycles() > 0;
    let whole = if timed {
        total.cycles()
    } else {
        total.instructions
    };
    let mut out = String::new();
    for (rank, (key, c)) in profile.top_blocks(n).iter().enumerate() {
        let part = if timed { c.cycles() } else { c.instructions };
        let stall = c
            .dominant_stall()
            .map_or("-", audo_common::events::StallReason::key);
        let _ = writeln!(
            out,
            "-- #{} {} @ 0x{:08x} gen {} — exec {}, instrs {}, cycles {} ({:.1}%), dominant stall {}",
            rank + 1,
            symbols.resolve(key.addr()),
            key.addr(),
            key.generation,
            c.executions,
            c.instructions,
            c.cycles(),
            pct(part, whole),
            stall,
        );
        for (addr, text) in lister(key.addr(), c.span) {
            let _ = writeln!(out, "   0x{addr:08x}  {text}");
        }
    }
    out
}

/// A serializable profile run: the profile plus identifying metadata and
/// pre-resolved symbols, round-trippable through deterministic JSON for
/// the `profile` CLI's `--json` / `--compare` modes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileDoc {
    /// Workload name the profile was taken from.
    pub workload: String,
    /// Execution tier (`"iss"` or `"pipeline"`).
    pub tier: String,
    /// Total simulated cycles of the run (zero on the functional tier).
    pub total_cycles: u64,
    /// Total instructions retired by the run.
    pub total_instructions: u64,
    /// The profile itself.
    pub profile: BlockProfile,
    /// Symbol per block, resolved at capture time.
    pub symbols: BTreeMap<BlockKey, String>,
}

impl ProfileDoc {
    /// Builds a document from a profile, resolving every block's symbol.
    #[must_use]
    pub fn new(
        workload: &str,
        tier: &str,
        total_cycles: u64,
        total_instructions: u64,
        profile: BlockProfile,
        symbols: &SymbolMap,
    ) -> ProfileDoc {
        let resolved = profile
            .blocks
            .keys()
            .map(|k| (*k, symbols.resolve(k.addr()).to_string()))
            .collect();
        ProfileDoc {
            workload: workload.to_string(),
            tier: tier.to_string(),
            total_cycles,
            total_instructions,
            profile,
            symbols: resolved,
        }
    }

    /// Deterministic JSON rendering (one block per line, keys in order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"workload\": \"{}\",", self.workload);
        let _ = writeln!(out, "  \"tier\": \"{}\",", self.tier);
        let _ = writeln!(out, "  \"total_cycles\": {},", self.total_cycles);
        let _ = writeln!(
            out,
            "  \"total_instructions\": {},",
            self.total_instructions
        );
        let _ = writeln!(
            out,
            "  \"unattributed\": {},",
            counts_json(&self.profile.unattributed)
        );
        out.push_str("  \"blocks\": [\n");
        let last = self.profile.blocks.len();
        for (i, (key, c)) in self.profile.blocks.iter().enumerate() {
            let sym = self.symbols.get(key).map_or("?", String::as_str);
            let _ = writeln!(
                out,
                "    {{\"region\": {}, \"offset\": {}, \"generation\": {}, \
                 \"symbol\": \"{}\", \"counts\": {}}}{}",
                key.region,
                key.offset,
                key.generation,
                sym,
                counts_json(c),
                if i + 1 < last { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the JSON produced by [`ProfileDoc::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_json(text: &str) -> Result<ProfileDoc, String> {
        let mut doc = ProfileDoc::default();
        for line in text.lines() {
            let t = line.trim();
            if let Some(v) = str_field(t, "workload") {
                doc.workload = v;
            } else if let Some(v) = str_field(t, "tier") {
                doc.tier = v;
            } else if let Some(v) = u64_field(t, "total_cycles") {
                doc.total_cycles = v;
            } else if let Some(v) = u64_field(t, "total_instructions") {
                doc.total_instructions = v;
            } else if t.starts_with("\"unattributed\"") {
                doc.profile.unattributed = counts_from_json(t)?;
            } else if t.contains("\"region\"") {
                let key = BlockKey {
                    // reason: serialized from a u32
                    #[allow(clippy::cast_possible_truncation)]
                    region: u64_field(t, "region").ok_or_else(|| bad(t, "region"))? as u32,
                    // reason: serialized from a u32
                    #[allow(clippy::cast_possible_truncation)]
                    offset: u64_field(t, "offset").ok_or_else(|| bad(t, "offset"))? as u32,
                    generation: u64_field(t, "generation").ok_or_else(|| bad(t, "generation"))?,
                };
                let sym = str_field(t, "symbol").ok_or_else(|| bad(t, "symbol"))?;
                doc.profile.blocks.insert(key, counts_from_json(t)?);
                doc.symbols.insert(key, sym);
            }
        }
        Ok(doc)
    }

    /// Renders the per-block delta table between two profile documents
    /// (`self` = before, `after` = after): union of keys, sorted by
    /// descending absolute cycle delta (then instruction delta, then
    /// key), at most `top` changed rows. A run compared against itself
    /// reports `0 of N blocks differ`.
    #[must_use]
    pub fn delta_table(&self, after: &ProfileDoc, top: usize) -> String {
        let keys: BTreeSet<BlockKey> = self
            .profile
            .blocks
            .keys()
            .chain(after.profile.blocks.keys())
            .copied()
            .collect();
        let zero = BlockCounts::default();
        let mut rows: Vec<(BlockKey, i128, i128, i128)> = Vec::new();
        for key in &keys {
            let a = self.profile.blocks.get(key).unwrap_or(&zero);
            let b = after.profile.blocks.get(key).unwrap_or(&zero);
            let dc = i128::from(b.cycles()) - i128::from(a.cycles());
            let di = i128::from(b.instructions) - i128::from(a.instructions);
            let de = i128::from(b.executions) - i128::from(a.executions);
            if dc != 0 || di != 0 || de != 0 {
                rows.push((*key, dc, di, de));
            }
        }
        rows.sort_by(|x, y| {
            (y.1.abs(), y.2.abs(), y.3.abs())
                .cmp(&(x.1.abs(), x.2.abs(), x.3.abs()))
                .then(x.0.cmp(&y.0))
        });
        let mut out = format!(
            "profile delta: {} ({}) -> {} ({}): {} of {} blocks differ, \
             cycles {} -> {}, instructions {} -> {}\n",
            self.workload,
            self.tier,
            after.workload,
            after.tier,
            rows.len(),
            keys.len(),
            self.total_cycles,
            after.total_cycles,
            self.total_instructions,
            after.total_instructions,
        );
        if !rows.is_empty() {
            out.push_str("addr        gen  symbol                  Δcycles   Δinstrs    Δexec\n");
        }
        for (key, dc, di, de) in rows.iter().take(top) {
            let sym = after
                .symbols
                .get(key)
                .or_else(|| self.symbols.get(key))
                .map_or("?", String::as_str);
            let _ = writeln!(
                out,
                "0x{:08x} {:>4}  {:<22} {:>+8} {:>+9} {:>+8}",
                key.addr(),
                key.generation,
                sym,
                dc,
                di,
                de,
            );
        }
        if rows.len() > top {
            let _ = writeln!(out, "... {} more changed block(s)", rows.len() - top);
        }
        out
    }
}

fn counts_json(c: &BlockCounts) -> String {
    let stalls: Vec<String> = c.stall_cycles.iter().map(u64::to_string).collect();
    format!(
        "{{\"executions\": {}, \"instructions\": {}, \"span\": {}, \
         \"retire_cycles\": {}, \"stall_cycles\": [{}]}}",
        c.executions,
        c.instructions,
        c.span,
        c.retire_cycles,
        stalls.join(", ")
    )
}

fn bad(line: &str, what: &str) -> String {
    format!("missing/malformed {what:?} in line: {line}")
}

fn str_field(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn u64_field(line: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn counts_from_json(line: &str) -> Result<BlockCounts, String> {
    let mut c = BlockCounts {
        executions: u64_field(line, "executions").ok_or_else(|| bad(line, "executions"))?,
        instructions: u64_field(line, "instructions").ok_or_else(|| bad(line, "instructions"))?,
        #[allow(clippy::cast_possible_truncation)] // reason: serialized from a u32
        span: u64_field(line, "span").ok_or_else(|| bad(line, "span"))? as u32,
        retire_cycles: u64_field(line, "retire_cycles")
            .ok_or_else(|| bad(line, "retire_cycles"))?,
        stall_cycles: [0; StallReason::COUNT],
    };
    let pat = "\"stall_cycles\": [";
    let start = line.find(pat).ok_or_else(|| bad(line, "stall_cycles"))? + pat.len();
    let end = line[start..]
        .find(']')
        .ok_or_else(|| bad(line, "stall_cycles"))?;
    for (i, part) in line[start..start + end].split(',').enumerate() {
        if i >= StallReason::COUNT {
            return Err(bad(line, "stall_cycles length"));
        }
        c.stall_cycles[i] = part
            .trim()
            .parse()
            .map_err(|_| bad(line, "stall_cycles entry"))?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(offset: u32) -> BlockKey {
        BlockKey {
            region: 0x8000_0000,
            offset,
            generation: 0,
        }
    }

    #[test]
    fn merge_is_associative_and_matches_serial() {
        let mut a = BlockProfile::new();
        a.record_entry(key(0));
        a.record_instr(Some(key(0)), 4);
        a.record_retire_cycle(Some(key(0)));
        let mut b = BlockProfile::new();
        b.record_entry(key(0));
        b.record_stall_cycle(Some(key(8)), StallReason::Data);
        b.record_stall_cycle(None, StallReason::Fetch);
        let mut c = BlockProfile::new();
        c.record_entry(key(8));

        let mut serial = BlockProfile::new();
        serial.merge(&a);
        serial.merge(&b);
        serial.merge(&c);
        let mut left = a.clone();
        left.merge(&b);
        let mut grouped = BlockProfile::new();
        grouped.merge(&left);
        grouped.merge(&c);
        assert_eq!(serial, grouped);
        assert_eq!(serial.total().cycles(), 3);
        assert_eq!(
            serial.unattributed.stall_cycles[StallReason::Fetch.index()],
            1
        );
    }

    #[test]
    fn top_blocks_order_is_total_and_deterministic() {
        let mut p = BlockProfile::new();
        p.record_retire_cycle(Some(key(0)));
        p.record_retire_cycle(Some(key(0)));
        p.record_retire_cycle(Some(key(8)));
        // Same weight as key(8): tie must break by ascending key.
        p.record_retire_cycle(Some(key(4)));
        let top: Vec<u32> = p.top_blocks(10).iter().map(|(k, _)| k.offset).collect();
        assert_eq!(top, vec![0, 4, 8]);
    }

    #[test]
    fn dominant_stall_picks_heaviest_cause() {
        let mut c = BlockCounts::default();
        assert_eq!(c.dominant_stall(), None);
        c.stall_cycles[StallReason::Data.index()] = 3;
        c.stall_cycles[StallReason::Branch.index()] = 5;
        assert_eq!(c.dominant_stall(), Some(StallReason::Branch));
    }

    #[test]
    fn symbol_map_resolves_functions_then_regions() {
        let mut s = SymbolMap::new();
        s.add_region(0x8000_0000, 0x1000, "pflash");
        s.add_region(0xD000_0000, 0x1000, "dspr");
        s.add_func(0x8000_0010, "entry");
        s.add_func(0x8000_0100, "fn_0x80000100");
        assert_eq!(s.resolve(0x8000_0010), "entry");
        assert_eq!(s.resolve(0x8000_00FE), "entry");
        assert_eq!(s.resolve(0x8000_0100), "fn_0x80000100");
        // Below the first function: region fallback.
        assert_eq!(s.resolve(0x8000_0000), "pflash");
        // Another region never inherits a flash function.
        assert_eq!(s.resolve(0xD000_0004), "dspr");
        assert_eq!(s.resolve(0x7000_0000), "?");
    }

    #[test]
    fn stack_paths_are_bfs_from_roots() {
        let mut g = CallGraph::new();
        g.add_root("entry");
        g.add_root("vector_p3");
        g.add_call("entry", "helper");
        g.add_call("helper", "leaf");
        g.add_call("vector_p3", "leaf"); // discovered second: entry's path wins
        let p = g.stack_paths();
        assert_eq!(p["leaf"], vec!["entry", "helper", "leaf"]);
        assert_eq!(p["vector_p3"], vec!["vector_p3"]);
    }

    #[test]
    fn flame_stacks_fold_block_weight_onto_call_paths() {
        let mut profile = BlockProfile::new();
        profile.record_retire_cycle(Some(key(0x10)));
        profile.record_retire_cycle(Some(key(0x10)));
        profile.record_stall_cycle(None, StallReason::Fetch);
        let mut symbols = SymbolMap::new();
        symbols.add_region(0x8000_0000, 0x1000, "pflash");
        symbols.add_func(0x8000_0000, "entry");
        let mut calls = CallGraph::new();
        calls.add_root("entry");
        let stacks = flame_stacks(&profile, &symbols, &calls);
        assert_eq!(stacks.count("entry"), 2);
        assert_eq!(stacks.count("[unattributed]"), 1);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut p = BlockProfile::new();
        p.record_entry(key(0x20));
        p.record_instr(Some(key(0x20)), 8);
        p.record_retire_cycle(Some(key(0x20)));
        p.record_stall_cycle(Some(key(0x20)), StallReason::StoreBuffer);
        p.record_stall_cycle(None, StallReason::Fetch);
        let mut symbols = SymbolMap::new();
        symbols.add_func(0x8000_0020, "entry");
        let doc = ProfileDoc::new("engine", "pipeline", 3, 1, p, &symbols);
        let json = doc.to_json();
        let back = ProfileDoc::from_json(&json).expect("parses");
        assert_eq!(doc, back);
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn self_compare_reports_zero_deltas() {
        let mut p = BlockProfile::new();
        p.record_retire_cycle(Some(key(0)));
        let doc = ProfileDoc::new("engine", "pipeline", 1, 1, p, &SymbolMap::new());
        let table = doc.delta_table(&doc.clone(), 10);
        assert!(table.contains("0 of 1 blocks differ"), "{table}");
    }

    #[test]
    fn delta_table_ranks_by_absolute_cycle_change() {
        let mut before = BlockProfile::new();
        before.record_retire_cycle(Some(key(0)));
        let mut after = BlockProfile::new();
        for _ in 0..5 {
            after.record_retire_cycle(Some(key(4)));
        }
        let a = ProfileDoc::new("a", "pipeline", 1, 1, before, &SymbolMap::new());
        let b = ProfileDoc::new("b", "pipeline", 5, 5, after, &SymbolMap::new());
        let table = a.delta_table(&b, 10);
        let gained = table.find("0x80000004").expect("gained block listed");
        let lost = table.find("0x80000000").expect("lost block listed");
        assert!(gained < lost, "largest |Δcycles| first:\n{table}");
        assert!(table.contains("2 of 2 blocks differ"), "{table}");
    }

    #[test]
    fn hot_block_table_uses_instruction_share_on_functional_tier() {
        let mut p = BlockProfile::new();
        p.record_entry(key(0));
        p.record_instr(Some(key(0)), 4);
        p.record_instr(Some(key(0)), 8);
        p.record_instr(Some(key(0x40)), 4);
        p.record_instr(None, 0);
        let mut s = SymbolMap::new();
        s.add_func(0x8000_0000, "entry");
        let table = render_hot_blocks(&p, &s, 5);
        assert!(table.contains("instructions total"), "{table}");
        assert!(table.contains("entry"), "{table}");
    }

    #[test]
    fn annotated_rendering_lists_instructions_via_callback() {
        let mut p = BlockProfile::new();
        p.record_entry(key(0));
        p.record_instr(Some(key(0)), 4);
        p.record_retire_cycle(Some(key(0)));
        let out = render_annotated(&p, &SymbolMap::new(), 5, |addr, span| {
            assert_eq!(addr, 0x8000_0000);
            assert_eq!(span, 4);
            vec![(addr, "movi d0, 1".to_string())]
        });
        assert!(out.contains("movi d0, 1"), "{out}");
        assert!(out.contains("cycles 1"), "{out}");
    }
}
