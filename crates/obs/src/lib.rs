//! Deterministic instrumentation for the audo simulation stack.
//!
//! The paper's central idea is *non-intrusive, always-on visibility* into a
//! running system (MCDS rate probes, cycle-accurate timestamps). This crate
//! gives the reproduction the same property for itself: a registry of
//! counters, gauges and histograms plus cycle-timestamped spans, with three
//! exporters that target standard tooling:
//!
//! * [`chrome::trace_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`,
//! * [`metrics_text::render`] — a Prometheus-style plain-text metrics
//!   snapshot,
//! * [`flame::FoldedStacks`] — folded-stack lines consumable by standard
//!   flamegraph tooling (`flamegraph.pl`, speedscope, inferno).
//!
//! # The determinism rule
//!
//! **Every timestamp is a simulated cycle — never wall clock.** Two
//! identical seeded runs therefore produce byte-identical exports, which
//! makes the exports diffable artifacts (goldens, CI gates, regression
//! bisection) instead of one-off visualisations. Anything nondeterministic
//! (wall-clock durations, host thread ids) is deliberately unrepresentable
//! in a [`Registry`].
//!
//! # Zero cost when disabled
//!
//! Following Metz & Lencevicius (*Efficient Instrumentation for
//! Performance Profiling*), instrumentation must cost (almost) nothing when
//! off. Two mechanisms deliver that:
//!
//! * hot simulation loops never talk to a registry: components keep their
//!   existing plain counters (cache hit/miss fields, DAP stats structs,
//!   trace-controller byte accounting) and a registry *samples* them once
//!   at snapshot points, so the steady-state overhead of the export layer
//!   is zero by construction;
//! * the few opt-in per-event recorders (e.g. the ISS retired-instruction
//!   mix) sit behind an `Option` that defaults to `None` — one untaken
//!   branch per event when disabled;
//! * a [`Registry::disabled`] registry turns every recording call into an
//!   early return, so instrumented call sites need no `if` of their own.

#![warn(missing_docs)]

use std::collections::BTreeMap;

pub mod chrome;
pub mod flame;
pub mod metrics_text;
pub mod profile;

pub use flame::FoldedStacks;

/// Number of power-of-two histogram buckets (values `0..=u64::MAX`).
const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket (powers of two) histogram of `u64` samples.
///
/// Bucket `k` counts samples whose value `v` satisfies
/// `2^(k-1) < v <= 2^k - …`; concretely a sample lands in bucket
/// `64 - (v.leading_zeros())` with `0` in bucket 0. Fixed geometry keeps
/// recording allocation-free and the export deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Merges another histogram's samples into this one.
    ///
    /// Because the bucket geometry is fixed, merging shard-local
    /// histograms is exact: the merged percentiles are identical to the
    /// percentiles of one histogram that had seen every sample — which is
    /// what lets a fleet run fold thousands of per-session histograms
    /// into one aggregate without retaining any session.
    ///
    /// ```
    /// use audo_obs::Histogram;
    ///
    /// // Two shards record disjoint halves of the same latency population.
    /// let mut shard_a = Histogram::default();
    /// let mut shard_b = Histogram::default();
    /// for v in [3, 5, 7, 9] {
    ///     shard_a.record(v);
    /// }
    /// for v in [200, 300, 400, 500] {
    ///     shard_b.record(v);
    /// }
    ///
    /// // Fold shard B into shard A (the fleet-aggregation direction).
    /// shard_a.merge(&shard_b);
    /// assert_eq!(shard_a.count(), 8);
    /// assert_eq!(shard_a.sum(), 3 + 5 + 7 + 9 + 200 + 300 + 400 + 500);
    ///
    /// // The merged fold answers population percentiles: half the samples
    /// // are small (p50 resolves to the <=15 bucket), the tail is shard
    /// // B's (p99 resolves to the <=511 bucket).
    /// assert_eq!(shard_a.percentile(50.0), 15);
    /// assert_eq!(shard_a.percentile(99.0), 511);
    ///
    /// // Identical to a single histogram that saw all eight samples.
    /// let mut whole = Histogram::default();
    /// for v in [3, 5, 7, 9, 200, 300, 400, 500] {
    ///     whole.record(v);
    /// }
    /// assert_eq!(shard_a, whole);
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        for (i, n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper bound of the bucket holding the `p`-th percentile sample,
    /// i.e. an upper bound on the true quantile with power-of-two
    /// resolution.
    ///
    /// The contract (pinned by unit tests — fleet aggregation folds
    /// shard histograms with [`Histogram::merge`] and then reads
    /// percentiles, so these edges must not drift):
    ///
    /// * **Empty histogram**: returns `0` for every `p`. An empty
    ///   aggregate renders as all-zero percentiles, never a sentinel.
    /// * **Rank**: the result is the bound of the bucket containing the
    ///   `ceil(p/100 · count)`-th smallest sample, clamped to
    ///   `1..=count` — so `p = 0` (and any `p < 0`) answers the bucket
    ///   of the *smallest* sample and `p = 100` (and any `p > 100`) the
    ///   bucket of the *largest*.
    /// * **Single-bucket histogram**: every `p` returns that bucket's
    ///   bound (there is only one bucket any rank can land in).
    /// * **Non-finite `p`** (`NaN`, `±inf` after the clamp): treated as
    ///   `p = 0`, i.e. the smallest sample's bucket — never a panic.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let frac = if p.is_finite() {
            p.clamp(0.0, 100.0) / 100.0
        } else if p == f64::INFINITY {
            1.0
        } else {
            0.0
        };
        // reason: count is a sample tally (far below 2^53) and the product
        // is clamped non-negative, so the f64 rank math is exact enough.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((frac * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (bound, n) in self.nonzero_buckets() {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        // Unreachable: rank <= count and the buckets sum to count; kept
        // as a total-function fallback rather than a panic.
        u64::MAX
    }

    /// Iterates the non-empty buckets as `(inclusive upper bound, count)`.
    /// The final bucket's bound is `u64::MAX`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| {
                let bound = match k {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << k) - 1,
                };
                (bound, n)
            })
    }
}

/// One closed span on a track: `[start, end]` in simulated cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span label (shows as the slice name in Perfetto).
    pub name: String,
    /// Track (exported as the Chrome-trace `tid`). Nesting within a track
    /// is implied by timestamp containment, exactly as Perfetto renders it.
    pub track: u32,
    /// First cycle covered.
    pub start: u64,
    /// One past the last cycle covered (`end >= start`).
    pub end: u64,
    /// Extra key/value annotations (exported as Chrome-trace `args`).
    pub args: Vec<(String, String)>,
}

/// A deterministic instrument registry: named counters, gauges and
/// histograms plus a list of cycle-stamped [`Span`]s.
///
/// Names are stored in [`BTreeMap`]s so every export iterates in one
/// canonical order; spans keep recording order (which is itself
/// deterministic for a deterministic simulation).
///
/// ```
/// use audo_obs::Registry;
///
/// let mut reg = Registry::new();
/// reg.add("decode_cache.hits", 3);
/// reg.gauge("emem.fill", 0.25);
/// reg.span("session", 0, 1_000);
/// assert_eq!(reg.counter("decode_cache.hits"), 3);
///
/// let off = Registry::disabled();
/// assert!(!off.is_enabled());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    enabled: bool,
    track: u32,
    stamp: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<Span>,
    open: Vec<usize>,
}

impl Registry {
    /// Creates an enabled registry (default track 1).
    #[must_use]
    pub fn new() -> Registry {
        Registry {
            enabled: true,
            track: 1,
            ..Registry::default()
        }
    }

    /// Creates a disabled registry: every recording call is an early
    /// return and every export is empty.
    #[must_use]
    pub fn disabled() -> Registry {
        Registry::default()
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Selects the track subsequent spans are recorded on.
    pub fn set_track(&mut self, track: u32) {
        self.track = track;
    }

    /// Advances the registry's "latest simulated cycle" stamp (used as the
    /// sample timestamp of counters/gauges in the Chrome export). The stamp
    /// is monotonic: earlier cycles are ignored.
    pub fn stamp(&mut self, cycle: u64) {
        if self.enabled {
            self.stamp = self.stamp.max(cycle);
        }
    }

    /// The latest stamped cycle.
    #[must_use]
    pub fn stamped(&self) -> u64 {
        self.stamp
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named counter to an absolutely sampled `value` (for
    /// components that maintain their own lifetime counters).
    pub fn sample(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        self.counters.insert(name.to_string(), value);
    }

    /// Sets the named gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one histogram sample.
    pub fn observe(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merges a pre-recorded histogram into the named histogram (used by
    /// components that keep their own [`Histogram`] during a run and
    /// publish it once at export time).
    pub fn observe_histogram(&mut self, name: &str, h: &Histogram) {
        if !self.enabled || h.count() == 0 {
            return;
        }
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Opens a nested span at `cycle` on the current track.
    pub fn begin_span(&mut self, name: &str, cycle: u64) {
        if !self.enabled {
            return;
        }
        self.stamp(cycle);
        self.spans.push(Span {
            name: name.to_string(),
            track: self.track,
            start: cycle,
            end: cycle,
            args: Vec::new(),
        });
        self.open.push(self.spans.len() - 1);
    }

    /// Closes the innermost open span at `cycle`. Without an open span
    /// this is a no-op (never panics in instrumentation paths).
    pub fn end_span(&mut self, cycle: u64) {
        if !self.enabled {
            return;
        }
        self.stamp(cycle);
        if let Some(idx) = self.open.pop() {
            self.spans[idx].end = self.spans[idx].start.max(cycle);
        }
    }

    /// Records an already-closed span `[start, end]` on the current track.
    pub fn span(&mut self, name: &str, start: u64, end: u64) {
        if !self.enabled {
            return;
        }
        self.stamp(end);
        self.spans.push(Span {
            name: name.to_string(),
            track: self.track,
            start,
            end: end.max(start),
            args: Vec::new(),
        });
    }

    /// Like [`Registry::span`] with key/value annotations.
    pub fn span_with_args(
        &mut self,
        name: &str,
        start: u64,
        end: u64,
        args: Vec<(String, String)>,
    ) {
        if !self.enabled {
            return;
        }
        self.stamp(end);
        self.spans.push(Span {
            name: name.to_string(),
            track: self.track,
            start,
            end: end.max(start),
            args,
        });
    }

    /// Reads a counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All counters in canonical (sorted) order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in canonical (sorted) order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in canonical (sorted) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All recorded spans, in recording order. Spans still open are
    /// reported with `end == start`… they are closed by [`Registry::end_span`].
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Merges `other` into `self`: counter/gauge/histogram names gain
    /// `prefix`, spans move to `track` (their cycle timestamps are kept —
    /// different sources live on different tracks, not a shared clock).
    ///
    /// A disabled `self` ignores the merge; a disabled/empty `other`
    /// contributes nothing.
    pub fn merge_from(&mut self, prefix: &str, other: &Registry, track: u32) {
        if !self.enabled {
            return;
        }
        for (k, v) in &other.counters {
            *self.counters.entry(format!("{prefix}{k}")).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(format!("{prefix}{k}"), v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(format!("{prefix}{k}"))
                .or_default()
                .merge(h);
        }
        for s in &other.spans {
            self.spans.push(Span { track, ..s.clone() });
        }
        self.stamp = self.stamp.max(other.stamp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = Registry::disabled();
        reg.add("c", 5);
        reg.gauge("g", 1.5);
        reg.observe("h", 7);
        reg.begin_span("s", 0);
        reg.end_span(10);
        reg.span("t", 0, 5);
        reg.stamp(99);
        assert!(reg.is_empty());
        assert_eq!(reg.stamped(), 0);
    }

    #[test]
    fn counters_accumulate_and_sample_overwrites() {
        let mut reg = Registry::new();
        reg.add("c", 2);
        reg.add("c", 3);
        assert_eq!(reg.counter("c"), 5);
        reg.sample("c", 1);
        assert_eq!(reg.counter("c"), 1);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn span_nesting_closes_innermost_first() {
        let mut reg = Registry::new();
        reg.begin_span("outer", 0);
        reg.begin_span("inner", 10);
        reg.end_span(20);
        reg.end_span(100);
        let spans = reg.spans();
        assert_eq!(spans[0].name, "outer");
        assert_eq!((spans[0].start, spans[0].end), (0, 100));
        assert_eq!((spans[1].start, spans[1].end), (10, 20));
        // Unbalanced end is a no-op.
        reg.end_span(999);
        assert_eq!(reg.spans().len(), 2);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 1024 -> bucket 11.
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].1, 1);
        assert_eq!(buckets[1].1, 1);
        assert_eq!(buckets[2].1, 2);
        assert_eq!(buckets[3].1, 1);
    }

    #[test]
    fn merge_prefixes_names_and_retracks_spans() {
        let mut a = Registry::new();
        a.add("hits", 1);
        let mut b = Registry::new();
        b.add("hits", 2);
        b.span("run", 0, 50);
        b.observe("lat", 8);
        a.merge_from("e2_", &b, 7);
        assert_eq!(a.counter("hits"), 1);
        assert_eq!(a.counter("e2_hits"), 2);
        assert_eq!(a.spans()[0].track, 7);
        assert_eq!(a.histograms().next().unwrap().0, "e2_lat");
    }

    #[test]
    fn percentiles_walk_cumulative_buckets() {
        let mut h = Histogram::default();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        // 9 of 10 samples are 1: p50 and p90 resolve to bucket bound 1,
        // p99/p100 to the bucket holding 1000 (bound 1023).
        assert_eq!(h.percentile(50.0), 1);
        assert_eq!(h.percentile(90.0), 1);
        assert_eq!(h.percentile(99.0), 1023);
        assert_eq!(h.percentile(100.0), 1023);
        assert_eq!(Histogram::default().percentile(50.0), 0);
    }

    #[test]
    fn percentile_contract_empty_and_single_bucket() {
        // Empty: every p answers 0, including the weird ones.
        let empty = Histogram::default();
        for p in [-10.0, 0.0, 50.0, 100.0, 250.0, f64::NAN, f64::INFINITY] {
            assert_eq!(empty.percentile(p), 0, "empty at p={p}");
        }
        // Single sample: every p answers its bucket bound.
        let mut one = Histogram::default();
        one.record(100); // bucket bound 127
        for p in [-1.0, 0.0, 1.0, 50.0, 99.9, 100.0, 101.0] {
            assert_eq!(one.percentile(p), 127, "single sample at p={p}");
        }
        // Single bucket, many samples: still one possible answer.
        let mut packed = Histogram::default();
        for v in 64..128 {
            packed.record(v); // all land in the <=127 bucket
        }
        for p in [0.0, 25.0, 50.0, 100.0] {
            assert_eq!(packed.percentile(p), 127, "single bucket at p={p}");
        }
    }

    #[test]
    fn percentile_contract_extremes_and_nonfinite() {
        let mut h = Histogram::default();
        h.record(1); // bucket bound 1
        h.record(1000); // bucket bound 1023
                        // p=0 / negative p: the smallest sample's bucket.
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(-5.0), 1);
        // p=100 / beyond: the largest sample's bucket.
        assert_eq!(h.percentile(100.0), 1023);
        assert_eq!(h.percentile(400.0), 1023);
        // Non-finite p never panics: NaN and -inf act as p=0, +inf as 100.
        assert_eq!(h.percentile(f64::NAN), 1);
        assert_eq!(h.percentile(f64::NEG_INFINITY), 1);
        assert_eq!(h.percentile(f64::INFINITY), 1023);
    }

    #[test]
    fn percentile_of_merge_equals_percentile_of_whole() {
        // The two-shard fold the fleet aggregation relies on: merging
        // shard histograms then reading percentiles must equal one
        // histogram that saw every sample.
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for i in 0..100u64 {
            let v = i * i % 4097;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn observe_histogram_merges_samples() {
        let mut h = Histogram::default();
        h.record(4);
        h.record(9);
        let mut reg = Registry::new();
        reg.observe("lat", 2);
        reg.observe_histogram("lat", &h);
        let (_, merged) = reg.histograms().next().unwrap();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 15);
        // Empty histograms contribute nothing (and create no entry).
        reg.observe_histogram("other", &Histogram::default());
        assert_eq!(reg.histograms().count(), 1);
    }

    #[test]
    fn stamp_is_monotonic() {
        let mut reg = Registry::new();
        reg.stamp(100);
        reg.stamp(10);
        assert_eq!(reg.stamped(), 100);
        reg.span("s", 0, 500);
        assert_eq!(reg.stamped(), 500);
    }
}
