//! Criterion benchmarks: simulator throughput and the per-experiment
//! kernels, sized down so a full `cargo bench` stays in minutes.
//!
//! Wall-clock here measures *the simulator*, not the modeled silicon; the
//! modeled results live in the `experiments` binary / EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audo_ed::{EdConfig, EmulationDevice};
use audo_mcds::msg::{decode_stream, Encoder, TraceMessage};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_profiler::metrics::Metric;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::micro::{mac_kernel, table_chase};

/// Raw simulation speed: cycles simulated per wall-second, production mode
/// (observation off) vs emulation mode (events on).
fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    let w = mac_kernel(50_000);
    g.bench_function("production_mode_200k_cycles", |b| {
        b.iter(|| {
            let mut soc = Soc::new(SocConfig::default());
            soc.set_observation(false);
            w.install(&mut soc).unwrap();
            black_box(soc.run_to_halt(w.max_cycles).unwrap())
        });
    });
    g.bench_function("emulation_mode_200k_cycles", |b| {
        b.iter(|| {
            let mut soc = Soc::new(SocConfig::default());
            w.install(&mut soc).unwrap();
            let mut n = 0u64;
            soc.run(w.max_cycles, |obs| n += obs.events.len() as u64)
                .unwrap();
            black_box(n)
        });
    });
    g.finish();
}

/// E2/E3 kernel: a full profiling session with four parallel metrics.
fn profiling_session(c: &mut Criterion) {
    let params = EngineParams {
        rpm: 12_000,
        target_teeth: 10,
        target_bg_passes: 8,
        ..EngineParams::default()
    };
    let w = engine_control(&params);
    c.bench_function("e3_profiling_session_small", |b| {
        b.iter(|| {
            let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
            w.install_ed(&mut ed).unwrap();
            let spec = ProfileSpec::new()
                .metric(Metric::Ipc, 1000)
                .metric(Metric::IcacheMissPerInstr, 1000)
                .metric(Metric::DcacheMissPerInstr, 1000)
                .metric(Metric::InterruptsPerKilocycle, 1000);
            let out = profile(
                &mut ed,
                &spec,
                &SessionOptions {
                    max_cycles: w.max_cycles,
                    ..SessionOptions::default()
                },
            )
            .unwrap();
            black_box(out.produced_bytes)
        });
    });
}

/// E6 kernel: one architecture-option replay (the unit of the sweep).
fn option_replay(c: &mut Criterion) {
    let w = table_chase(16, 1_000, true);
    c.bench_function("e6_option_replay_chase", |b| {
        b.iter(|| {
            let mut soc = Soc::new(SocConfig::default());
            soc.set_observation(false);
            w.install(&mut soc).unwrap();
            black_box(soc.run_to_halt(w.max_cycles).unwrap())
        });
    });
}

/// E9 kernel: trace message encode + decode round trip.
fn trace_codec(c: &mut Criterion) {
    use audo_common::{Cycle, SourceId};
    let mut enc = Encoder::new();
    let mut bytes = Vec::new();
    for i in 0..10_000u64 {
        enc.emit(
            Cycle(i * 3),
            &TraceMessage::FlowDirect {
                source: SourceId::TRICORE,
                icnt: (i % 50) as u32 + 1,
            },
            &mut bytes,
        );
        if i % 16 == 0 {
            enc.emit(
                Cycle(i * 3 + 1),
                &TraceMessage::Counter {
                    probe: 2,
                    num: i % 997,
                    den: 1000,
                },
                &mut bytes,
            );
        }
    }
    c.bench_function("e9_decode_10k_messages", |b| {
        b.iter(|| black_box(decode_stream(black_box(&bytes)).unwrap().len()));
    });
}

/// Assembler throughput on the generated engine application.
fn assembler(c: &mut Criterion) {
    let src = audo_workloads::engine::generate_source(&EngineParams::default());
    c.bench_function("assemble_engine_application", |b| {
        b.iter(|| black_box(audo_tricore::asm::assemble(black_box(&src)).unwrap().size()));
    });
}

/// MCDS observation cost per cycle: 8 probes fed a synthetic event mix.
fn mcds_observe(c: &mut Criterion) {
    use audo_common::{Cycle, EventRecord, PerfEvent, SourceId};
    use audo_mcds::select::{EventClass, EventSelector};
    use audo_mcds::{Basis, Mcds, RateProbe};
    c.bench_function("mcds_observe_100k_cycles_8_probes", |b| {
        b.iter(|| {
            let mut builder = Mcds::builder();
            for i in 0..8u32 {
                builder = builder.probe(RateProbe {
                    event: EventSelector::of(if i % 2 == 0 {
                        EventClass::InstrRetired
                    } else {
                        EventClass::IcacheMiss
                    }),
                    basis: Basis::Cycles(1000),
                    group: None,
                });
            }
            let mut mcds = builder.build().unwrap();
            let mut out = Vec::new();
            for cy in 0..100_000u64 {
                let events = [
                    EventRecord {
                        cycle: Cycle(cy),
                        source: SourceId::TRICORE,
                        event: PerfEvent::InstrRetired {
                            count: (cy % 3) as u8,
                        },
                    },
                    EventRecord {
                        cycle: Cycle(cy),
                        source: SourceId::TRICORE,
                        event: PerfEvent::CacheHit {
                            cache: audo_common::events::CacheId::Instruction,
                        },
                    },
                ];
                mcds.observe(Cycle(cy), &events, &[], &mut out);
            }
            black_box(out.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sim_throughput, profiling_session, option_replay, trace_codec, assembler, mcds_observe
}
criterion_main!(benches);
