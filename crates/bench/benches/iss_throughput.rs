//! ISS throughput: decode-cache fast path vs. plain single-stepping.
//!
//! Measures the functional golden model only — no pipeline, no SoC — on
//! the instruction-mix microbenchmarks from `audo-workloads`. Each
//! workload is benchmarked twice, fast path off and on, over identical
//! prepared ISS instances, so the pair difference isolates the cost of
//! re-fetch/re-decode that the predecoded basic-block cache removes.
//!
//! Machine-readable results (and the speedup figure recorded in
//! `BENCH_iss.json`) come from the `iss_bench` binary; see
//! `scripts/bench.sh`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audo_common::Addr;
use audo_tricore::iss::Iss;
use audo_workloads::micro::{div_kernel, mac_kernel, random_mix, stream_copy};
use audo_workloads::Workload;

/// Prepares an ISS with the standard bench memory map and the workload
/// image loaded, fast path configured as requested.
fn prepared(w: &Workload, fast: bool) -> Iss {
    let mut iss = Iss::new();
    iss.map_region(Addr(0x8000_0000), 0x4_0000);
    iss.map_region(Addr(0x9000_0000), 0x2_0000);
    iss.map_region(Addr(0xD000_0000), 0x2_0000);
    iss.init_csa(Addr(0xD000_8000), 64).unwrap();
    iss.load(&w.image).unwrap();
    iss.set_fast_path(fast);
    iss
}

fn iss_throughput(c: &mut Criterion) {
    let workloads = [
        mac_kernel(2_000),
        stream_copy(2_000),
        div_kernel(500),
        random_mix(7, 400, 40),
    ];
    let mut g = c.benchmark_group("iss_throughput");
    for w in &workloads {
        for fast in [false, true] {
            let label = format!(
                "{}_{}",
                w.name,
                if fast { "fast_path" } else { "slow_path" }
            );
            let base = prepared(w, fast);
            g.bench_function(&label, |b| {
                b.iter(|| {
                    let run = base.clone().run(10_000_000).expect("runs");
                    black_box(run.instr_count)
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = iss_throughput
}
criterion_main!(benches);
