//! The scheduling guarantee of the experiment engine: rendered report
//! output is byte-identical no matter how many worker threads run the
//! experiments. Uses the fast subset of experiments so the test stays
//! cheap; the heavy ones go through the identical code path.

use audo_bench::run_selected;

const FAST: &[&str] = &["E2", "E5", "E9", "E11"];

fn render_all(jobs: usize) -> String {
    let ids: Vec<String> = FAST.iter().map(|s| s.to_string()).collect();
    run_selected(&ids, jobs)
        .expect("experiments run")
        .iter()
        .map(|t| t.report.render())
        .collect()
}

#[test]
fn parallel_reports_match_sequential_byte_for_byte() {
    let sequential = render_all(1);
    let parallel = render_all(4);
    assert_eq!(sequential, parallel);
    // And the output is real: every requested experiment is present, in
    // registry order.
    let mut last = 0;
    for id in FAST {
        let pos = sequential
            .find(&format!("## {id} "))
            .unwrap_or_else(|| panic!("{id} missing from report"));
        assert!(pos >= last, "{id} out of registry order");
        last = pos;
    }
}

#[test]
fn filter_order_is_registry_order_not_argument_order() {
    let forward = run_selected(&["E2".into(), "E9".into()], 2).expect("run");
    let backward = run_selected(&["E9".into(), "E2".into()], 2).expect("run");
    let ids = |v: &[audo_bench::TimedReport]| {
        v.iter()
            .map(|t| t.report.id.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(ids(&forward), vec!["E2", "E9"]);
    assert_eq!(ids(&forward), ids(&backward));
}

#[test]
fn unknown_filter_id_is_rejected() {
    let err = run_selected(&["E99".into()], 1).expect_err("unknown id must fail");
    let msg = err.to_string();
    assert!(msg.contains("E99"), "error should name the bad id: {msg}");
}

#[test]
fn filter_ids_are_case_insensitive() {
    let reports = run_selected(&["e5".into()], 1).expect("lower-case id accepted");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].report.id, "E5");
}
