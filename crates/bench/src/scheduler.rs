//! Parallel, deterministic experiment execution.
//!
//! Experiments E1–E15 are self-contained: each builds its own SoC /
//! Emulation Device from an explicit configuration and seeds its own
//! pseudo-random inputs, so they can run concurrently without observing
//! each other. This module schedules them over a capped pool of
//! `std::thread::scope` workers, times each one, and returns the results
//! **in submission order** — the rendered report stream is byte-identical
//! to a sequential (`--jobs 1`) run regardless of how the OS interleaves
//! the workers (see `crates/bench/tests/parallel_determinism.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default worker-pool size: the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One finished job: the closure's output plus its wall-clock duration.
#[derive(Debug, Clone)]
pub struct TimedJob<T> {
    /// What the job returned.
    pub output: T,
    /// Wall-clock time the job spent running (excludes queue wait).
    pub duration: Duration,
}

/// Runs `count` indexed jobs on up to `jobs` worker threads and returns
/// the timed results in index order.
///
/// Work is handed out through a shared atomic cursor, so an expensive job
/// never blocks cheap ones behind it; results land in per-index slots, so
/// completion order cannot leak into the output. With `jobs <= 1` (or a
/// single job) everything runs inline on the caller's thread.
pub fn run_jobs<T, F>(count: usize, jobs: usize, run: F) -> Vec<TimedJob<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let timed = |i: usize| {
        let start = Instant::now();
        let output = run(i);
        TimedJob {
            output,
            duration: start.elapsed(),
        }
    };
    let workers = jobs.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(timed).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TimedJob<T>>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = timed(i);
                *slots[i].lock().expect("job slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .expect("every index was claimed and stored")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order() {
        // Jobs finish deliberately out of order; outputs must not.
        let out = run_jobs(32, 8, |i| {
            std::thread::sleep(Duration::from_micros(((i * 11) % 7) as u64 * 50));
            i * 3
        });
        let values: Vec<usize> = out.iter().map(|j| j.output).collect();
        assert_eq!(values, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let seq: Vec<u64> = run_jobs(50, 1, f).into_iter().map(|j| j.output).collect();
        let par: Vec<u64> = run_jobs(50, 6, f).into_iter().map(|j| j.output).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn jobs_cap_is_respected() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_jobs(24, 3, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "more than 3 jobs ran at once"
        );
    }

    #[test]
    fn empty_and_single() {
        assert!(run_jobs(0, 4, |i| i).is_empty());
        let one = run_jobs(1, 4, |i| i + 9);
        assert_eq!(one[0].output, 9);
    }

    #[test]
    fn durations_are_recorded() {
        let out = run_jobs(2, 2, |_| std::thread::sleep(Duration::from_millis(5)));
        assert!(out.iter().all(|j| j.duration >= Duration::from_millis(4)));
    }
}
