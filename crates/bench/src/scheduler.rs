//! Parallel, deterministic experiment execution.
//!
//! Experiments E1–E15 are self-contained: each builds its own SoC /
//! Emulation Device from an explicit configuration and seeds its own
//! pseudo-random inputs, so they can run concurrently without observing
//! each other. This module schedules them over a capped pool of
//! `std::thread::scope` workers, times each one, and returns the results
//! **in submission order** — the rendered report stream is byte-identical
//! to a sequential (`--jobs 1`) run regardless of how the OS interleaves
//! the workers (see `crates/bench/tests/parallel_determinism.rs`).
//!
//! # Scheduler instrumentation
//!
//! The scheduler reports on itself on two strictly separated channels:
//!
//! * **Wall-clock stats** — every [`TimedJob`] carries its run duration
//!   and its *queue wait* (time between scheduler start and the job being
//!   claimed by a worker), and [`wall_summary`] reduces a finished run to
//!   utilisation and wait percentiles. These are host measurements:
//!   nondeterministic by nature, surfaced on stderr and in `BENCH_*.json`
//!   perf artifacts, and **never** placed in an [`audo_obs::Registry`].
//! * **The virtual replay timeline** — [`export_schedule_obs`] renders a
//!   finished schedule into a registry using only *simulated* cycle costs
//!   in submission order: job `i`'s span starts where job `i-1`'s ended,
//!   and its queue wait is the simulated cycles of everything submitted
//!   before it (the single-link replay model: one tool link drains units
//!   in fleet order). This view depends only on the jobs' simulated
//!   costs, so it is byte-identical for any `--jobs` and any host.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default worker-pool size: the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One finished job: the closure's output plus its wall-clock timings.
#[derive(Debug, Clone)]
pub struct TimedJob<T> {
    /// What the job returned.
    pub output: T,
    /// Wall-clock time the job spent running (excludes queue wait).
    pub duration: Duration,
    /// Wall-clock time between scheduler start and this job being claimed
    /// by a worker — how long it sat in the queue behind earlier work.
    pub queue_wait: Duration,
}

/// Wall-clock reduction of a finished scheduler run ([`wall_summary`]).
///
/// Host measurements only — print to stderr or a perf artifact, never
/// into a deterministic export.
#[derive(Debug, Clone, Copy)]
pub struct WallSummary {
    /// Jobs completed.
    pub jobs: usize,
    /// Sum of job run durations (busy time across all workers).
    pub busy: Duration,
    /// Longest time any job waited in the queue.
    pub max_queue_wait: Duration,
    /// Worker utilisation: busy time over `workers × makespan`
    /// (1.0 = every worker ran flat out). 0 when the run is empty.
    pub utilization: f64,
}

/// Reduces a finished run to wall-clock scheduler statistics.
///
/// `total` is the scheduler's makespan (measure it around the
/// [`run_jobs`] call); `workers` the worker count actually used.
#[must_use]
pub fn wall_summary<T>(jobs: &[TimedJob<T>], total: Duration, workers: usize) -> WallSummary {
    let busy: Duration = jobs.iter().map(|j| j.duration).sum();
    let max_queue_wait = jobs
        .iter()
        .map(|j| j.queue_wait)
        .max()
        .unwrap_or(Duration::ZERO);
    let capacity = total.as_secs_f64() * workers.max(1) as f64;
    WallSummary {
        jobs: jobs.len(),
        busy,
        max_queue_wait,
        utilization: if capacity > 0.0 && !jobs.is_empty() {
            (busy.as_secs_f64() / capacity).min(1.0)
        } else {
            0.0
        },
    }
}

/// Exports the deterministic virtual replay timeline of a finished
/// schedule into a registry.
///
/// `costs` is each job's *simulated* cycle cost in submission order. The
/// jobs are laid end to end on one virtual track (the single-link replay
/// model), producing for each job a `{prefix}.job` span `[t, t+cost)`
/// with its index as a span argument, plus:
///
/// * counter `{prefix}.jobs` — job count,
/// * counter `{prefix}.virtual_cycles` — total simulated cycles,
/// * histogram `{prefix}.job_cycles` — per-job simulated cost,
/// * histogram `{prefix}.queue_wait_cycles` — per-job virtual queue wait
///   (the simulated cycles of everything submitted before it).
///
/// Everything here is a pure function of `costs`, so the export is
/// byte-identical for any `--jobs` and any host — it satisfies the
/// [`audo_obs`] determinism rule by construction.
pub fn export_schedule_obs(reg: &mut audo_obs::Registry, prefix: &str, track: u32, costs: &[u64]) {
    if !reg.is_enabled() {
        return;
    }
    reg.set_track(track);
    reg.add(&format!("{prefix}.jobs"), costs.len() as u64);
    let mut now = 0u64;
    for (i, &cost) in costs.iter().enumerate() {
        reg.observe(&format!("{prefix}.queue_wait_cycles"), now);
        reg.observe(&format!("{prefix}.job_cycles"), cost);
        let end = now.saturating_add(cost);
        reg.span_with_args(
            &format!("{prefix}.job"),
            now,
            end,
            vec![("index".to_string(), i.to_string())],
        );
        now = end;
    }
    reg.add(&format!("{prefix}.virtual_cycles"), now);
}

/// Runs `count` indexed jobs on up to `jobs` worker threads and returns
/// the timed results in index order.
///
/// Work is handed out through a shared atomic cursor, so an expensive job
/// never blocks cheap ones behind it; results land in per-index slots, so
/// completion order cannot leak into the output. With `jobs <= 1` (or a
/// single job) everything runs inline on the caller's thread.
pub fn run_jobs<T, F>(count: usize, jobs: usize, run: F) -> Vec<TimedJob<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let t0 = Instant::now();
    let timed = |i: usize| {
        let queue_wait = t0.elapsed();
        let start = Instant::now();
        let output = run(i);
        TimedJob {
            output,
            duration: start.elapsed(),
            queue_wait,
        }
    };
    let workers = jobs.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(timed).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TimedJob<T>>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = timed(i);
                *slots[i].lock().expect("job slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .expect("every index was claimed and stored")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order() {
        // Jobs finish deliberately out of order; outputs must not.
        let out = run_jobs(32, 8, |i| {
            std::thread::sleep(Duration::from_micros(((i * 11) % 7) as u64 * 50));
            i * 3
        });
        let values: Vec<usize> = out.iter().map(|j| j.output).collect();
        assert_eq!(values, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let seq: Vec<u64> = run_jobs(50, 1, f).into_iter().map(|j| j.output).collect();
        let par: Vec<u64> = run_jobs(50, 6, f).into_iter().map(|j| j.output).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn jobs_cap_is_respected() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_jobs(24, 3, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "more than 3 jobs ran at once"
        );
    }

    #[test]
    fn empty_and_single() {
        assert!(run_jobs(0, 4, |i| i).is_empty());
        let one = run_jobs(1, 4, |i| i + 9);
        assert_eq!(one[0].output, 9);
    }

    #[test]
    fn durations_are_recorded() {
        let out = run_jobs(2, 2, |_| std::thread::sleep(Duration::from_millis(5)));
        assert!(out.iter().all(|j| j.duration >= Duration::from_millis(4)));
    }

    #[test]
    fn queue_waits_are_recorded_and_ordered_inline() {
        // Inline (jobs=1) execution claims jobs in index order, so queue
        // waits are monotonically non-decreasing.
        let out = run_jobs(4, 1, |_| std::thread::sleep(Duration::from_millis(2)));
        for pair in out.windows(2) {
            assert!(pair[0].queue_wait <= pair[1].queue_wait);
        }
        assert!(out[3].queue_wait >= Duration::from_millis(5));
    }

    #[test]
    fn wall_summary_reduces_a_run() {
        let out = run_jobs(6, 2, |_| std::thread::sleep(Duration::from_millis(3)));
        let s = wall_summary(&out, Duration::from_millis(12), 2);
        assert_eq!(s.jobs, 6);
        assert!(s.busy >= Duration::from_millis(15));
        assert!(s.utilization > 0.0 && s.utilization <= 1.0);
        assert!(s.max_queue_wait >= out[5].queue_wait.min(out[0].queue_wait));
        // Empty run: all zeros, no division blowups.
        let empty: Vec<TimedJob<()>> = Vec::new();
        let z = wall_summary(&empty, Duration::ZERO, 4);
        assert_eq!(z.jobs, 0);
        assert_eq!(z.utilization, 0.0);
    }

    #[test]
    fn virtual_schedule_export_is_deterministic_and_jobs_free() {
        // The export is a pure function of the simulated costs: the
        // worker count that produced them cannot appear anywhere.
        let costs = [500u64, 200, 800, 100];
        let render = || {
            let mut reg = audo_obs::Registry::new();
            export_schedule_obs(&mut reg, "fleet.shard", 3, &costs);
            audo_obs::metrics_text::render(&reg, "audo_")
        };
        assert_eq!(render(), render());
        let mut reg = audo_obs::Registry::new();
        export_schedule_obs(&mut reg, "fleet.shard", 3, &costs);
        assert_eq!(reg.counter("fleet.shard.jobs"), 4);
        assert_eq!(reg.counter("fleet.shard.virtual_cycles"), 1600);
        // Spans are laid end to end in submission order.
        let spans = reg.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!((spans[0].start, spans[0].end), (0, 500));
        assert_eq!((spans[2].start, spans[2].end), (700, 1500));
        assert_eq!(spans[3].args, [("index".to_string(), "3".to_string())]);
        // Queue-wait histogram saw the cumulative prefix costs.
        let (_, qw) = reg
            .histograms()
            .find(|(n, _)| n.ends_with("queue_wait_cycles"))
            .expect("queue-wait histogram");
        assert_eq!(qw.count(), 4);
        assert_eq!(qw.sum(), 500 + 700 + 1500);
        // A disabled registry records nothing.
        let mut off = audo_obs::Registry::disabled();
        export_schedule_obs(&mut off, "fleet.shard", 3, &costs);
        assert!(off.is_empty());
    }
}
