//! Experiment harness regenerating every figure/claim of the paper.
//!
//! The paper (a methodology paper) has no numbered result tables; its five
//! figures are architecture and methodology diagrams and §5 carries worked
//! numeric examples and quantitative claims. DESIGN.md maps each onto the
//! experiments E1–E12 implemented here. Each experiment returns a
//! [`report::Report`] with rendered results and machine-checkable claims,
//! shared between the `experiments` binary (prints everything for
//! EXPERIMENTS.md), the integration tests, and the Criterion benches.

pub mod experiments;
pub mod report;
pub mod scheduler;

pub use experiments::*;
pub use report::{Check, Report};
pub use scheduler::{default_jobs, run_jobs, TimedJob};
