//! Experiment harness regenerating every figure/claim of the paper.
//!
//! The paper (a methodology paper) has no numbered result tables; its five
//! figures are architecture and methodology diagrams and §5 carries worked
//! numeric examples and quantitative claims. DESIGN.md maps each onto the
//! experiments E1–E16 implemented here. Each experiment returns a
//! [`report::Report`] with rendered results and machine-checkable claims,
//! shared between the `experiments` binary (prints everything for
//! EXPERIMENTS.md), the integration tests, and the Criterion benches.

use std::sync::OnceLock;

pub mod experiments;
pub mod json;
pub mod report;
pub mod scheduler;

pub use experiments::*;
pub use report::{Check, Report};
pub use scheduler::{
    default_jobs, export_schedule_obs, run_jobs, wall_summary, TimedJob, WallSummary,
};

static DAP_FAULT_RATE: OnceLock<f64> = OnceLock::new();
static OBS: OnceLock<bool> = OnceLock::new();

/// Turns on experiment observability: reports created after this call carry
/// an enabled [`audo_obs::Registry`] that the experiments populate (the
/// `--trace-out`/`--metrics-out`/`--flame-out` CLI flags). Off by default —
/// with observability off the experiments do no instrumentation work and
/// their JSON summary is byte-identical to previous releases. First call
/// wins; later calls are ignored.
pub fn set_obs(enabled: bool) {
    let _ = OBS.set(enabled);
}

/// Whether experiment observability was switched on.
#[must_use]
pub fn obs_enabled() -> bool {
    OBS.get().copied().unwrap_or(false)
}

/// Overrides the fault-rate sweep of the tool-link experiment (E16): with
/// a rate set, E16 runs only that rate (the `--dap-fault-rate` CLI flag).
/// First call wins; later calls are ignored.
pub fn set_dap_fault_rate(rate: f64) {
    let _ = DAP_FAULT_RATE.set(rate);
}

/// The `--dap-fault-rate` override, if one was set.
#[must_use]
pub fn dap_fault_rate_override() -> Option<f64> {
    DAP_FAULT_RATE.get().copied()
}
