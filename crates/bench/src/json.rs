//! Machine-readable JSON summary of an experiment run (the `--json` output
//! of the `experiments` binary), kept here so its format is testable.
//!
//! Format stability: with observability off ([`crate::obs_enabled`] false)
//! the output is byte-identical to previous releases. With it on, each
//! experiment object additionally carries an `"obs"` key — appended after
//! `"fields"`, never reordering the existing keys — holding that
//! experiment's counters and gauges in sorted name order.

use std::fmt::Write as _;

use crate::experiments::TimedReport;

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a report's observability registry as a JSON object (counters
/// then gauges, each in sorted name order). Returns `None` when there is
/// nothing to report, so quiet runs carry no `"obs"` key at all.
fn obs_object(reg: &audo_obs::Registry) -> Option<String> {
    if reg.is_empty() {
        return None;
    }
    let mut entries: Vec<String> = Vec::new();
    for (name, value) in reg.counters() {
        entries.push(format!("\"{}\": {value}", json_escape(name)));
    }
    for (name, value) in reg.gauges() {
        entries.push(format!("\"{}\": {value}", json_escape(name)));
    }
    Some(format!("{{{}}}", entries.join(", ")))
}

/// Renders the full run summary.
#[must_use]
pub fn json_summary(reports: &[TimedReport], jobs: usize, total_secs: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(
        out,
        "  \"total_wall_clock_ms\": {:.3},",
        total_secs * 1000.0
    );
    let passed: usize = reports
        .iter()
        .map(|t| t.report.checks.iter().filter(|c| c.pass).count())
        .sum();
    let total: usize = reports.iter().map(|t| t.report.checks.len()).sum();
    let _ = writeln!(out, "  \"checks_passed\": {passed},");
    let _ = writeln!(out, "  \"checks_total\": {total},");
    out.push_str("  \"experiments\": [\n");
    for (i, t) in reports.iter().enumerate() {
        let failed: Vec<String> = t
            .report
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| format!("\"{}\"", json_escape(&c.what)))
            .collect();
        let fields: Vec<String> = t
            .report
            .kv
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"title\": \"{}\", \"duration_ms\": {:.3}, \
             \"checks_passed\": {}, \"checks_total\": {}, \"failed_checks\": [{}], \
             \"fields\": {{{}}}",
            json_escape(t.report.id),
            json_escape(&t.report.title),
            t.duration.as_secs_f64() * 1000.0,
            t.report.checks.iter().filter(|c| c.pass).count(),
            t.report.checks.len(),
            failed.join(", "),
            fields.join(", ")
        );
        if let Some(obs) = obs_object(&t.report.obs) {
            let _ = write!(out, ", \"obs\": {obs}");
        }
        out.push('}');
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;
    use std::time::Duration;

    fn timed(report: Report) -> TimedReport {
        TimedReport {
            report,
            duration: Duration::from_millis(5),
        }
    }

    #[test]
    fn quiet_report_has_no_obs_key() {
        let mut r = Report::new("E1", "demo");
        r.check("ok", true);
        r.field("x", 7);
        let json = json_summary(&[timed(r)], 2, 0.01);
        assert!(!json.contains("\"obs\""));
        assert!(json.contains("\"fields\": {\"x\": \"7\"}}"));
        assert!(json.contains("\"checks_passed\": 1,"));
    }

    #[test]
    fn obs_key_is_appended_after_fields() {
        let mut r = Report::new("E1", "demo");
        r.field("x", 7);
        // Force an enabled registry regardless of the global flag.
        r.obs = audo_obs::Registry::new();
        r.obs.sample("soc.cycles", 123);
        r.obs.gauge("soc.tricore.ipc", 1.5);
        let json = json_summary(&[timed(r)], 1, 0.0);
        assert!(json.contains(
            "\"fields\": {\"x\": \"7\"}, \"obs\": {\"soc.cycles\": 123, \"soc.tricore.ipc\": 1.5}}"
        ));
    }

    #[test]
    fn summary_is_deterministic_apart_from_timings() {
        let build = || {
            let mut r = Report::new("E2", "t");
            r.check("claim", false);
            json_summary(&[timed(r)], 1, 0.25)
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"failed_checks\": [\"claim\"]"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut r = Report::new("E1", "quote \" and \\ slash");
        r.check("line\nbreak", false);
        let json = json_summary(&[timed(r)], 1, 0.0);
        assert!(json.contains("quote \\\" and \\\\ slash"));
        assert!(json.contains("line\\nbreak"));
    }
}
