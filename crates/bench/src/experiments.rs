//! Experiments E1–E12: one per paper figure/claim (see DESIGN.md §4).
//!
//! Every experiment returns a [`Report`] with human-readable results and
//! machine-checkable claims; the `experiments` binary renders them all into
//! EXPERIMENTS.md and the integration tests assert `report.passed()`.

use audo_common::{Addr, ByteSize, Cycle, EventRecord, Freq, PerfEvent, SimError, SourceId};
use audo_dap::DapConfig;
use audo_ed::{EdConfig, EmulationDevice, TraceMode};
use audo_mcds::TraceMessage;
use audo_platform::config::{PortArbitration, SocConfig};
use audo_platform::Soc;
use audo_profiler::bandwidth;
use audo_profiler::metrics::Metric;
use audo_profiler::options::{
    cross_workload_ranking, evaluate_options, render_cross_ranking, ArchOption, CostModel,
    MeasuredProfile,
};
use audo_profiler::reconstruct::{flat_profile, reconstruct_flow};
use audo_profiler::session::{profile, DrainPolicy, SessionOptions};
use audo_profiler::spec::{MetricRequest, ProfileSpec};
use audo_workloads::engine::{engine_control, layout, EngineParams};
use audo_workloads::micro::{flash_duel, flash_streamer, table_chase};
use audo_workloads::Workload;

use crate::report::Report;

/// A program with a good-IPC phase followed by a flash-bound phase (shared
/// by E2/E4): tight loop, then an uncached pointer chase across 8 lines.
const PHASED_SRC: &str = "
    .equ UNCACHED, 0x20000000
    .org 0x80000000
_start:
    movi d1, 3
    movi d2, 5
    li d3, 2000
    mov.a a3, d3
    la a4, 0xD0000000
p1:
    mac d0, d1, d2
    lea a4, a4, 1
    mac d5, d1, d2
    loop a3, p1
    la a2, chain0 + UNCACHED
    movi d3, 0
    li d4, 500
p2:
    ld.a a2, [a2]
    addi d3, d3, 1
    jne d3, d4, p2
    halt
    .align 64
chain0: .word chain1 + UNCACHED
    .space 60
chain1: .word chain2 + UNCACHED
    .space 60
chain2: .word chain3 + UNCACHED
    .space 60
chain3: .word chain4 + UNCACHED
    .space 60
chain4: .word chain5 + UNCACHED
    .space 60
chain5: .word chain6 + UNCACHED
    .space 60
chain6: .word chain7 + UNCACHED
    .space 60
chain7: .word chain0 + UNCACHED
";

fn phased_ed() -> Result<EmulationDevice, SimError> {
    let image = audo_tricore::asm::assemble(PHASED_SRC)?;
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    ed.soc.load_image(&image)?;
    Ok(ed)
}

fn engine_ed(p: &EngineParams) -> Result<(Workload, EmulationDevice), SimError> {
    let w = engine_control(p);
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed)?;
    Ok((w, ed))
}

fn run_workload_cycles(cfg: &SocConfig, w: &Workload) -> Result<u64, SimError> {
    let mut soc = Soc::new(cfg.clone());
    soc.set_observation(false);
    w.install(&mut soc)?;
    soc.run_to_halt(w.max_cycles)
}

/// Renders the pipeline's per-cause cycle decomposition into the report:
/// every executed cycle is either a retire cycle or charged to exactly one
/// stall cause, so the rows sum to the run's cycle count and explain its
/// IPC (the methodology's "where did the time go" primitive).
fn report_stall_decomposition(r: &mut Report, core: &audo_tricore::Core, cycles: u64) {
    use audo_common::events::StallReason;
    let p = core.stats();
    let pct = |c: u64| 100.0 * c as f64 / cycles as f64;
    r.line(format!(
        "cycle decomposition over {cycles} cycles (IPC {:.3}):",
        core.retired_total() as f64 / cycles as f64
    ));
    r.line(format!(
        "  {:<18} {:>10} {:>7.1}%",
        "retire",
        p.retire_cycles,
        pct(p.retire_cycles)
    ));
    for reason in StallReason::ALL {
        let c = p.stalls(reason);
        if c > 0 {
            r.line(format!(
                "  stall.{:<12} {:>10} {:>7.1}%",
                reason.key(),
                c,
                pct(c)
            ));
        }
    }
    r.check(
        "stall decomposition is exhaustive (retire + stalls == cycles)",
        p.retire_cycles + p.stall_total() == cycles,
    );
}

// ======================================================================
// E1 — Fig. 2/4: the Emulation Device platform boots and behaves sanely
// ======================================================================

/// Boots the full ED with the engine workload, checks block activity.
///
/// # Errors
///
/// Propagates simulation faults (a failure is itself a finding).
pub fn e1_platform() -> Result<Report, SimError> {
    let mut r = Report::new("E1", "platform self-check (ED block diagram, Fig. 2/4)");
    let p = EngineParams {
        rpm: 6000,
        target_teeth: 25,
        ..EngineParams::default()
    };
    let (w, mut ed) = engine_ed(&p)?;
    let mut events: Vec<EventRecord> = Vec::new();
    let cycles = ed.run(w.max_cycles, |s| events.extend_from_slice(&s.obs.events))?;
    let retired = ed.soc.tricore.retired_total();
    let ipc = retired as f64 / cycles as f64;
    let cfg = &ed.soc.fabric.cfg;
    r.line(format!(
        "device: {} CPU, I-cache {}, D-cache {}, flash ws={} buffers={} prefetch={}, EMEM {}",
        cfg.cpu_clock,
        cfg.icache.size,
        cfg.dcache.size,
        cfg.flash.wait_states,
        cfg.flash.read_buffers,
        cfg.flash.prefetch,
        cfg.emem_size
    ));
    r.line(format!(
        "workload `{}`: {cycles} cycles, {retired} TriCore instrs (IPC {ipc:.3}), {} PCP instrs, {} DMA beats",
        w.name,
        ed.soc.pcp.retired_total(),
        ed.soc.fabric.dma_beats()
    ));
    let (ihit, imiss) = ed.soc.fabric.icache.stats();
    let (dhit, dmiss) = ed.soc.fabric.dcache.stats();
    let (fhit, fmiss, pf) = ed.soc.fabric.flash.stats();
    let (grants, contended) = ed.soc.fabric.xbar.stats();
    let port_conflicts = events
        .iter()
        .filter(|e| matches!(e.event, PerfEvent::FlashPortConflict { .. }))
        .count();
    r.line(format!(
        "I-cache {ihit}/{imiss} hit/miss, D-cache {dhit}/{dmiss}, flash buffers {fhit}/{fmiss} (+{pf} prefetches), bus {grants} grants / {contended} contended, {port_conflicts} flash port conflicts"
    ));
    let irqs = events
        .iter()
        .filter(|e| matches!(e.event, PerfEvent::IrqTaken { .. }))
        .count();
    r.line(format!("interrupts taken: {irqs}"));
    r.check(
        "IPC in the plausible 0.2..3.0 band",
        (0.2..3.0).contains(&ipc),
    );
    r.check(
        "all memories and caches saw traffic",
        ihit > 0 && dhit > 0 && fhit > 0,
    );
    r.check(
        "DMA moved data without CPU involvement",
        ed.soc.fabric.dma_beats() > 0,
    );
    r.check("interrupt system delivered requests", irqs > 10);
    r.check(
        "flash code/data port arbitration observed conflicts",
        port_conflicts > 0,
    );
    Ok(r)
}

// ======================================================================
// E2 — §5 worked example: dynamic IPC via two counters, resolution x
// ======================================================================

/// Measures the IPC timeline at two resolutions and validates both against
/// the hardware's ground truth, exactly.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e2_ipc_timeline() -> Result<Report, SimError> {
    let mut r = Report::new("E2", "dynamic IPC rate via on-chip counters (§5 example)");
    for window in [100u32, 1000] {
        let mut ed = phased_ed()?;
        let spec = ProfileSpec::new().metric(Metric::Ipc, window);
        let (mcds, map) = spec.compile()?;
        ed.program_mcds(mcds);
        let mut truth_events: Vec<EventRecord> = Vec::new();
        let mut host = Vec::new();
        let mut halted = false;
        while !halted {
            let step = ed.step()?;
            truth_events.extend_from_slice(&step.obs.events);
            halted = step.halted;
            let level = ed.trace.level();
            if level > 0 {
                host.extend_from_slice(&ed.drain_trace(level as u32)?);
            }
        }
        let (messages, err) = audo_mcds::msg::decode_stream_lossy(&host);
        assert!(err.is_none());
        let timeline = audo_profiler::timeline::Timeline::from_messages(&messages, &map);
        let series = timeline.series(Metric::Ipc);
        let last_cycle = series.last().map_or(Cycle(0), |s| s.cycle);
        let measured: u64 = series.iter().map(|s| s.num).sum();
        let truth: u64 = truth_events
            .iter()
            .filter(|e| e.cycle <= last_cycle && e.source == SourceId::TRICORE)
            .filter_map(|e| match e.event {
                PerfEvent::InstrRetired { count } => Some(u64::from(count)),
                _ => None,
            })
            .sum();
        let hi = timeline.max_sample(Metric::Ipc).map_or(0.0, |s| s.value);
        let lo = timeline.min_sample(Metric::Ipc).map_or(0.0, |s| s.value);
        r.line(format!(
            "window {window:>5} cycles: {} samples, IPC range {lo:.2}..{hi:.2}, measured instrs {measured} vs ground truth {truth}",
            series.len()
        ));
        r.check(
            format!("window {window}: counter stream equals hardware retire count exactly"),
            measured == truth,
        );
        r.check(
            format!("window {window}: timeline resolves the two program phases"),
            hi > 1.2 && lo < 0.7,
        );
        if r.obs.is_enabled() {
            let mut run = audo_obs::Registry::new();
            ed.export_obs(&mut run);
            run.sample("ipc.samples", series.len() as u64);
            run.sample("ipc.instructions_measured", measured);
            r.obs.merge_from(&format!("w{window}."), &run, 1);
        }
    }
    Ok(r)
}

// ======================================================================
// E3 — §5: event rates per executed instruction, all in parallel
// ======================================================================

/// Measures seven rates in one run and cross-checks every numerator against
/// the ground-truth event stream, exactly (up to the last completed window).
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e3_parallel_rates() -> Result<Report, SimError> {
    let mut r = Report::new("E3", "parallel non-intrusive rate measurement (§5)");
    let p = EngineParams {
        rpm: 6000,
        target_teeth: 25,
        ..EngineParams::default()
    };
    let (w, mut ed) = engine_ed(&p)?;
    let metrics = [
        Metric::Ipc,
        Metric::IcacheMissPerInstr,
        Metric::DcacheMissPerInstr,
        Metric::FlashDataAccessPerInstr,
        Metric::RegionAccessPerInstr(audo_common::events::MemRegion::Sram),
        Metric::InterruptsPerKilocycle,
        Metric::BusContentionPerKilocycle,
    ];
    let spec = ProfileSpec::new().metrics(&metrics, 1000);
    let (mcds, map) = spec.compile()?;
    ed.program_mcds(mcds);
    let mut truth: Vec<EventRecord> = Vec::new();
    let mut host = Vec::new();
    let mut halted = false;
    let mut cycles = 0u64;
    while !halted && cycles < w.max_cycles {
        let step = ed.step()?;
        truth.extend_from_slice(&step.obs.events);
        halted = step.halted;
        cycles += 1;
        let level = ed.trace.level();
        if level > 0 {
            host.extend_from_slice(&ed.drain_trace(level as u32)?);
        }
    }
    let (messages, err) = audo_mcds::msg::decode_stream_lossy(&host);
    assert!(err.is_none(), "trace must decode: {err:?}");
    let timeline = audo_profiler::timeline::Timeline::from_messages(&messages, &map);
    r.line(format!(
        "one run, {} metrics, {cycles} cycles, {} trace bytes",
        map.len(),
        host.len()
    ));
    r.line(format!(
        "{:<34} {:>10} {:>12} {:>12}",
        "metric", "average", "measured", "truth"
    ));
    for m in metrics {
        let series = timeline.series(m);
        let last_cycle = series.last().map_or(Cycle(0), |s| s.cycle);
        let measured: u64 = series.iter().map(|s| s.num).sum();
        let sel = m.selectors()[0];
        let expect: u64 = truth
            .iter()
            .filter(|e| e.cycle <= last_cycle)
            .map(|e| sel.weight(e))
            .sum();
        r.line(format!(
            "{:<34} {:>10.4} {:>12} {:>12}",
            m.name(),
            timeline.average(m),
            measured,
            expect
        ));
        r.check(
            format!("{}: MCDS count equals ground truth exactly", m.name()),
            measured == expect,
        );
    }
    report_stall_decomposition(&mut r, &ed.soc.tricore, cycles);
    if r.obs.is_enabled() {
        let mut run = audo_obs::Registry::new();
        ed.export_obs(&mut run);
        r.obs.merge_from("run.", &run, 1);
    }
    Ok(r)
}

// ======================================================================
// E4 — §5: cascaded multi-resolution counter structures
// ======================================================================

/// Compares always-fine, cascaded and coarse-only measurement of the phased
/// program: the cascade must deliver fine detail in the bad phase at a
/// fraction of the trace volume.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e4_cascade() -> Result<Report, SimError> {
    let mut r = Report::new("E4", "cascaded multi-resolution rate capture (§5)");
    let fine = MetricRequest {
        metric: Metric::FlashDataAccessPerInstr,
        window: 50,
    };

    let mut ed = phased_ed()?;
    let spec_fine = ProfileSpec::new()
        .metric(Metric::Ipc, 200)
        .metric(fine.metric, fine.window);
    let out_fine = profile(&mut ed, &spec_fine, &SessionOptions::default())?;

    let mut ed = phased_ed()?;
    let spec_casc =
        ProfileSpec::new()
            .metric(Metric::Ipc, 200)
            .cascade(Metric::Ipc, 0.55, vec![fine]);
    let out_casc = profile(&mut ed, &spec_casc, &SessionOptions::default())?;

    let mut ed = phased_ed()?;
    let spec_coarse = ProfileSpec::new().metric(Metric::Ipc, 200);
    let out_coarse = profile(&mut ed, &spec_coarse, &SessionOptions::default())?;

    let fine_samples = |o: &audo_profiler::SessionOutcome| {
        o.timeline.series(Metric::FlashDataAccessPerInstr).len()
    };
    let bad_phase_start = out_casc.cycles / 2;
    let casc_in_bad = out_casc
        .timeline
        .series(Metric::FlashDataAccessPerInstr)
        .iter()
        .filter(|s| s.cycle.0 > bad_phase_start)
        .count();
    r.line(format!(
        "{:<22} {:>12} {:>14}",
        "configuration", "trace bytes", "fine samples"
    ));
    r.line(format!(
        "{:<22} {:>12} {:>14}",
        "always-fine",
        out_fine.produced_bytes,
        fine_samples(&out_fine)
    ));
    r.line(format!(
        "{:<22} {:>12} {:>14}",
        "cascaded",
        out_casc.produced_bytes,
        fine_samples(&out_casc)
    ));
    r.line(format!(
        "{:<22} {:>12} {:>14}",
        "coarse-only", out_coarse.produced_bytes, 0
    ));
    r.line(format!(
        "cascade: {casc_in_bad} of {} fine samples fall in the low-IPC phase",
        fine_samples(&out_casc)
    ));
    r.check(
        "cascade costs less bandwidth than always-fine",
        out_casc.produced_bytes < out_fine.produced_bytes,
    );
    r.check(
        "cascade costs more than coarse-only (it does add detail)",
        out_casc.produced_bytes > out_coarse.produced_bytes,
    );
    r.check("fine samples exist in the bad phase", casc_in_bad >= 5);
    r.check(
        "fine samples are concentrated in the bad phase",
        casc_in_bad * 10 >= fine_samples(&out_casc) * 9,
    );
    // The stall decomposition of the phased program explains *why* the
    // cascade triggers: the low-IPC phase is flash-bound (fetch/data
    // stalls), not execute-bound.
    report_stall_decomposition(&mut r, &ed.soc.tricore, out_coarse.cycles);
    if r.obs.is_enabled() {
        let mut run = audo_obs::Registry::new();
        ed.export_obs(&mut run);
        r.obs.merge_from("coarse.", &run, 1);
    }
    Ok(r)
}

// ======================================================================
// E5 — §5 closing claim: rate messages vs external counter sampling
// ======================================================================

/// Sweeps CPU frequency and compares tool-bandwidth demand of on-chip rate
/// messages vs external register sampling at equal resolution, plus a
/// measured data point from a real session.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e5_bandwidth() -> Result<Report, SimError> {
    let mut r = Report::new(
        "E5",
        "tool-interface bandwidth scalability (§5 closing claim)",
    );
    let dap = DapConfig::default();
    let probes = 4u32;
    let window = 1000u32;
    r.line(format!(
        "{} probes, {}-cycle windows, DAP capacity {:.1} MB/s (does not scale with CPU clock)",
        probes,
        window,
        dap.bytes_per_second() / 1e6
    ));
    r.line(format!(
        "{:>8} {:>16} {:>16} {:>10}",
        "CPU MHz", "on-chip B/s", "sampling B/s", "reduction"
    ));
    let mut rows = Vec::new();
    for mhz in [80u64, 150, 200, 300] {
        let row = bandwidth::compare(probes, window, Freq::mhz(mhz), &dap);
        r.line(format!(
            "{:>8} {:>16.0} {:>16.0} {:>9.1}x",
            mhz, row.onchip, row.sampling, row.reduction
        ));
        rows.push(row);
    }
    let fastest = rows.last().expect("rows");
    r.check(
        "on-chip demand stays under DAP capacity at 300 MHz",
        fastest.onchip < fastest.capacity,
    );
    r.check(
        "external sampling exceeds DAP capacity at 300 MHz",
        fastest.sampling > fastest.capacity,
    );
    r.check(
        "reduction factor is at least 3x at every frequency",
        rows.iter().all(|x| x.reduction >= 3.0),
    );

    let p = EngineParams {
        rpm: 6000,
        target_teeth: 20,
        ..EngineParams::default()
    };
    let (w, mut ed) = engine_ed(&p)?;
    let spec = ProfileSpec::new()
        .metric(Metric::Ipc, 1000)
        .metric(Metric::IcacheMissPerInstr, 1000)
        .metric(Metric::DcacheMissPerInstr, 1000)
        .metric(Metric::InterruptsPerKilocycle, 1000);
    let out = profile(
        &mut ed,
        &spec,
        &SessionOptions {
            max_cycles: w.max_cycles,
            drain: DrainPolicy::Dap(dap.clone()),
            observe: r.obs.is_enabled(),
            ..SessionOptions::default()
        },
    )?;
    r.obs.merge_from("", &out.obs, 1);
    let measured_bps = out.produced_bytes as f64 / (out.cycles as f64 / 150e6);
    r.line(format!(
        "measured session (150 MHz, 4 metrics): {:.0} B/s produced, {} bytes lost over the DAP link",
        measured_bps, out.lost_bytes
    ));
    r.check(
        "measured rate-message session fits the DAP with zero loss",
        out.lost_bytes == 0,
    );

    // Scalable time-stamping (§3): the same rate-message stream with
    // coarser stamps costs measurably less bandwidth (dense program-flow
    // streams have 1-byte deltas already; sparse counter streams are where
    // the knob pays).
    let stamped = |shift: u8| -> Result<u64, SimError> {
        let (w, mut ed) = engine_ed(&p)?;
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, 300)
            .metric(Metric::IcacheMissPerInstr, 300)
            .metric(Metric::DcacheMissPerInstr, 300)
            .metric(Metric::InterruptsPerKilocycle, 300)
            .with_timestamp_shift(shift);
        let out = profile(
            &mut ed,
            &spec,
            &SessionOptions {
                max_cycles: w.max_cycles,
                ..SessionOptions::default()
            },
        )?;
        Ok(out.produced_bytes)
    };
    let fine = stamped(0)?;
    let coarse = stamped(8)?;
    r.line(format!(
        "scalable time-stamping: 4 rate probes {fine} bytes cycle-exact vs {coarse} bytes at 256-cycle stamps ({:.1}% saved)",
        100.0 * (fine - coarse) as f64 / fine.max(1) as f64
    ));
    r.check("coarser timestamps reduce trace volume", coarse < fine);

    // The §4 premise behind the whole flash story: the flash array needs
    // constant *time*, so a faster CPU clock sees more wait states — the
    // CPU→flash path degrades relative to the core.
    let chase = table_chase(16, 2_000, true);
    let base_cycles = run_workload_cycles(&SocConfig::default(), &chase)?;
    let mut fast = SocConfig {
        cpu_clock: Freq::mhz(300),
        ..SocConfig::default()
    };
    fast.rescale_flash_for_clock(Freq::mhz(150));
    let fast_cycles = run_workload_cycles(&fast, &chase)?;
    r.line(format!(
        "flash-bound chase: {base_cycles} cycles at 150 MHz (ws=5) vs {fast_cycles} cycles at 300 MHz (ws=10): more cycles per unit of work as the clock rises"
    ));
    r.check(
        "a 2x CPU clock costs more cycles on the flash-bound path (constant-time flash)",
        fast_cycles as f64 > base_cycles as f64 * 1.3,
    );
    Ok(r)
}

// ======================================================================
// E6 — §4: architecture options on the CPU→flash path, replayed
// ======================================================================

/// Replays three unchanged workloads across candidate architecture options.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e6_arch_sweep() -> Result<Report, SimError> {
    let mut r = Report::new("E6", "architecture-option sweep on measured workloads (§4)");
    let baseline = SocConfig::default();
    let options = [
        ArchOption::FlashWaitStates(3),
        ArchOption::FlashReadBuffers(4),
        ArchOption::FlashPrefetch(false),
        ArchOption::FlashArbitration(PortArbitration::DataFirst),
        ArchOption::IcacheSize(ByteSize::kib(32)),
        ArchOption::DcacheSize(ByteSize::kib(8)),
    ];
    let workloads = [
        engine_control(&EngineParams {
            rpm: 12_000,
            target_teeth: 25,
            ..EngineParams::default()
        }),
        table_chase(16, 4_000, true),
        flash_streamer(1500, 10),
        flash_duel(800, 8), // code footprint > I-cache: both PMU ports stay busy
    ];
    let cost_model = CostModel::default();
    let mut engine_ws_gain = 0.0;
    let mut chase_ws = (0.0, 0.0);
    let mut duel_arb_gain = 0.0;
    let mut studies: Vec<(String, audo_profiler::OptionStudy)> = Vec::new();
    for w in &workloads {
        let mut soc = Soc::new(baseline.clone());
        w.install(&mut soc)?;
        let mut events = Vec::new();
        let cycles = soc.run(w.max_cycles, |o| events.extend_from_slice(&o.events))?;
        let prof = MeasuredProfile::from_events(cycles, &events);
        let study = evaluate_options(&baseline, &options, &cost_model, Some(&prof), |cfg| {
            run_workload_cycles(cfg, w)
        })?;
        r.line(format!("--- {} ---", w.name));
        for l in study.render().lines() {
            r.line(format!("    {l}"));
        }
        for e in &study.evaluations {
            if let ArchOption::FlashWaitStates(_) = e.option {
                if w.name.starts_with("engine") {
                    engine_ws_gain = e.gain;
                }
                if w.name == "table_chase" {
                    chase_ws = (e.gain, e.analytical_gain.unwrap_or(0.0));
                }
            }
            if let ArchOption::FlashArbitration(_) = e.option {
                if w.name == "flash_duel" {
                    duel_arb_gain = e.gain.abs();
                }
            }
        }
        studies.push((w.name.clone(), study));
    }
    // §4: "without negative side effects for other possible use cases" —
    // aggregate across workloads and veto options that regress any of them.
    let cross = cross_workload_ranking(&studies, 0.002);
    r.line("--- cross-workload ranking (regression veto per §4) ---".to_string());
    for l in render_cross_ranking(&cross).lines() {
        r.line(format!("    {l}"));
    }
    r.check(
        "the top cross-workload option regresses no workload",
        cross[0].safe,
    );
    r.check(
        "the top cross-workload option has positive geomean gain",
        cross[0].geomean_speedup > 1.0,
    );
    r.check(
        "flash wait states gain >2% on the engine workload",
        engine_ws_gain > 0.02,
    );
    r.check(
        "flash wait states gain >15% on the uncached chase",
        chase_ws.0 > 0.15,
    );
    r.check(
        "analytical estimate within 2 points of replay on the chase",
        (chase_ws.0 - chase_ws.1).abs() < 0.02,
    );
    r.check(
        "port arbitration measurably matters on the duel workload",
        duel_arb_gain > 0.001,
    );
    Ok(r)
}

// ======================================================================
// E7 — §6: performance-gain / cost ranking
// ======================================================================

/// Ranks the E6 options by gain/cost on the engine workload and checks the
/// ranking logic.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e7_gain_cost() -> Result<Report, SimError> {
    let mut r = Report::new("E7", "gain/cost ranking of improvement options (§6)");
    let baseline = SocConfig::default();
    let options = [
        ArchOption::FlashWaitStates(3),
        ArchOption::FlashReadBuffers(4),
        ArchOption::DcacheSize(ByteSize::kib(8)),
        ArchOption::IcacheSize(ByteSize::kib(32)),
        ArchOption::FlashArbitration(PortArbitration::RoundRobin),
    ];
    let w = engine_control(&EngineParams {
        rpm: 12_000,
        target_teeth: 25,
        ..EngineParams::default()
    });
    let study = evaluate_options(&baseline, &options, &CostModel::default(), None, |cfg| {
        run_workload_cycles(cfg, &w)
    })?;
    for l in study.render().lines() {
        r.line(l.to_string());
    }
    let ranked: Vec<String> = study.evaluations.iter().map(|e| e.option.label()).collect();
    r.line(format!("ranking: {}", ranked.join("  >  ")));
    let top = &study.evaluations[0];
    let best_gain = study
        .evaluations
        .iter()
        .max_by(|a, b| a.gain.partial_cmp(&b.gain).expect("finite"))
        .expect("non-empty");
    r.line(format!(
        "best raw gain: {} ({:.2}%); best gain/cost: {} ({:.3} %/kGE)",
        best_gain.option.label(),
        best_gain.gain * 100.0,
        top.option.label(),
        top.gain_per_cost
    ));
    r.check("a positive-gain option ranks first", top.gain > 0.0);
    r.check(
        "gain/cost ordering is monotone",
        study
            .evaluations
            .windows(2)
            .all(|w| w[0].gain_per_cost >= w[1].gain_per_cost),
    );
    let study2 = evaluate_options(&baseline, &options, &CostModel::default(), None, |cfg| {
        run_workload_cycles(cfg, &w)
    })?;
    r.check(
        "ranking is reproducible (deterministic platform)",
        study2
            .evaluations
            .iter()
            .map(|e| e.option.label())
            .collect::<Vec<_>>()
            == ranked,
    );
    Ok(r)
}

// ======================================================================
// E8 — §1: TriCore/PCP software partitioning
// ======================================================================

/// Compares CPU-handled CAN vs PCP-offloaded CAN under heavy bus load.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e8_partitioning() -> Result<Report, SimError> {
    let mut r = Report::new("E8", "HW/SW partitioning between TriCore and PCP (§1)");
    let base = EngineParams {
        rpm: 12_000,
        target_teeth: 20,
        can_period: 1_200,
        ..EngineParams::default()
    };
    let mut rows = Vec::new();
    for (label, can_on_pcp) in [("CAN on CPU", false), ("CAN on PCP", true)] {
        let p = EngineParams {
            can_on_pcp,
            ..base.clone()
        };
        let (w, mut ed) = engine_ed(&p)?;
        let mut cpu_irqs = 0u64;
        let cycles = ed.run(w.max_cycles, |s| {
            cpu_irqs += s
                .obs
                .events
                .iter()
                .filter(|e| matches!(e.event, PerfEvent::IrqTaken { .. }))
                .count() as u64;
        })?;
        let can_count = ed
            .soc
            .fabric
            .peek(Addr(layout::STATE + layout::state::CAN_COUNT), 4)?;
        rows.push((
            label,
            cycles,
            cpu_irqs,
            can_count,
            ed.soc.pcp.retired_total(),
        ));
    }
    r.line(format!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "variant", "cycles", "CPU irqs", "CAN handled", "PCP instrs"
    ));
    for (label, cycles, irqs, can, pcp) in &rows {
        r.line(format!(
            "{label:<12} {cycles:>10} {irqs:>10} {can:>12} {pcp:>12}"
        ));
    }
    let (cpu, pcp) = (&rows[0], &rows[1]);
    r.check("both variants handled CAN traffic", cpu.3 > 0 && pcp.3 > 0);
    r.check(
        "PCP variant takes far fewer CPU interrupts",
        pcp.2 * 2 < cpu.2,
    );
    r.check(
        "PCP variant finishes the compute-bound run sooner",
        pcp.1 < cpu.1,
    );
    r.check("PCP executed the offloaded firmware", pcp.4 > 1000);
    Ok(r)
}

// ======================================================================
// E9 — §3: cycle-accurate multi-core + bus trace, reconstructed
// ======================================================================

/// Traces TriCore program flow, PCP channel activity and bus transactions
/// concurrently; reconstructs the program flow and verifies coverage,
/// ordering and compression.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e9_trace() -> Result<Report, SimError> {
    let mut r = Report::new(
        "E9",
        "multi-core cycle-accurate trace + reconstruction (§3)",
    );
    let p = EngineParams {
        rpm: 12_000,
        target_teeth: 15,
        can_period: 2_000,
        can_on_pcp: true,
        target_bg_passes: 10,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed)?;
    let spec = ProfileSpec::new()
        .with_program_trace()
        .with_sync_every(16)
        .with_pcp_trace()
        .with_bus_trace(Some(SourceId::DMA));
    let out = profile(
        &mut ed,
        &spec,
        &SessionOptions {
            max_cycles: w.max_cycles,
            observe: r.obs.is_enabled(),
            ..SessionOptions::default()
        },
    )?;
    let retired = ed.soc.tricore.retired_total();
    let rec = reconstruct_flow(&w.image, &out.messages)?;
    r.obs.merge_from("", &out.obs, 1);
    if r.obs.is_enabled() {
        r.obs.sample("reconstruction.instructions", rec.instr_count);
        r.obs
            .sample("reconstruction.flow_messages", rec.flow_messages);
        r.obs
            .sample("reconstruction.symbols", rec.per_symbol.len() as u64);
        r.flame.merge(&rec.folded, None);
    }
    let pcp_msgs = out
        .messages
        .iter()
        .filter(|(_, m)| matches!(m, TraceMessage::PcpChannel { .. }))
        .count();
    let bus_msgs = out
        .messages
        .iter()
        .filter(|(_, m)| matches!(m, TraceMessage::Bus { .. }))
        .count();
    let monotonic = out.messages.windows(2).all(|p| p[0].0 <= p[1].0);
    let bytes_per_instr = out.produced_bytes as f64 / rec.instr_count.max(1) as f64;
    r.line(format!(
        "{} cycles, {} trace bytes; reconstructed {} of {} retired instructions from {} flow messages",
        out.cycles, out.produced_bytes, rec.instr_count, retired, rec.flow_messages
    ));
    r.line(format!(
        "{pcp_msgs} PCP channel markers, {bus_msgs} DMA bus transactions, interleaved on one timestamp axis"
    ));
    r.line(format!(
        "trace cost: {bytes_per_instr:.2} bytes per reconstructed instruction"
    ));
    r.line("top functions by reconstructed instructions:".to_string());
    for (name, instrs, share) in flat_profile(&rec).into_iter().take(5) {
        r.line(format!("    {name:<16} {instrs:>10} {share:>6.2}%"));
    }
    r.check(
        "decode clean (no trace loss)",
        out.decode_error.is_none() && out.lost_bytes == 0,
    );
    r.check(
        "reconstruction covers ≥97% of retired instructions",
        rec.instr_count as f64 >= retired as f64 * 0.97,
    );
    r.check("PCP activity interleaved in the same stream", pcp_msgs >= 2);
    r.check(
        "autonomous DMA activity visible via bus trace",
        bus_msgs > 10,
    );
    r.check(
        "timestamps monotonic (order preserved to cycle level)",
        monotonic,
    );
    r.check(
        "compression below 2 bytes/instruction",
        bytes_per_instr < 2.0,
    );
    r.check(
        "the crank ISR appears in the function profile",
        rec.per_symbol.contains_key("isr_crank"),
    );
    Ok(r)
}

// ======================================================================
// E10 — §3: EMEM shared between trace and calibration overlay
// ======================================================================

/// Runs a live calibration session (map scaled ×2 mid-run) and sweeps the
/// EMEM partitioning trade-off.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e10_calibration() -> Result<Report, SimError> {
    let mut r = Report::new("E10", "calibration overlay sharing EMEM with trace (§3)");
    r.line(format!(
        "{:>14} {:>16} {:>12}",
        "trace region", "overlay pages", "trace lost"
    ));
    let mut losses = Vec::new();
    for trace_kib in [32u32, 128, 448] {
        let p = EngineParams {
            rpm: 12_000,
            target_teeth: 20,
            ..EngineParams::default()
        };
        let w = engine_control(&p);
        let mut ed = EmulationDevice::new(
            SocConfig::default(),
            EdConfig {
                trace_bytes: trace_kib * 1024,
                trace_mode: TraceMode::Linear,
            },
        );
        w.install_ed(&mut ed)?;
        ed.program_mcds(audo_mcds::Mcds::builder().program_trace().build()?);
        ed.run(w.max_cycles, |_| {})?;
        let pages = ed.calibration_bytes() / ed.soc.fabric.cfg.overlay_page;
        r.line(format!(
            "{:>11}KiB {:>16} {:>12}",
            trace_kib,
            pages,
            ed.trace.lost()
        ));
        losses.push(ed.trace.lost());
    }
    r.check(
        "larger trace regions lose less",
        losses.windows(2).all(|w| w[0] >= w[1]),
    );

    let p = EngineParams {
        rpm: 6000,
        target_teeth: 120,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let mut ed = EmulationDevice::new(
        SocConfig::default(),
        EdConfig {
            trace_bytes: 64 * 1024,
            trace_mode: TraceMode::Ring,
        },
    );
    w.install_ed(&mut ed)?;
    // Profiling runs concurrently with the calibration session.
    ed.program_mcds(
        audo_mcds::Mcds::builder()
            .probe(audo_mcds::RateProbe {
                event: audo_mcds::EventSelector::of(audo_mcds::EventClass::InstrRetired)
                    .from(SourceId::TRICORE),
                basis: audo_mcds::Basis::Cycles(5_000),
                group: None,
            })
            .build()?,
    );
    let inj_map = w.image.symbol("inj_map").expect("inj_map");
    let page = ed.soc.fabric.cfg.overlay_page;
    ed.map_calibration_page(0, (inj_map.0 - 0x8000_0000) / page)?;
    let phase = w.max_cycles / 3;
    ed.run(phase, |_| {}).ok();
    let read_state = |ed: &mut EmulationDevice, off: u32| -> Result<u32, SimError> {
        let b = ed.tool_read(Addr(layout::STATE + off), 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    };
    let row_before = read_state(&mut ed, layout::state::SMOOTH_OUT)?;
    let map_in_emem = Addr(0xE000_0000 + ed.calibration_offset() + (inj_map.0 % page));
    let current = ed.tool_read(map_in_emem, 1024)?;
    let tuned: Vec<u8> = current
        .chunks_exact(4)
        .flat_map(|c| (u32::from_le_bytes([c[0], c[1], c[2], c[3]]) * 2).to_le_bytes())
        .collect();
    ed.tool_write(map_in_emem, &tuned)?;
    ed.run(phase, |_| {}).ok();
    let row_after = read_state(&mut ed, layout::state::SMOOTH_OUT)?;
    let ratio = f64::from(row_after) / f64::from(row_before.max(1));
    r.line(format!(
        "live tuning: map x2 mid-run -> row average {row_before} -> {row_after} ({ratio:.2}x)"
    ));
    r.check(
        "tool-side map change visible in the running application",
        ratio > 1.5,
    );
    r.check(
        "profiling continued during calibration",
        ed.trace.total_written() > 0,
    );
    if r.obs.is_enabled() {
        ed.export_obs(&mut r.obs);
        r.obs
            .sample("calibration.overlay_bytes_tuned", tuned.len() as u64);
    }
    Ok(r)
}

// ======================================================================
// E11 — §5: parallel measurement vs sequential runs
// ======================================================================

/// Shows why "measuring different data sources one after the other" fails:
/// real-time stimulus is not repeatable across runs, while one parallel run
/// captures coherent timelines.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e11_parallel_vs_serial() -> Result<Report, SimError> {
    let mut r = Report::new("E11", "parallel capture vs sequential runs (§5)");
    let p = EngineParams {
        rpm: 6000,
        target_teeth: 40,
        can_period: 4_000,
        ..EngineParams::default()
    };
    let window = 5_000u32;
    let run_with_seed = |seed: u32| -> Result<audo_profiler::SessionOutcome, SimError> {
        let (w, mut ed) = engine_ed(&p)?;
        // A different day in the car: same software, different bus/analog
        // environment.
        ed.soc.fabric.can.reseed(seed);
        ed.soc.fabric.can.jitter = 2_000; // a noisy bus: ±50% spacing
        ed.soc.fabric.adc.reseed(seed.wrapping_mul(7919));
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, window)
            .metric(Metric::IrqRaisedPerKilocycle, window);
        profile(
            &mut ed,
            &spec,
            &SessionOptions {
                max_cycles: w.max_cycles,
                ..SessionOptions::default()
            },
        )
    };
    let run_a = run_with_seed(1)?;
    let run_b = run_with_seed(2)?;
    let irq_a: Vec<f64> = run_a
        .timeline
        .series(Metric::IrqRaisedPerKilocycle)
        .iter()
        .map(|s| s.value)
        .collect();
    let irq_b: Vec<f64> = run_b
        .timeline
        .series(Metric::IrqRaisedPerKilocycle)
        .iter()
        .map(|s| s.value)
        .collect();
    let n = irq_a.len().min(irq_b.len());
    let mean: f64 = irq_a[..n].iter().sum::<f64>() / n as f64;
    let mad: f64 = irq_a[..n]
        .iter()
        .zip(&irq_b[..n])
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / n as f64;
    let rel = mad / mean.max(1e-9);
    r.line(format!(
        "two sequential runs (different real-time environment): {n} windows, mean service-request rate {mean:.3}/kcycle, mean |Δ| {mad:.3} ({:.0}% of mean)",
        rel * 100.0
    ));
    r.line(
        "a sequential two-run measurement would pair run A's IPC with run B's interrupt rate — \
         but the interrupt timelines differ materially between runs"
            .to_string(),
    );
    r.line(format!(
        "the parallel run captured both series on one time axis at {:.1} bytes/kcycle",
        run_a.bytes_per_kilocycle()
    ));
    r.check(
        "sequential runs disagree materially (≥10% mean deviation)",
        rel >= 0.10,
    );
    r.check(
        "parallel run has both series with consistent sample counts",
        {
            let a = run_a.timeline.series(Metric::Ipc).len();
            let b = run_a.timeline.series(Metric::IrqRaisedPerKilocycle).len();
            a == b && a > 10
        },
    );
    Ok(r)
}

// ======================================================================
// E12 — Fig. 1: the F-model generation step
// ======================================================================

/// Runs the packaged F-model workflow: evaluate options per workload,
/// rank with the §4 regression veto, adopt the affordable winners, and
/// validate the combined next generation on the unchanged software.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e12_fmodel() -> Result<Report, SimError> {
    use audo_profiler::generation::{plan_next_generation, GenerationPlanOptions};
    let mut r = Report::new(
        "E12",
        "F-model: next generation, software unchanged (Fig. 1)",
    );
    let baseline = SocConfig::default();
    let options = [
        ArchOption::FlashWaitStates(3),
        ArchOption::FlashReadBuffers(4),
        ArchOption::FlashArbitration(PortArbitration::DataFirst),
        ArchOption::IcacheSize(ByteSize::kib(32)),
        ArchOption::DcacheSize(ByteSize::kib(8)),
    ];
    let workloads = [
        engine_control(&EngineParams {
            rpm: 12_000,
            target_teeth: 25,
            ..EngineParams::default()
        }),
        table_chase(16, 4_000, true),
        flash_duel(800, 8),
        engine_control(&EngineParams {
            rpm: 12_000,
            target_teeth: 25,
            tables_in_dspr: true,
            ..EngineParams::default()
        }),
    ];
    let names: Vec<String> = workloads.iter().map(|w| w.name.clone()).collect();
    let plan = plan_next_generation(
        &baseline,
        &names,
        &options,
        &CostModel::default(),
        &GenerationPlanOptions {
            budget: 120.0,
            ..GenerationPlanOptions::default()
        },
        |cfg, i| run_workload_cycles(cfg, &workloads[i]),
    )?;
    for l in plan.render().lines() {
        r.line(l.to_string());
    }
    r.check(
        "the planner adopted at least one option",
        !plan.adopted.is_empty(),
    );
    r.check(
        "the adopted set respects the 120 kGE budget",
        plan.total_cost <= 120.0,
    );
    r.check(
        "no workload regresses on the next generation (software compatibility)",
        plan.combined_speedups.iter().all(|(_, s)| *s >= 0.999),
    );
    let engine = plan
        .combined_speedups
        .iter()
        .find(|(n, _)| n.starts_with("engine[12000rpm]"))
        .expect("engine workload present");
    r.check("the engine workload gains >8% on gen N+1", engine.1 > 1.08);
    let chase = plan
        .combined_speedups
        .iter()
        .find(|(n, _)| n == "table_chase")
        .expect("chase workload present");
    r.check(
        "the flash-bound chase gains >15% on gen N+1",
        chase.1 > 1.15,
    );
    Ok(r)
}

/// An experiment entry point.
pub type ExperimentFn = fn() -> Result<Report, SimError>;

/// The full experiment registry, in report order. Each entry pairs the
/// experiment id (as matched by `--filter`) with its entry point; every
/// experiment is self-contained and independently seeded, which is what
/// lets [`run_selected`] schedule them concurrently.
#[must_use]
pub fn registry() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("E1", e1_platform as ExperimentFn),
        ("E2", e2_ipc_timeline),
        ("E3", e3_parallel_rates),
        ("E4", e4_cascade),
        ("E5", e5_bandwidth),
        ("E6", e6_arch_sweep),
        ("E7", e7_gain_cost),
        ("E8", e8_partitioning),
        ("E9", e9_trace),
        ("E10", e10_calibration),
        ("E11", e11_parallel_vs_serial),
        ("E12", e12_fmodel),
        ("E13", e13_mli_intrusiveness),
        ("E14", e14_data_attribution),
        ("E15", e15_software_optimization),
        ("E16", e16_tool_link),
    ]
}

/// One experiment's report plus its wall-clock duration.
#[derive(Debug, Clone)]
pub struct TimedReport {
    /// The experiment's report.
    pub report: Report,
    /// How long the experiment ran.
    pub duration: std::time::Duration,
}

/// Runs the registry experiments whose id is in `ids` (all of them when
/// `ids` is empty) on up to `jobs` worker threads. Reports come back in
/// registry order whatever the scheduling, so the rendered output is
/// byte-identical to a `jobs = 1` run.
///
/// # Errors
///
/// Returns `SimError::InvalidConfig` for an unknown id; otherwise
/// propagates the first simulation fault in registry order.
pub fn run_selected(ids: &[String], jobs: usize) -> Result<Vec<TimedReport>, SimError> {
    let all = registry();
    let selected: Vec<(&'static str, ExperimentFn)> = if ids.is_empty() {
        all
    } else {
        for id in ids {
            if !all.iter().any(|(known, _)| known.eq_ignore_ascii_case(id)) {
                return Err(SimError::InvalidConfig {
                    message: format!("unknown experiment id {id:?} (known: E1..E{})", all.len()),
                });
            }
        }
        all.into_iter()
            .filter(|(id, _)| ids.iter().any(|want| want.eq_ignore_ascii_case(id)))
            .collect()
    };
    let outcomes = crate::scheduler::run_jobs(selected.len(), jobs, |i| selected[i].1());
    outcomes
        .into_iter()
        .map(|job| {
            job.output.map(|report| TimedReport {
                report,
                duration: job.duration,
            })
        })
        .collect()
}

/// Runs every experiment in order, sequentially (compatibility wrapper —
/// the `experiments` binary uses [`run_selected`] with a worker pool).
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn run_all() -> Result<Vec<Report>, SimError> {
    Ok(run_selected(&[], 1)?
        .into_iter()
        .map(|t| t.report)
        .collect())
}

// ======================================================================
// E13 — §3: the intrusive MLI/monitor path vs the ED/DAP path
// ======================================================================

/// Quantifies the §3 alternative access path: "a tool can communicate …
/// with a monitor routine, running on TriCore" — i.e. the target CPU pays
/// cycles for every transferred byte, while the ED/DAP path is free.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e13_mli_intrusiveness() -> Result<Report, SimError> {
    let mut r = Report::new(
        "E13",
        "MLI monitor path vs non-intrusive ED/DAP access (§3)",
    );
    let monitor = audo_dap::MliMonitor::default();
    let chunk = 256u64;
    let p = EngineParams {
        rpm: 6000,
        target_teeth: 20,
        ..EngineParams::default()
    };

    let mut results = Vec::new();
    for (label, spec) in [
        (
            "rates only (4 probes)",
            ProfileSpec::new()
                .metric(Metric::Ipc, 1000)
                .metric(Metric::IcacheMissPerInstr, 1000)
                .metric(Metric::DcacheMissPerInstr, 1000)
                .metric(Metric::InterruptsPerKilocycle, 1000),
        ),
        (
            "full program trace",
            ProfileSpec::new().with_program_trace(),
        ),
    ] {
        let (w, mut ed) = engine_ed(&p)?;
        let out = profile(
            &mut ed,
            &spec,
            &SessionOptions {
                max_cycles: w.max_cycles,
                ..SessionOptions::default()
            },
        )?;
        // MLI path: the monitor routine moves the same bytes in 256-byte
        // chunks, stealing CPU cycles per invocation and per byte.
        let invocations = out.produced_bytes.div_ceil(chunk);
        let stolen = (0..invocations)
            .map(|i| {
                let bytes = chunk.min(out.produced_bytes - i * chunk);
                monitor.intrusion_cycles(bytes)
            })
            .sum::<u64>();
        let overhead = stolen as f64 / out.cycles as f64;
        r.line(format!(
            "{label:<24}: {} bytes over {} cycles -> MLI steals {} CPU cycles ({:.1}% slowdown); ED/DAP steals 0",
            out.produced_bytes,
            out.cycles,
            stolen,
            overhead * 100.0
        ));
        results.push((label, out.produced_bytes, overhead));
    }
    r.line(
        "(the ED path's zero intrusion is verified directly: identical cycle counts with and \
         without the MCDS attached — see `observation_is_nonintrusive` in audo-ed)"
            .to_string(),
    );
    r.check(
        "full-trace transport over MLI costs >50% of the CPU",
        results[1].2 > 0.5,
    );
    r.check(
        "even the cheap rate-message stream costs measurable CPU over MLI",
        results[0].2 > 0.001,
    );
    r.check(
        "rate messages reduce the MLI pain vs full trace by >10x",
        results[1].2 / results[0].2.max(1e-12) > 10.0,
    );
    Ok(r)
}

// ======================================================================
// E14 — §5: qualified data trace for data-structure attribution
// ======================================================================

/// Uses the qualified data trace to attribute accesses to the application's
/// data structures — the §5 customer value of finding "data
/// structures/variables that should be mapped to scratch pad memory".
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e14_data_attribution() -> Result<Report, SimError> {
    let mut r = Report::new(
        "E14",
        "qualified data trace: data-structure attribution (§5)",
    );
    let p = EngineParams {
        rpm: 12_000,
        target_teeth: 25,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed)?;
    let inj_map = w.image.symbol("inj_map").expect("inj_map").0;
    let ign_map = w.image.symbol("ign_map").expect("ign_map").0;
    // One qualifier covering both flash tables (reads only).
    let qual = audo_mcds::DataQualifier {
        lo: Addr(inj_map),
        hi: Addr(ign_map + 64 - 1),
        source: Some(SourceId::TRICORE),
        kind: Some(audo_common::AccessKind::Read),
    };
    let spec = ProfileSpec::new().with_data_trace(qual);
    let (mcds, _map) = spec.compile()?;
    ed.program_mcds(mcds);
    let mut truth_in_range = 0u64;
    let mut host = Vec::new();
    let mut halted = false;
    while !halted {
        let step = ed.step()?;
        for e in &step.obs.events {
            if let PerfEvent::DataValue {
                addr,
                kind: audo_common::AccessKind::Read,
                ..
            } = e.event
            {
                if e.source == SourceId::TRICORE && addr.0 >= inj_map && addr.0 < ign_map + 64 {
                    truth_in_range += 1;
                }
            }
        }
        halted = step.halted;
        let level = ed.trace.level();
        if level > 0 {
            host.extend_from_slice(&ed.drain_trace(level as u32)?);
        }
    }
    let (messages, err) = audo_mcds::msg::decode_stream_lossy(&host);
    assert!(err.is_none());
    let mut per_structure = std::collections::BTreeMap::new();
    let mut traced = 0u64;
    for (_, m) in &messages {
        if let TraceMessage::Data { addr, .. } = m {
            traced += 1;
            let name = if addr.0 >= ign_map {
                "ign_map"
            } else {
                "inj_map"
            };
            *per_structure.entry(name).or_insert(0u64) += 1;
        }
    }
    r.line(format!(
        "qualifier [{:#x}..{:#x}), reads by TriCore: traced {traced} accesses (ground truth {truth_in_range})",
        inj_map,
        ign_map + 64
    ));
    for (name, n) in &per_structure {
        r.line(format!("    {name:<10} {n:>8} accesses"));
    }
    r.check(
        "every qualified access captured, none invented",
        traced == truth_in_range,
    );
    r.check(
        "the injection map is identified as the hot structure",
        per_structure.get("inj_map").copied().unwrap_or(0)
            > per_structure.get("ign_map").copied().unwrap_or(0),
    );
    r.check("accesses outside the qualifier window are not traced", {
        // ADC buffer traffic (DSPR) is heavy but must not appear.
        messages.iter().all(|(_, m)| match m {
            TraceMessage::Data { addr, .. } => addr.0 >= inj_map && addr.0 < ign_map + 64,
            _ => true,
        })
    });
    Ok(r)
}

// ======================================================================
// E15 — §5: the customer's software optimizations, measured
// ======================================================================

/// Quantifies the §5 customer-side optimizations the profiling method is
/// meant to drive: mapping hot data to the DSPR, hot ISR code to the PSPR,
/// and offloading CAN to the PCP — individually and combined — with the
/// before/after comparison the paper asks for ("measuring the result of
/// the improvement quantitatively").
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e15_software_optimization() -> Result<Report, SimError> {
    let mut r = Report::new(
        "E15",
        "customer software optimizations (§5), before vs after",
    );
    let base = EngineParams {
        rpm: 12_000,
        target_teeth: 20,
        can_period: 2_000,
        ..EngineParams::default()
    };
    let variants: [(&str, EngineParams); 5] = [
        ("baseline", base.clone()),
        (
            "tables->DSPR",
            EngineParams {
                tables_in_dspr: true,
                ..base.clone()
            },
        ),
        (
            "ISRs->PSPR",
            EngineParams {
                isrs_in_pspr: true,
                ..base.clone()
            },
        ),
        (
            "CAN->PCP",
            EngineParams {
                can_on_pcp: true,
                ..base.clone()
            },
        ),
        (
            "all combined",
            EngineParams {
                tables_in_dspr: true,
                isrs_in_pspr: true,
                can_on_pcp: true,
                ..base.clone()
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut baseline_tl = None;
    for (label, p) in &variants {
        let (w, mut ed) = engine_ed(p)?;
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, 2000)
            .metric(Metric::DcacheHitRatio, 2000)
            .metric(Metric::InterruptsPerKilocycle, 2000);
        let out = profile(
            &mut ed,
            &spec,
            &SessionOptions {
                max_cycles: w.max_cycles,
                ..SessionOptions::default()
            },
        )?;
        rows.push((
            label.to_string(),
            out.cycles,
            out.timeline.average(Metric::DcacheHitRatio),
        ));
        if *label == "baseline" {
            baseline_tl = Some(out.timeline);
        } else if *label == "all combined" {
            // The paper's before/after comparison, on the measured rates.
            let deltas = audo_profiler::compare_timelines(
                baseline_tl.as_ref().expect("baseline measured first"),
                &out.timeline,
            );
            r.line("baseline vs all-combined (measured rate comparison):".to_string());
            for l in audo_profiler::render_comparison(&deltas).lines() {
                r.line(format!("    {l}"));
            }
        }
    }
    r.line(format!(
        "{:<16} {:>10} {:>10} {:>12}",
        "variant", "cycles", "speedup", "dcache-hit"
    ));
    let base_cycles = rows[0].1;
    for (label, cycles, dhit) in &rows {
        r.line(format!(
            "{label:<16} {cycles:>10} {:>9.3}x {dhit:>12.4}",
            base_cycles as f64 / *cycles as f64
        ));
    }
    let speedup_of = |l: &str| {
        let row = rows.iter().find(|(n, _, _)| n == l).expect("row");
        base_cycles as f64 / row.1 as f64
    };
    r.check("tables->DSPR helps", speedup_of("tables->DSPR") > 1.0);
    r.check("ISRs->PSPR helps", speedup_of("ISRs->PSPR") > 1.0);
    r.check(
        "CAN->PCP helps under this CAN load",
        speedup_of("CAN->PCP") > 1.0,
    );
    r.check(
        "the combination beats every single optimization",
        speedup_of("all combined")
            > speedup_of("tables->DSPR")
                .max(speedup_of("ISRs->PSPR"))
                .max(speedup_of("CAN->PCP")),
    );
    Ok(r)
}

// ======================================================================
// E16 — the robust framed tool link: fault sweep + drain/overlay arbitration
// ======================================================================

/// Exercises the framed `DapSession` protocol end to end: a fault-rate
/// sweep over the differential matrix rates {0, 1e-3, 1e-2} (three pinned
/// seeds each, or a single `--dap-fault-rate` override), asserting the
/// never-silently-wrong contract — each drained stream is byte-identical
/// to the lossless drain or explicitly flagged truncated — plus an
/// arbitration run where a calibration overlay write and the trace drain
/// contend for the same link budget.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn e16_tool_link() -> Result<Report, SimError> {
    use audo_dap::session::{ArbitrationPolicy, DapEndpoint, DapSession, HostTool, SessionConfig};
    use audo_dap::FaultConfig;
    use audo_profiler::session::ToolLinkOptions;

    let mut r = Report::new(
        "E16",
        "robust framed tool link: fault sweep and drain/overlay arbitration",
    );
    let spec = ProfileSpec::new().metric(Metric::Ipc, 200);

    // Reference: the idealised offline drain of the identical program.
    let mut ref_ed = phased_ed()?;
    let reference = profile(&mut ref_ed, &spec, &SessionOptions::default())?;
    let ref_stream_len = reference.downloaded_bytes;

    let rates: Vec<f64> = match crate::dap_fault_rate_override() {
        Some(rate) => vec![rate],
        None => vec![0.0, 1e-3, 1e-2],
    };
    let seeds: [u64; 3] = [11, 23, 47];
    r.line(format!(
        "{:<11} {:>5} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "fault-rate", "seed", "drained", "retries", "timeouts", "truncated", "exact"
    ));
    let mut all_explicit = true;
    let mut lossless_exact = true;
    for &rate in &rates {
        for &seed in &seeds {
            let mut ed = phased_ed()?;
            let out = profile(
                &mut ed,
                &spec,
                &SessionOptions {
                    drain: DrainPolicy::Session(ToolLinkOptions {
                        faults: FaultConfig::uniform(rate, seed),
                        ..ToolLinkOptions::default()
                    }),
                    ..SessionOptions::default()
                },
            )?;
            let report = out.tool.expect("session policy reports");
            if r.obs.is_enabled() {
                // Aggregate link-robustness counters across the sweep.
                r.obs.add("sweep.sessions", 1);
                r.obs.add("sweep.retries", report.stats.retries);
                r.obs.add("sweep.timeouts", report.stats.timeouts);
                r.obs.add("sweep.crc_errors", report.stats.crc_errors);
                r.obs
                    .add("sweep.backoff_cycles", report.stats.backoff_cycles);
                r.obs.add("sweep.rewinds", report.stats.rewinds);
            }
            let exact = out.downloaded_bytes == ref_stream_len && report.complete;
            let explicit = exact || report.stats.trace_truncated;
            all_explicit &= explicit;
            if rate == 0.0 {
                lossless_exact &= exact && report.stats.retries == 0;
            }
            r.line(format!(
                "{rate:<11} {seed:>5} {:>9} {:>8} {:>9} {:>10} {exact:>10}",
                out.downloaded_bytes,
                report.stats.retries,
                report.stats.timeouts,
                report.stats.trace_truncated,
            ));
            r.field(
                format!("rate_{rate}_seed_{seed}_retries"),
                report.stats.retries,
            );
            r.field(
                format!("rate_{rate}_seed_{seed}_truncated"),
                report.stats.trace_truncated,
            );
        }
    }
    r.field("reference_stream_bytes", ref_stream_len);
    r.check(
        "every drain is byte-identical to lossless or explicitly truncated",
        all_explicit,
    );
    if rates.contains(&0.0) {
        r.check("fault rate 0: exact stream, zero retries", lossless_exact);
    }

    // Arbitration: run the target to halt with trace kept on the device,
    // then let an overlay write and the trace drain fight for the link.
    let mut ed = phased_ed()?;
    ed.program_mcds(audo_mcds::Mcds::builder().program_trace().build()?);
    ed.run(2_000_000, |_| {})?;
    let trace_level = ed.trace.level();
    let session = DapSession::new(
        DapConfig::default(),
        SessionConfig::default(),
        FaultConfig::lossless(),
    );
    let mut tool = HostTool::new(session, ArbitrationPolicy::CalibrationFirst);
    let cal = audo_platform::config::EMEM_BASE.offset(ed.calibration_offset());
    let payload: Vec<u8> = (0..512u32).map(|i| (i * 13) as u8).collect();
    tool.queue_overlay_write(cal.0, &payload);
    for _ in 0..4_000_000u64 {
        tool.pump(&mut ed);
        if tool.pending_write_chunks() == 0
            && tool.session.stats().trace_bytes_drained >= trace_level
        {
            break;
        }
    }
    let drained_ok = tool.finish_drain(&mut ed, 4_000_000);
    let st = *tool.session.stats();
    if r.obs.is_enabled() {
        let mut arb = audo_obs::Registry::new();
        tool.session.export_obs(&mut arb);
        ed.export_obs(&mut arb);
        r.obs.merge_from("arb.", &arb, 1);
    }
    let written = ed.block_read(cal.0, payload.len())?;
    r.line(format!(
        "arbitration: {} trace B drained, {} overlay B written, grants drain/overlay {}/{}",
        st.trace_bytes_drained, st.overlay_bytes_written, st.drain_grants, st.overlay_grants
    ));
    // Latency and wire-size distributions from the arbitration run: the
    // session's transaction-latency histogram, and the encoded sizes of the
    // trace messages it drained. Percentiles report the bucket upper bound.
    let collected = tool.take_collected();
    let mut msg_sizes = Vec::new();
    let _ = audo_mcds::msg::decode_stream_lossy_shifted_sized(&collected, 0, &mut msg_sizes);
    let mut msg_hist = audo_obs::Histogram::default();
    for s in &msg_sizes {
        msg_hist.record(*s as u64);
    }
    if r.obs.is_enabled() {
        r.obs.observe_histogram("arb.mcds.message_bytes", &msg_hist);
    }
    let lat = tool.session.latency_histogram();
    r.line(format!(
        "link transaction cycles: p50 <= {}, p90 <= {}, p99 <= {} ({} transactions)",
        lat.percentile(50.0),
        lat.percentile(90.0),
        lat.percentile(99.0),
        lat.count(),
    ));
    r.line(format!(
        "trace message bytes: p50 <= {}, p90 <= {}, p99 <= {} ({} messages)",
        msg_hist.percentile(50.0),
        msg_hist.percentile(90.0),
        msg_hist.percentile(99.0),
        msg_hist.count(),
    ));
    r.field("arb_txn_cycles_p50", lat.percentile(50.0));
    r.field("arb_txn_cycles_p99", lat.percentile(99.0));
    r.field("arb_msg_bytes_p50", msg_hist.percentile(50.0));
    r.field("arb_msg_bytes_p99", msg_hist.percentile(99.0));
    r.check(
        "latency percentiles populated and monotone",
        lat.count() > 0
            && lat.percentile(50.0) > 0
            && lat.percentile(50.0) <= lat.percentile(90.0)
            && lat.percentile(90.0) <= lat.percentile(99.0),
    );
    r.check(
        "message-size percentiles populated and monotone",
        msg_hist.count() > 0
            && msg_hist.percentile(50.0) > 0
            && msg_hist.percentile(50.0) <= msg_hist.percentile(99.0),
    );
    r.field("arb_trace_bytes", st.trace_bytes_drained);
    r.field("arb_overlay_bytes", st.overlay_bytes_written);
    r.check(
        "overlay write lands byte-exact despite drain pressure",
        written == payload,
    );
    r.check(
        "trace fully drained alongside the overlay traffic",
        drained_ok && st.trace_bytes_drained >= trace_level && !st.trace_truncated,
    );
    r.check(
        "both classes actually shared the link",
        st.drain_grants > 0 && st.overlay_grants > 0,
    );
    Ok(r)
}
