//! Measures pipeline-tier throughput with the predecoded-block fast path
//! off vs. on and writes the perf-trajectory point `BENCH_pipeline.json`.
//!
//! ```text
//! pipeline_bench [--json PATH] [--reps N]
//! ```
//!
//! The instruction-mix microbenchmarks run on the cycle-level core over a
//! scratchpad-like [`TestBus`] (so host-side decode work, not memory
//! latency, dominates the measurement). For each workload the stepping
//! loop alone is timed, best of `N` repetitions, with event observation
//! off — the production configuration.
//!
//! Before timing anything, every workload is run once in each mode with
//! observation on and the runs are required to be **cycle-identical**:
//! same architectural state, same cycle count, same per-cause stall
//! decomposition, same event stream, same MCDS trace bytes. The fast path
//! must be invisible in everything except wall time; any mismatch aborts
//! the benchmark with a nonzero exit.

use std::time::Instant;

use audo_common::{Addr, Cycle, EventRecord, EventSink, SourceId};
use audo_mcds::select::{EventClass, EventSelector};
use audo_mcds::{Basis, Mcds, RateProbe};
use audo_tricore::arch::init_csa_list;
use audo_tricore::bus::TestBus;
use audo_tricore::{Core, CoreConfig};
use audo_workloads::micro::{div_kernel, mac_kernel, random_mix, stream_copy};
use audo_workloads::Workload;

fn prepared(w: &Workload, fast: bool) -> (Core, TestBus) {
    let mut bus = TestBus::new();
    bus.mem.add_region(Addr(0x8000_0000), 0x4_0000);
    bus.mem.add_region(Addr(0x9000_0000), 0x2_0000);
    bus.mem.add_region(Addr(0xD000_0000), 0x2_0000);
    w.image.load_into(&mut bus.mem).expect("image fits");
    let mut core = Core::new(CoreConfig::default(), w.image.entry(), SourceId::TRICORE);
    core.set_fast_path(fast);
    core.arch_mut().fcx = init_csa_list(&mut bus.mem, Addr(0xD000_8000), 64).unwrap();
    (core, bus)
}

struct RunOut {
    cycles: u64,
    retired: u64,
    stats: audo_tricore::PipelineStats,
    d: [u32; 16],
    a: [u32; 16],
    events: Vec<EventRecord>,
}

fn run_observed(w: &Workload, fast: bool) -> RunOut {
    let (mut core, mut bus) = prepared(w, fast);
    let mut sink = EventSink::new();
    let mut events = Vec::new();
    let mut cyc = 0u64;
    while !core.is_halted() {
        assert!(cyc < w.max_cycles, "{} did not halt", w.name);
        core.step(Cycle(cyc), &mut bus, None, &mut sink)
            .expect("no fault");
        events.append(&mut sink.drain());
        cyc += 1;
    }
    RunOut {
        cycles: cyc,
        retired: core.retired_total(),
        stats: *core.stats(),
        d: core.arch().d,
        a: core.arch().a,
        events,
    }
}

/// Encodes an event stream through a fully armed MCDS and returns the raw
/// trace bytes (the strongest "the tool chain can't tell" check we have).
fn mcds_trace_bytes(events: &[EventRecord]) -> Vec<u8> {
    let mut mcds = Mcds::builder()
        .program_trace()
        .probe(RateProbe {
            event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
            basis: Basis::Cycles(4),
            group: None,
        })
        .build()
        .unwrap();
    let mut out = Vec::new();
    let last = events.last().map_or(0, |e| e.cycle.0);
    let mut i = 0;
    for cy in 0..=last {
        let start = i;
        while i < events.len() && events[i].cycle.0 == cy {
            i += 1;
        }
        mcds.observe(Cycle(cy), &events[start..i], &[], &mut out);
    }
    out
}

/// Asserts the fast and slow pipeline runs are indistinguishable in
/// everything but wall time.
fn assert_cycle_identical(w: &Workload) -> (u64, u64) {
    let slow = run_observed(w, false);
    let fast = run_observed(w, true);
    assert_eq!(fast.cycles, slow.cycles, "{}: cycle count", w.name);
    assert_eq!(fast.retired, slow.retired, "{}: retired count", w.name);
    assert_eq!(fast.d, slow.d, "{}: data registers", w.name);
    assert_eq!(fast.a, slow.a, "{}: address registers", w.name);
    assert_eq!(fast.events, slow.events, "{}: event stream", w.name);
    let mut normalized = fast.stats;
    normalized.predecode = slow.stats.predecode;
    assert_eq!(normalized, slow.stats, "{}: stall decomposition", w.name);
    assert_eq!(
        mcds_trace_bytes(&fast.events),
        mcds_trace_bytes(&slow.events),
        "{}: MCDS trace bytes",
        w.name
    );
    (slow.cycles, slow.retired)
}

/// Best-of-`reps` wall time of the stepping loop alone, observation off.
fn time_run(w: &Workload, fast: bool, reps: u32) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let (mut core, mut bus) = prepared(w, fast);
        let mut sink = EventSink::new();
        sink.set_enabled(false);
        let t0 = Instant::now();
        let mut cyc = 0u64;
        while !core.is_halted() {
            core.step(Cycle(cyc), &mut bus, None, &mut sink)
                .expect("no fault");
            cyc += 1;
        }
        best = best.min(t0.elapsed().as_nanos().max(1));
    }
    best
}

struct Row {
    name: String,
    cycles: u64,
    instrs: u64,
    slow_ns: u128,
    fast_ns: u128,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.slow_ns as f64 / self.fast_ns as f64
    }
    fn mcps(&self, ns: u128) -> f64 {
        self.cycles as f64 / (ns as f64 / 1e9) / 1e6
    }
}

fn main() {
    let mut json_path = String::from("BENCH_pipeline.json");
    let mut reps = 5u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next().expect("--json needs a path"),
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps must be an integer");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    // Sized so each timed run takes tens of milliseconds — long enough to
    // dominate scheduler noise on a single-CPU container. stream_copy is
    // capped by the source/destination region sizes (it moves words*4
    // bytes through each).
    let workloads = [
        mac_kernel(200_000),
        stream_copy(25_000),
        div_kernel(50_000),
        random_mix(7, 400, 1_000),
    ];

    let mut rows = Vec::new();
    for w in &workloads {
        let (cycles, instrs) = assert_cycle_identical(w);
        let slow_ns = time_run(w, false, reps);
        let fast_ns = time_run(w, true, reps);
        let row = Row {
            name: w.name.clone(),
            cycles,
            instrs,
            slow_ns,
            fast_ns,
        };
        println!(
            "{:<14} {:>9} cycles  slow {:>7.2} Mc/s  fast {:>7.2} Mc/s  speedup {:>5.2}x",
            row.name,
            row.cycles,
            row.mcps(row.slow_ns),
            row.mcps(row.fast_ns),
            row.speedup()
        );
        rows.push(row);
    }

    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("geomean speedup: {geomean:.2}x (cycle-identical fast vs slow on all workloads)");

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"pipeline_throughput\",\n");
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(
        "  \"note\": \"cycle-level pipeline, predecoded-block fast path off vs on; \
         best-of-reps wall time of the stepping loop only, observation off; runs verified \
         cycle-identical (state, cycles, stalls, events, MCDS bytes) before timing; \
         single-CPU container\",\n",
    );
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cycles\": {}, \"instrs\": {}, \"slow_ns\": {}, \
             \"fast_ns\": {}, \"slow_mcps\": {:.3}, \"fast_mcps\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.cycles,
            r.instrs,
            r.slow_ns,
            r.fast_ns,
            r.mcps(r.slow_ns),
            r.mcps(r.fast_ns),
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"geomean_speedup\": {geomean:.3}\n}}\n"));
    std::fs::write(&json_path, out).expect("write BENCH json");
    println!("wrote {json_path}");
}
