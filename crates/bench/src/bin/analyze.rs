//! Static guest-image analyzer CLI: recovers the CFG of a workload
//! image, classifies every static memory access against the platform
//! memory map, reports contract violations and multi-master hazards, and
//! optionally cross-checks a measured metrics snapshot against the
//! static rate bounds.
//!
//! ```text
//! cargo run --release -p audo-bench --bin analyze -- [options]
//!
//!   --workload NAME[:flags]  workload to analyze (default: engine).
//!                            NAME is engine | transmission | chassis;
//!                            engine flags (comma-separated): dspr-tables,
//!                            pspr-isrs, pcp-can, dspr-bg
//!   --asm PATH               analyze an assembly source file instead of
//!                            a named workload (no DMA/PCP masters)
//!   --config NAME            platform derivative: tc1797 (default) or
//!                            tc1767
//!   --json                   print the machine-readable JSON report
//!                            instead of the rustc-style text report
//!   --wcet                   additionally run the whole-program WCET and
//!                            CSA-depth analysis and print its report
//!   --csa-frames N           CSA free-list budget for --wcet (default:
//!                            the platform's 48 frames)
//!   --check-profile          run the image under the block profiler and
//!                            verify measured per-block and end-to-end
//!                            cycles never exceed the static bounds
//!                            (implies the --wcet analysis)
//!   --measure PATH           additionally run the workload to halt and
//!                            write a Prometheus-style metrics snapshot
//!   --check-against PATH     load a metrics snapshot (from --measure or
//!                            experiments --metrics-out) and print the
//!                            static-vs-measured divergence table
//!   --bench-json PATH        instead of analyzing one image, time the
//!                            full static pipeline (CFG recovery,
//!                            classification, rate prediction, WCET) over
//!                            the named workloads and write analyzer
//!                            throughput (blocks/sec) as a
//!                            BENCH_analyze.json perf artifact
//! ```
//!
//! Exit status: 0 clean, 1 the analysis reported errors, 2 the measured
//! snapshot diverged from the static bounds, the WCET analysis reported
//! an error-severity finding (CSA overflow or recursion), a profile
//! check found a bound violation, or the command line / a file
//! operation was invalid.

use audo_analyze::findings::{Finding, Severity};
use audo_analyze::{analyze, constprop, predict, wcet, MasterRanges};
use audo_platform::config::SocConfig;
use audo_platform::soc::CSA_AREAS;
use audo_platform::Soc;
use audo_tricore::pipeline::CostModel;
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::{variants, Workload};

struct Args {
    workload: String,
    asm: Option<String>,
    config: String,
    json: bool,
    wcet: bool,
    csa_frames: Option<u32>,
    check_profile: bool,
    measure: Option<String>,
    check_against: Option<String>,
    bench_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "engine".to_string(),
        asm: None,
        config: "tc1797".to_string(),
        json: false,
        wcet: false,
        csa_frames: None,
        check_profile: false,
        measure: None,
        check_against: None,
        bench_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => {
                args.workload = it.next().ok_or("--workload needs a value")?;
            }
            "--asm" => {
                args.asm = Some(it.next().ok_or("--asm needs a path")?);
            }
            "--config" => {
                args.config = it.next().ok_or("--config needs a value")?;
            }
            "--json" => args.json = true,
            "--wcet" => args.wcet = true,
            "--csa-frames" => {
                let v = it.next().ok_or("--csa-frames needs a value")?;
                args.csa_frames = Some(v.parse().map_err(|_| format!("not a number: {v:?}"))?);
            }
            "--check-profile" => args.check_profile = true,
            "--measure" => {
                args.measure = Some(it.next().ok_or("--measure needs a path")?);
            }
            "--check-against" => {
                args.check_against = Some(it.next().ok_or("--check-against needs a path")?);
            }
            "--bench-json" => {
                args.bench_json = Some(it.next().ok_or("--bench-json needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: analyze [--workload NAME[:flags] | --asm PATH] \
                     [--config tc1797|tc1767] [--json] [--wcet] [--csa-frames N] \
                     [--check-profile] [--measure PATH] [--check-against PATH] \
                     [--bench-json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(args)
}

fn build_workload(spec: &str) -> Result<Workload, String> {
    let (name, flags) = match spec.split_once(':') {
        Some((n, f)) => (n, f),
        None => (spec, ""),
    };
    match name {
        "engine" => {
            let mut p = EngineParams::default();
            for flag in flags.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                match flag {
                    "dspr-tables" => p.tables_in_dspr = true,
                    "pspr-isrs" => p.isrs_in_pspr = true,
                    "pcp-can" => p.can_on_pcp = true,
                    "dspr-bg" => {
                        p.bg_in_dspr = true;
                        p.tables_in_dspr = true; // required by the knob
                    }
                    other => return Err(format!("unknown engine flag {other:?}")),
                }
            }
            Ok(engine_control(&p))
        }
        "transmission" => Ok(variants::transmission_control(10)),
        "chassis" => Ok(variants::chassis_monitor(40, 2_000)),
        other => Err(format!(
            "unknown workload {other:?} (engine, transmission, chassis)"
        )),
    }
}

fn build_config(name: &str) -> Result<SocConfig, String> {
    match name {
        "tc1797" => Ok(SocConfig::tc1797()),
        "tc1767" => Ok(SocConfig::tc1767()),
        other => Err(format!("unknown config {other:?} (tc1797, tc1767)")),
    }
}

/// Cycle budget for `--asm` images, which carry no workload metadata.
const ASM_MAX_CYCLES: u64 = 5_000_000;

/// Times the full static pipeline over the named workloads and writes
/// the throughput artifact. Images are built outside the timed region;
/// best-of-reps wall time is recorded (ratios of noisy single-CPU
/// containers are stable, absolute times are not).
fn run_bench(cfg: &SocConfig, path: &str) -> Result<(), String> {
    const REPS: usize = 5;
    let mut prepared = Vec::new();
    for spec in ["engine", "transmission", "chassis"] {
        let w = build_workload(spec)?;
        let mut soc = Soc::new(cfg.clone());
        w.install(&mut soc)
            .map_err(|e| format!("workload install failed: {e}"))?;
        let masters = MasterRanges::derive(&soc.fabric.dma, None);
        prepared.push((w.image, masters, w.name));
    }
    let mut blocks = 0usize;
    let mut best = std::time::Duration::MAX;
    for rep in 0..REPS {
        let t0 = std::time::Instant::now();
        let mut seen = 0usize;
        for (image, masters, name) in &prepared {
            let a = audo_analyze::analyze(image, cfg, masters, name);
            let sol = constprop::solve(&a.cfg);
            let model = CostModel::new(cfg.cpu.clone(), wcet::soc_mem_costs(cfg));
            let report = wcet::analyze_wcet(&a.cfg, &sol, &model, CSA_AREAS, name);
            seen += a.cfg.blocks.len();
            std::hint::black_box(&report);
        }
        let dt = t0.elapsed();
        if rep == 0 {
            blocks = seen;
        }
        best = best.min(dt);
    }
    // reason: perf artifact, not a deterministic export
    #[allow(clippy::cast_precision_loss)]
    let per_sec = blocks as f64 / best.as_secs_f64().max(1e-9);
    let body = format!(
        "{{\n  \"bench\": \"analyze_blocks\",\n  \
         \"note\": \"static analyzer throughput: CFG recovery, access \
         classification, hazards, rate prediction and WCET/CSA bounds over \
         the three named workloads; best of {REPS} reps; single-CPU \
         container\",\n  \
         \"blocks\": {blocks},\n  \"wall_ns\": {},\n  \
         \"blocks_per_sec\": {per_sec:.1}\n}}\n",
        best.as_nanos(),
    );
    std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))?;
    eprintln!(
        "analyze: {blocks} blocks in {:.3}s ({per_sec:.0} blocks/sec)",
        best.as_secs_f64()
    );
    eprintln!("wrote {path}");
    Ok(())
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    let cfg = build_config(&args.config)?;

    if let Some(path) = &args.bench_json {
        run_bench(&cfg, path)?;
        return Ok(0);
    }

    // Build the image and a fresh SoC holding it. Workloads install
    // through their setup hook (so the DMA programming is visible to the
    // hazard detector); --asm sources are assembled and loaded bare.
    let mut soc = Soc::new(cfg.clone());
    let (image, name, max_cycles, masters);
    if let Some(path) = &args.asm {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
        image = audo_tricore::asm::assemble(&src).map_err(|e| format!("{path}: {e}"))?;
        name = std::path::Path::new(path)
            .file_stem()
            .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
        max_cycles = ASM_MAX_CYCLES;
        masters = MasterRanges::empty();
        soc.load_image(&image)
            .map_err(|e| format!("image load failed: {e}"))?;
    } else {
        let w = build_workload(&args.workload)?;
        w.install(&mut soc)
            .map_err(|e| format!("workload install failed: {e}"))?;
        let pcp = w.pcp().map(|p| {
            let entries: Vec<u16> = p.channels.iter().map(|&(_, e)| e).collect();
            (p.words.clone(), p.base, entries)
        });
        masters = match &pcp {
            Some((words, base, entries)) => MasterRanges::derive(
                &soc.fabric.dma,
                Some((words.as_slice(), *base, entries.as_slice())),
            ),
            None => MasterRanges::derive(&soc.fabric.dma, None),
        };
        max_cycles = w.max_cycles;
        name = w.name;
        image = w.image;
    }
    let a = analyze(&image, &cfg, &masters, &name);

    if args.json {
        println!("{}", a.to_json());
    } else {
        print!("{}", a.to_text());
    }

    // The WCET layer shares one timing table with the cycle-level
    // pipeline: the exported cost model, fed the SoC's memory latencies.
    let mut wcet_failed = false;
    let wcet_report = if args.wcet || args.check_profile {
        let sol = constprop::solve(&a.cfg);
        let model = CostModel::new(cfg.cpu.clone(), wcet::soc_mem_costs(&cfg));
        let budget = args.csa_frames.unwrap_or(CSA_AREAS);
        let report = wcet::analyze_wcet(&a.cfg, &sol, &model, budget, &name);
        if args.wcet {
            print!("{}", wcet::render_report(&report));
        }
        wcet_failed = report.has_errors();
        Some((report, model))
    } else {
        None
    };

    // --measure and --check-profile share one run of the freshly built
    // SoC (profiling is enabled up front when the check needs it).
    let mut profile_violated = false;
    if args.measure.is_some() || args.check_profile {
        // Load-time code-region stamps: sampled before the run so the
        // check can tell image-resident blocks from self-modified ones.
        let stamps = wcet::code_stamps(&a.cfg, &soc.fabric);
        if args.check_profile {
            soc.tricore.set_profile_observation(true);
        }
        soc.run_to_halt(max_cycles)
            .map_err(|e| format!("workload run failed: {e}"))?;

        if let Some(path) = &args.measure {
            let mut reg = audo_obs::Registry::new();
            soc.export_obs(&mut reg);
            let body = audo_obs::metrics_text::render(&reg, "audo_");
            std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }

        if args.check_profile {
            let (report, model) = wcet_report
                .as_ref()
                .expect("check_profile computed the WCET report above");
            let profile = soc
                .tricore
                .block_profile()
                .cloned()
                .ok_or("block profiler produced no profile")?;
            let stats = soc.tricore.stats();
            let total_cycles = stats.retire_cycles + stats.stall_total();
            let csa_peak = soc.tricore.arch().csa_depth_peak;
            let check = wcet::check_profile(
                &a.cfg,
                model,
                report,
                &profile,
                &stamps,
                total_cycles,
                soc.irqs_taken,
                csa_peak,
            );
            print!("{}", wcet::render_check(&name, &check));
            profile_violated = !check.sound();
        }
    }

    let mut diverged = false;
    if let Some(path) = &args.check_against {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
        match predict::parse_snapshot(&text) {
            Ok(parsed) => {
                let rows = predict::check(&a.prediction, &parsed);
                print!("{}", predict::render_check(&name, &rows));
                diverged = rows.iter().any(|r| !r.ok());
            }
            Err(e) => {
                // A malformed snapshot is a finding, not a silent skip:
                // last-write-wins on duplicate series once masked a real
                // divergence.
                let f = Finding::new(Severity::Error, "snapshot-format", None, e);
                print!("{}", audo_analyze::findings::render_text(&name, &[f]));
                diverged = true;
            }
        }
    }

    if diverged || wcet_failed || profile_violated {
        Ok(2)
    } else if a.error_count() > 0 {
        Ok(1)
    } else {
        Ok(0)
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("analyze: {e}");
            std::process::exit(2);
        }
    }
}
