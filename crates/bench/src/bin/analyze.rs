//! Static guest-image analyzer CLI: recovers the CFG of a workload
//! image, classifies every static memory access against the platform
//! memory map, reports contract violations and multi-master hazards, and
//! optionally cross-checks a measured metrics snapshot against the
//! static rate bounds.
//!
//! ```text
//! cargo run --release -p audo-bench --bin analyze -- [options]
//!
//!   --workload NAME[:flags]  workload to analyze (default: engine).
//!                            NAME is engine | transmission | chassis;
//!                            engine flags (comma-separated): dspr-tables,
//!                            pspr-isrs, pcp-can, dspr-bg
//!   --config NAME            platform derivative: tc1797 (default) or
//!                            tc1767
//!   --json                   print the machine-readable JSON report
//!                            instead of the rustc-style text report
//!   --measure PATH           additionally run the workload to halt and
//!                            write a Prometheus-style metrics snapshot
//!   --check-against PATH     load a metrics snapshot (from --measure or
//!                            experiments --metrics-out) and print the
//!                            static-vs-measured divergence table
//! ```
//!
//! Exit status: 0 clean, 1 the analysis reported errors, 2 the measured
//! snapshot diverged from the static bounds (or the command line / a
//! file operation was invalid).

use audo_analyze::{analyze, predict, MasterRanges};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::{variants, Workload};

struct Args {
    workload: String,
    config: String,
    json: bool,
    measure: Option<String>,
    check_against: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "engine".to_string(),
        config: "tc1797".to_string(),
        json: false,
        measure: None,
        check_against: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => {
                args.workload = it.next().ok_or("--workload needs a value")?;
            }
            "--config" => {
                args.config = it.next().ok_or("--config needs a value")?;
            }
            "--json" => args.json = true,
            "--measure" => {
                args.measure = Some(it.next().ok_or("--measure needs a path")?);
            }
            "--check-against" => {
                args.check_against = Some(it.next().ok_or("--check-against needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: analyze [--workload NAME[:flags]] [--config tc1797|tc1767] \
                     [--json] [--measure PATH] [--check-against PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(args)
}

fn build_workload(spec: &str) -> Result<Workload, String> {
    let (name, flags) = match spec.split_once(':') {
        Some((n, f)) => (n, f),
        None => (spec, ""),
    };
    match name {
        "engine" => {
            let mut p = EngineParams::default();
            for flag in flags.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                match flag {
                    "dspr-tables" => p.tables_in_dspr = true,
                    "pspr-isrs" => p.isrs_in_pspr = true,
                    "pcp-can" => p.can_on_pcp = true,
                    "dspr-bg" => {
                        p.bg_in_dspr = true;
                        p.tables_in_dspr = true; // required by the knob
                    }
                    other => return Err(format!("unknown engine flag {other:?}")),
                }
            }
            Ok(engine_control(&p))
        }
        "transmission" => Ok(variants::transmission_control(10)),
        "chassis" => Ok(variants::chassis_monitor(40, 2_000)),
        other => Err(format!(
            "unknown workload {other:?} (engine, transmission, chassis)"
        )),
    }
}

fn build_config(name: &str) -> Result<SocConfig, String> {
    match name {
        "tc1797" => Ok(SocConfig::tc1797()),
        "tc1767" => Ok(SocConfig::tc1767()),
        other => Err(format!("unknown config {other:?} (tc1797, tc1767)")),
    }
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    let w = build_workload(&args.workload)?;
    let cfg = build_config(&args.config)?;

    // Install into a fresh SoC so the DMA programming the workload's
    // setup hook performs is visible to the hazard detector.
    let mut soc = Soc::new(cfg.clone());
    w.install(&mut soc)
        .map_err(|e| format!("workload install failed: {e}"))?;
    let pcp = w.pcp().map(|p| {
        let entries: Vec<u16> = p.channels.iter().map(|&(_, e)| e).collect();
        (p.words.clone(), p.base, entries)
    });
    let masters = match &pcp {
        Some((words, base, entries)) => MasterRanges::derive(
            &soc.fabric.dma,
            Some((words.as_slice(), *base, entries.as_slice())),
        ),
        None => MasterRanges::derive(&soc.fabric.dma, None),
    };
    let a = analyze(&w.image, &cfg, &masters, &w.name);

    if args.json {
        println!("{}", a.to_json());
    } else {
        print!("{}", a.to_text());
    }

    if let Some(path) = &args.measure {
        soc.run_to_halt(w.max_cycles)
            .map_err(|e| format!("workload run failed: {e}"))?;
        let mut reg = audo_obs::Registry::new();
        soc.export_obs(&mut reg);
        let body = audo_obs::metrics_text::render(&reg, "audo_");
        std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    let mut diverged = false;
    if let Some(path) = &args.check_against {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
        let rows = predict::check(&a.prediction, &predict::parse_snapshot(&text));
        print!("{}", predict::render_check(&w.name, &rows));
        diverged = rows.iter().any(|r| !r.ok());
    }

    if diverged {
        Ok(2)
    } else if a.error_count() > 0 {
        Ok(1)
    } else {
        Ok(0)
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("analyze: {e}");
            std::process::exit(2);
        }
    }
}
