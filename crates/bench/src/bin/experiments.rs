//! Runs the paper experiments (E1–E16) and prints the combined report —
//! the generator for EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p audo-bench --bin experiments -- [options]
//!
//!   --jobs N             worker threads (default: available parallelism;
//!                        report output is byte-identical for any N)
//!   --filter IDS         run only these experiments, e.g. --filter E6 or
//!                        --filter E2,E5,E9 (repeatable)
//!   --json PATH          also write a machine-readable summary, e.g.
//!                        --json BENCH_experiments.json
//!   --dap-fault-rate R   run the E16 tool-link sweep at the single fault
//!                        rate R (per-mechanism probability in [0, 1])
//!                        instead of the default {0, 1e-3, 1e-2} matrix
//! ```
//!
//! Exit status: 0 all checks passed, 1 some check failed, 2 an experiment
//! errored or the command line was invalid.

use std::fmt::Write as _;

struct Args {
    jobs: usize,
    filter: Vec<String>,
    json: Option<String>,
    dap_fault_rate: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: audo_bench::default_jobs(),
        filter: Vec::new(),
        json: None,
        dap_fault_rate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs: not a number: {v:?}"))?
                    .max(1);
            }
            "--filter" => {
                let v = it
                    .next()
                    .ok_or("--filter needs a value (e.g. E6 or E2,E5)")?;
                args.filter.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path")?);
            }
            "--dap-fault-rate" => {
                let v = it.next().ok_or("--dap-fault-rate needs a value")?;
                let rate = v
                    .parse::<f64>()
                    .map_err(|_| format!("--dap-fault-rate: not a number: {v:?}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--dap-fault-rate must be in [0, 1], got {rate}"));
                }
                args.dap_fault_rate = Some(rate);
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--jobs N] [--filter E1,E2,..] [--json PATH] \
                     [--dap-fault-rate R]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_summary(reports: &[audo_bench::TimedReport], jobs: usize, total_secs: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(
        out,
        "  \"total_wall_clock_ms\": {:.3},",
        total_secs * 1000.0
    );
    let passed: usize = reports
        .iter()
        .map(|t| t.report.checks.iter().filter(|c| c.pass).count())
        .sum();
    let total: usize = reports.iter().map(|t| t.report.checks.len()).sum();
    let _ = writeln!(out, "  \"checks_passed\": {passed},");
    let _ = writeln!(out, "  \"checks_total\": {total},");
    out.push_str("  \"experiments\": [\n");
    for (i, t) in reports.iter().enumerate() {
        let failed: Vec<String> = t
            .report
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| format!("\"{}\"", json_escape(&c.what)))
            .collect();
        let fields: Vec<String> = t
            .report
            .kv
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"title\": \"{}\", \"duration_ms\": {:.3}, \
             \"checks_passed\": {}, \"checks_total\": {}, \"failed_checks\": [{}], \
             \"fields\": {{{}}}}}",
            json_escape(t.report.id),
            json_escape(&t.report.title),
            t.duration.as_secs_f64() * 1000.0,
            t.report.checks.iter().filter(|c| c.pass).count(),
            t.report.checks.len(),
            failed.join(", "),
            fields.join(", ")
        );
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(rate) = args.dap_fault_rate {
        audo_bench::set_dap_fault_rate(rate);
    }
    let start = std::time::Instant::now();
    match audo_bench::run_selected(&args.filter, args.jobs) {
        Ok(reports) => {
            let total: usize = reports.iter().map(|t| t.report.checks.len()).sum();
            let passed: usize = reports
                .iter()
                .map(|t| t.report.checks.iter().filter(|c| c.pass).count())
                .sum();
            for t in &reports {
                print!("{}", t.report.render());
            }
            let elapsed = start.elapsed().as_secs_f64();
            println!("---");
            for t in &reports {
                println!(
                    "{:<5} {:>9.2}s  {}",
                    t.report.id,
                    t.duration.as_secs_f64(),
                    if t.report.passed() { "ok" } else { "FAILED" }
                );
            }
            println!(
                "{passed}/{total} checks passed across {} experiments in {elapsed:.1}s \
                 ({} jobs)",
                reports.len(),
                args.jobs
            );
            if let Some(path) = &args.json {
                let body = json_summary(&reports, args.jobs, elapsed);
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("could not write {path}: {e}");
                    std::process::exit(2);
                }
                println!("wrote {path}");
            }
            if passed != total {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(2);
        }
    }
}
