//! Runs all experiments (E1–E12) and prints the combined report — the
//! generator for EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p audo-bench --bin experiments
//! ```

fn main() {
    let start = std::time::Instant::now();
    match audo_bench::run_all() {
        Ok(reports) => {
            let total: usize = reports.iter().map(|r| r.checks.len()).sum();
            let passed: usize = reports
                .iter()
                .map(|r| r.checks.iter().filter(|c| c.pass).count())
                .sum();
            for r in &reports {
                print!("{}", r.render());
            }
            println!("---");
            println!(
                "{passed}/{total} checks passed across {} experiments in {:.1}s",
                reports.len(),
                start.elapsed().as_secs_f64()
            );
            if passed != total {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(2);
        }
    }
}
