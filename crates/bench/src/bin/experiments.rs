//! Runs the paper experiments (E1–E16) and prints the combined report —
//! the generator for EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p audo-bench --bin experiments -- [options]
//!
//!   --jobs N             worker threads (default: available parallelism;
//!                        report output is byte-identical for any N)
//!   --filter IDS         run only these experiments, e.g. --filter E6 or
//!                        --filter E2,E5,E9 (repeatable)
//!   --json PATH          also write a machine-readable summary, e.g.
//!                        --json BENCH_experiments.json
//!   --dap-fault-rate R   run the E16 tool-link sweep at the single fault
//!                        rate R (per-mechanism probability in [0, 1])
//!                        instead of the default {0, 1e-3, 1e-2} matrix
//!   --trace-out PATH     write a Chrome trace-event JSON of the run
//!                        (open at https://ui.perfetto.dev); enables
//!                        experiment observability
//!   --metrics-out PATH   write a Prometheus-style plain-text metrics
//!                        snapshot; enables experiment observability
//!   --flame-out PATH     write folded call stacks (flamegraph.pl /
//!                        inferno input) reconstructed from the program
//!                        trace; enables experiment observability
//! ```
//!
//! All observability timestamps are simulated cycles, so identical runs
//! write byte-identical trace/metrics/flame files for any `--jobs`.
//!
//! Exit status: 0 all checks passed, 1 some check failed, 2 an experiment
//! errored or the command line was invalid.

use audo_bench::json::json_summary;

struct Args {
    jobs: usize,
    filter: Vec<String>,
    json: Option<String>,
    dap_fault_rate: Option<f64>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    flame_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: audo_bench::default_jobs(),
        filter: Vec::new(),
        json: None,
        dap_fault_rate: None,
        trace_out: None,
        metrics_out: None,
        flame_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs: not a number: {v:?}"))?
                    .max(1);
            }
            "--filter" => {
                let v = it
                    .next()
                    .ok_or("--filter needs a value (e.g. E6 or E2,E5)")?;
                args.filter.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path")?);
            }
            "--dap-fault-rate" => {
                let v = it.next().ok_or("--dap-fault-rate needs a value")?;
                let rate = v
                    .parse::<f64>()
                    .map_err(|_| format!("--dap-fault-rate: not a number: {v:?}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--dap-fault-rate must be in [0, 1], got {rate}"));
                }
                args.dap_fault_rate = Some(rate);
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().ok_or("--trace-out needs a path")?);
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            "--flame-out" => {
                args.flame_out = Some(it.next().ok_or("--flame-out needs a path")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--jobs N] [--filter E1,E2,..] [--json PATH] \
                     [--dap-fault-rate R] [--trace-out PATH] [--metrics-out PATH] \
                     [--flame-out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(args)
}

/// Merges every experiment's registry (one Chrome-trace track per
/// experiment, names prefixed with the experiment id) and renders the
/// requested export files.
fn write_obs_exports(args: &Args, reports: &[audo_bench::TimedReport]) -> Result<(), String> {
    let mut merged = audo_obs::Registry::new();
    let mut tracks: Vec<(u32, String)> = Vec::new();
    let mut flame = audo_obs::FoldedStacks::new();
    for (i, t) in reports.iter().enumerate() {
        // reason: the experiment list is tiny; i + 1 always fits u32.
        #[allow(clippy::cast_possible_truncation)]
        let track = (i + 1) as u32;
        merged.merge_from(&format!("{}.", t.report.id), &t.report.obs, track);
        tracks.push((track, t.report.id.to_string()));
        flame.merge(&t.report.flame, Some(t.report.id));
    }
    let write = |path: &str, body: String| -> Result<(), String> {
        std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    if let Some(path) = &args.trace_out {
        write(
            path,
            audo_obs::chrome::trace_json(&merged, "audo experiments", &tracks),
        )?;
    }
    if let Some(path) = &args.metrics_out {
        write(path, audo_obs::metrics_text::render(&merged, "audo_"))?;
    }
    if let Some(path) = &args.flame_out {
        write(path, flame.render())?;
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(rate) = args.dap_fault_rate {
        audo_bench::set_dap_fault_rate(rate);
    }
    if args.trace_out.is_some() || args.metrics_out.is_some() || args.flame_out.is_some() {
        audo_bench::set_obs(true);
    }
    let start = std::time::Instant::now();
    match audo_bench::run_selected(&args.filter, args.jobs) {
        Ok(reports) => {
            let total: usize = reports.iter().map(|t| t.report.checks.len()).sum();
            let passed: usize = reports
                .iter()
                .map(|t| t.report.checks.iter().filter(|c| c.pass).count())
                .sum();
            for t in &reports {
                print!("{}", t.report.render());
            }
            let elapsed = start.elapsed().as_secs_f64();
            println!("---");
            for t in &reports {
                println!(
                    "{:<5} {:>9.2}s  {}",
                    t.report.id,
                    t.duration.as_secs_f64(),
                    if t.report.passed() { "ok" } else { "FAILED" }
                );
            }
            println!(
                "{passed}/{total} checks passed across {} experiments in {elapsed:.1}s \
                 ({} jobs)",
                reports.len(),
                args.jobs
            );
            if let Some(path) = &args.json {
                let body = json_summary(&reports, args.jobs, elapsed);
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("could not write {path}: {e}");
                    std::process::exit(2);
                }
                println!("wrote {path}");
            }
            if let Err(e) = write_obs_exports(&args, &reports) {
                eprintln!("{e}");
                std::process::exit(2);
            }
            if passed != total {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(2);
        }
    }
}
