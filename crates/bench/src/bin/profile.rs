//! Block-level sampling profiler CLI: runs a workload on the functional
//! ISS or the cycle-level pipeline with block profiling on, symbolizes
//! the hot blocks against the recovered CFG, and renders hot-spot
//! reports, folded-stack flamegraphs, annotated disassembly, and
//! machine-readable profile documents.
//!
//! ```text
//! cargo run --release -p audo-bench --bin profile -- [options]
//!
//!   --workload SPEC[,SPEC..]  workloads to profile (default: engine).
//!                             SPEC is NAME[:flags] as accepted by the
//!                             analyze CLI (engine flags: dspr-tables,
//!                             pspr-isrs, pcp-can, dspr-bg)
//!   --config NAME             platform derivative: tc1797 (default) or
//!                             tc1767
//!   --tier iss|pipeline       execution tier (default: pipeline). The
//!                             pipeline tier attributes cycles and stall
//!                             causes; the ISS tier counts executions and
//!                             retired instructions only
//!   --top N                   rows in the hot-block table (default: 10)
//!   --annotate                add per-instruction disassembly under each
//!                             hot block
//!   --json PATH               write the profile document (single
//!                             workload only)
//!   --flame-out PATH          write folded stacks (flamegraph input);
//!                             multiple workloads merge under their names
//!   --jobs N                  worker threads for multi-workload runs
//!                             (default: available parallelism)
//!
//!   --compare A.json B.json   differential mode: print the per-block
//!                             delta table between two --json documents
//!
//!   --overhead-json PATH      overhead mode: re-time the micro-workload
//!                             suites with profiling off and on, compare
//!                             the off timings against the recorded
//!                             fast-path baselines, and write the result
//!                             (the profiling-off geomean must stay
//!                             within 2% of baseline)
//!   --iss-baseline PATH       fast_ns baseline for the ISS leg
//!                             (default: BENCH_iss.json)
//!   --pipeline-baseline PATH  fast_ns baseline for the pipeline leg
//!                             (default: BENCH_pipeline.json)
//!   --reps N                  best-of repetitions in overhead mode
//!                             (default: 5)
//! ```
//!
//! Every report is a pure function of the workload and tier: byte
//! identical across runs and for any `--jobs`. On the pipeline tier the
//! CLI additionally machine-checks the attribution invariant — per-block
//! attributed cycles plus the unattributed bucket must sum *exactly* to
//! the pipeline's `retire + Σ stalls == cycles` totals — and fails hard
//! if it does not hold.
//!
//! Exit status: 0 success, 1 the overhead gate regressed beyond 2%,
//! 2 invalid command line / file error / attribution-check failure.

use std::time::Instant;

use audo_analyze::{cfg, symbols};
use audo_bench::scheduler;
use audo_common::{Addr, Cycle, EventSink, SimError, SourceId};
use audo_obs::profile::{flame_stacks, render_annotated, render_hot_blocks, ProfileDoc};
use audo_obs::FoldedStacks;
use audo_platform::config::{SocConfig, DSPR_BASE, PERIPH_BASE};
use audo_platform::Soc;
use audo_tricore::arch::init_csa_list;
use audo_tricore::bus::TestBus;
use audo_tricore::disasm::disassemble_range;
use audo_tricore::iss::Iss;
use audo_tricore::{Core, CoreConfig};
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::micro::{div_kernel, mac_kernel, random_mix, stream_copy};
use audo_workloads::{variants, Workload};

struct Args {
    workloads: Vec<String>,
    config: String,
    tier: String,
    top: usize,
    annotate: bool,
    json: Option<String>,
    flame_out: Option<String>,
    jobs: usize,
    compare: Option<(String, String)>,
    overhead_json: Option<String>,
    iss_baseline: String,
    pipeline_baseline: String,
    reps: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workloads: vec!["engine".to_string()],
        config: "tc1797".to_string(),
        tier: "pipeline".to_string(),
        top: 10,
        annotate: false,
        json: None,
        flame_out: None,
        jobs: scheduler::default_jobs(),
        compare: None,
        overhead_json: None,
        iss_baseline: "BENCH_iss.json".to_string(),
        pipeline_baseline: "BENCH_pipeline.json".to_string(),
        reps: 5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => {
                let spec = it.next().ok_or("--workload needs a value")?;
                args.workloads = spec
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if args.workloads.is_empty() {
                    return Err("--workload needs at least one spec".to_string());
                }
            }
            "--config" => args.config = it.next().ok_or("--config needs a value")?,
            "--tier" => args.tier = it.next().ok_or("--tier needs a value")?,
            "--top" => {
                args.top = it
                    .next()
                    .ok_or("--top needs a count")?
                    .parse()
                    .map_err(|_| "--top must be an integer")?;
            }
            "--annotate" => args.annotate = true,
            "--json" => args.json = Some(it.next().ok_or("--json needs a path")?),
            "--flame-out" => args.flame_out = Some(it.next().ok_or("--flame-out needs a path")?),
            "--jobs" => {
                args.jobs = it
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse()
                    .map_err(|_| "--jobs must be an integer")?;
            }
            "--compare" => {
                let a = it.next().ok_or("--compare needs two paths")?;
                let b = it.next().ok_or("--compare needs two paths")?;
                args.compare = Some((a, b));
            }
            "--overhead-json" => {
                args.overhead_json = Some(it.next().ok_or("--overhead-json needs a path")?);
            }
            "--iss-baseline" => {
                args.iss_baseline = it.next().ok_or("--iss-baseline needs a path")?;
            }
            "--pipeline-baseline" => {
                args.pipeline_baseline = it.next().ok_or("--pipeline-baseline needs a path")?;
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .ok_or("--reps needs a count")?
                    .parse()
                    .map_err(|_| "--reps must be an integer")?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: profile [--workload SPEC[,SPEC..]] [--config tc1797|tc1767] \
                     [--tier iss|pipeline] [--top N] [--annotate] [--json PATH] \
                     [--flame-out PATH] [--jobs N] | --compare A.json B.json | \
                     --overhead-json PATH [--iss-baseline PATH] [--pipeline-baseline PATH] \
                     [--reps N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    if !matches!(args.tier.as_str(), "iss" | "pipeline") {
        return Err(format!("unknown tier {:?} (iss, pipeline)", args.tier));
    }
    Ok(args)
}

fn build_workload(spec: &str) -> Result<Workload, String> {
    let (name, flags) = match spec.split_once(':') {
        Some((n, f)) => (n, f),
        None => (spec, ""),
    };
    match name {
        "engine" => {
            let mut p = EngineParams::default();
            for flag in flags.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                match flag {
                    "dspr-tables" => p.tables_in_dspr = true,
                    "pspr-isrs" => p.isrs_in_pspr = true,
                    "pcp-can" => p.can_on_pcp = true,
                    "dspr-bg" => {
                        p.bg_in_dspr = true;
                        p.tables_in_dspr = true; // required by the knob
                    }
                    other => return Err(format!("unknown engine flag {other:?}")),
                }
            }
            Ok(engine_control(&p))
        }
        "transmission" => Ok(variants::transmission_control(10)),
        "chassis" => Ok(variants::chassis_monitor(40, 2_000)),
        other => Err(format!(
            "unknown workload {other:?} (engine, transmission, chassis)"
        )),
    }
}

fn build_config(name: &str) -> Result<SocConfig, String> {
    match name {
        "tc1797" => Ok(SocConfig::tc1797()),
        "tc1767" => Ok(SocConfig::tc1767()),
        other => Err(format!("unknown config {other:?} (tc1797, tc1767)")),
    }
}

/// Everything one profiled workload run produces, ready to print.
struct RunOutput {
    /// `== name (tier) ==` banner plus the attribution-check line.
    header: String,
    /// Hot-block table, optionally followed by annotated disassembly.
    report: String,
    /// Serializable document for `--json` / `--compare`.
    doc: ProfileDoc,
    /// Folded stacks for `--flame-out`.
    stacks: FoldedStacks,
}

/// Runs `spec` on the pipeline tier of a full SoC with profiling on and
/// machine-checks the attribution invariant against the pipeline stats.
fn run_pipeline_tier(
    w: &Workload,
    soc_cfg: &SocConfig,
) -> Result<(audo_obs::profile::BlockProfile, u64, u64), String> {
    let mut soc = Soc::new(soc_cfg.clone());
    w.install(&mut soc)
        .map_err(|e| format!("workload install failed: {e}"))?;
    soc.tricore.set_profile_observation(true);
    soc.run_to_halt(w.max_cycles)
        .map_err(|e| format!("workload run failed: {e}"))?;
    let profile = soc
        .tricore
        .block_profile()
        .cloned()
        .expect("profiling was enabled");
    let stats = soc.tricore.stats();
    let cycles = stats.retire_cycles + stats.stall_total();
    let attributed = profile.total();
    if attributed.cycles() != cycles || attributed.retire_cycles != stats.retire_cycles {
        return Err(format!(
            "attribution check FAILED for {}: profile accounts {} cycles ({} retire + {} stall) \
             but the pipeline ran {} ({} retire + {} stall)",
            w.name,
            attributed.cycles(),
            attributed.retire_cycles,
            attributed.stall_total(),
            cycles,
            stats.retire_cycles,
            stats.stall_total(),
        ));
    }
    Ok((profile, cycles, soc.tricore.retired_total()))
}

/// Runs `spec` on the bare functional ISS with profiling on. The memory
/// map is taken from the SoC config (plus a flat RAM window over the
/// peripheral space, so register writes don't fault); the run stops at
/// the first `halt`/`wait` or at the cycle budget, whichever comes first
/// — all three are clean, deterministic stops for profiling purposes.
fn run_iss_tier(
    w: &Workload,
    soc_cfg: &SocConfig,
) -> Result<(audo_obs::profile::BlockProfile, u64), String> {
    use audo_platform::config::{DFLASH_BASE, PFLASH_BASE, PSPR_BASE, SRAM_BASE};
    let mut iss = Iss::new();
    // reason: ByteSize::bytes is a u64 API over u32-sized memories.
    #[allow(clippy::cast_possible_truncation)]
    for (base, len) in [
        (PFLASH_BASE, soc_cfg.pflash_size.bytes() as u32),
        (DFLASH_BASE, soc_cfg.dflash_size.bytes() as u32),
        (SRAM_BASE, soc_cfg.sram_size.bytes() as u32),
        (PSPR_BASE, soc_cfg.pspr_size.bytes() as u32),
        (DSPR_BASE, soc_cfg.dspr_size.bytes() as u32),
        (PERIPH_BASE, 0x10_0000),
    ] {
        iss.map_region(base, len);
    }
    iss.init_csa(Addr(DSPR_BASE.0 + 0x8000), 64)
        .map_err(|e| format!("CSA init failed: {e}"))?;
    iss.load(&w.image)
        .map_err(|e| format!("image load failed: {e}"))?;
    iss.set_fast_path(true);
    iss.set_profile_observation(true);
    match iss.run_resumable(w.max_cycles) {
        Ok(_) | Err(SimError::LimitExceeded { .. }) => {}
        Err(e) => return Err(format!("workload run failed: {e}")),
    }
    let profile = iss.block_profile().cloned().expect("profiling was enabled");
    Ok((profile, iss.instr_count()))
}

/// Profiles one workload spec end to end: run, symbolize, render.
fn run_one(spec: &str, args: &Args) -> Result<RunOutput, String> {
    let w = build_workload(spec)?;
    let soc_cfg = build_config(&args.config)?;
    let (profile, total_cycles, total_instructions) = match args.tier.as_str() {
        "pipeline" => run_pipeline_tier(&w, &soc_cfg)?,
        _ => {
            let (profile, instrs) = run_iss_tier(&w, &soc_cfg)?;
            (profile, 0, instrs)
        }
    };

    let graph = cfg::recover(&w.image);
    let symbol_map = symbols::symbol_map(&graph, &soc_cfg);
    let calls = symbols::call_graph(&graph, &symbol_map);

    let mut header = format!("== {} ({}) ==\n", w.name, args.tier);
    if args.tier == "pipeline" {
        let total = profile.total();
        header.push_str(&format!(
            "attribution: {} cycles == retire {} + stalls {} (exact), {} instructions\n",
            total.cycles(),
            total.retire_cycles,
            total.stall_total(),
            total_instructions,
        ));
    } else {
        header.push_str(&format!(
            "attribution: {total_instructions} instructions retired (functional tier, no cycles)\n"
        ));
    }

    let mut report = render_hot_blocks(&profile, &symbol_map, args.top);
    if args.annotate {
        report.push_str(&render_annotated(
            &profile,
            &symbol_map,
            args.top,
            |start, span| {
                disassemble_range(&w.image, Addr(start), span)
                    .into_iter()
                    .map(|l| (l.addr.0, l.text))
                    .collect()
            },
        ));
    }

    let stacks = flame_stacks(&profile, &symbol_map, &calls);
    let doc = ProfileDoc::new(
        &w.name,
        &args.tier,
        total_cycles,
        total_instructions,
        profile,
        &symbol_map,
    );
    Ok(RunOutput {
        header,
        report,
        doc,
        stacks,
    })
}

/// Differential mode: print the per-block delta table between two
/// profile documents written by `--json`.
fn run_compare(a_path: &str, b_path: &str, top: usize) -> Result<(), String> {
    let read = |path: &str| -> Result<ProfileDoc, String> {
        let body =
            std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
        ProfileDoc::from_json(&body).map_err(|e| format!("{path}: {e}"))
    };
    let before = read(a_path)?;
    let after = read(b_path)?;
    print!("{}", before.delta_table(&after, top));
    Ok(())
}

/// Extracts `(name, fast_ns)` pairs from a `BENCH_*.json` baseline.
/// The files are our own hand-written format, so a line scan suffices.
fn read_baseline(path: &str) -> Result<Vec<(String, u128)>, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read baseline {path}: {e}"))?;
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let name: String = line[name_at + 9..]
            .chars()
            .take_while(|&c| c != '"')
            .collect();
        let fast_at = line
            .find("\"fast_ns\": ")
            .ok_or_else(|| format!("baseline {path}: workload line without fast_ns"))?;
        let digits: String = line[fast_at + 11..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let ns = digits
            .parse::<u128>()
            .map_err(|_| format!("baseline {path}: bad fast_ns for {name}"))?;
        out.push((name, ns));
    }
    if out.is_empty() {
        return Err(format!("baseline {path}: no workloads found"));
    }
    Ok(out)
}

/// Best-of-`reps` wall time of `Iss::run_resumable` alone on the fast
/// path, with block profiling on or off.
fn time_iss(w: &Workload, profiling: bool, reps: u32) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let mut iss = Iss::new();
        iss.map_region(Addr(0x8000_0000), 0x4_0000);
        iss.map_region(Addr(0x9000_0000), 0x2_0000);
        iss.map_region(Addr(0xD000_0000), 0x2_0000);
        iss.init_csa(Addr(0xD000_8000), 64).unwrap();
        iss.load(&w.image).unwrap();
        iss.set_fast_path(true);
        iss.set_profile_observation(profiling);
        let t0 = Instant::now();
        iss.run_resumable(50_000_000).expect("workload completes");
        best = best.min(t0.elapsed().as_nanos().max(1));
    }
    best
}

/// Best-of-`reps` wall time of the pipeline stepping loop alone on the
/// fast path (observation off), with block profiling on or off.
fn time_pipeline(w: &Workload, profiling: bool, reps: u32) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let mut bus = TestBus::new();
        bus.mem.add_region(Addr(0x8000_0000), 0x4_0000);
        bus.mem.add_region(Addr(0x9000_0000), 0x2_0000);
        bus.mem.add_region(Addr(0xD000_0000), 0x2_0000);
        w.image.load_into(&mut bus.mem).expect("image fits");
        let mut core = Core::new(CoreConfig::default(), w.image.entry(), SourceId::TRICORE);
        core.set_fast_path(true);
        core.set_profile_observation(profiling);
        core.arch_mut().fcx = init_csa_list(&mut bus.mem, Addr(0xD000_8000), 64).unwrap();
        let mut sink = EventSink::new();
        sink.set_enabled(false);
        let t0 = Instant::now();
        let mut cyc = 0u64;
        while !core.is_halted() {
            core.step(Cycle(cyc), &mut bus, None, &mut sink)
                .expect("no fault");
            cyc += 1;
        }
        best = best.min(t0.elapsed().as_nanos().max(1));
    }
    best
}

struct OverheadRow {
    tier: &'static str,
    name: String,
    baseline_ns: u128,
    disabled_ns: u128,
    enabled_ns: u128,
}

impl OverheadRow {
    fn disabled_regression(&self) -> f64 {
        self.disabled_ns as f64 / self.baseline_ns as f64
    }
    fn enabled_overhead(&self) -> f64 {
        self.enabled_ns as f64 / self.disabled_ns as f64
    }
}

/// Overhead mode: re-times both micro-workload suites with profiling off
/// and on, gates the off timings against the recorded fast-path
/// baselines (geomean ≤ 1.02), and writes `BENCH_profile.json`.
fn run_overhead(args: &Args, path: &str) -> Result<i32, String> {
    let iss_base = read_baseline(&args.iss_baseline)?;
    let pipe_base = read_baseline(&args.pipeline_baseline)?;
    let lookup = |base: &[(String, u128)], which: &str, name: &str| -> Result<u128, String> {
        base.iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .ok_or_else(|| format!("baseline {which} has no workload {name:?}"))
    };

    let mut rows = Vec::new();
    for w in [
        mac_kernel(20_000),
        stream_copy(20_000),
        div_kernel(5_000),
        random_mix(7, 400, 400),
    ] {
        rows.push(OverheadRow {
            tier: "iss",
            baseline_ns: lookup(&iss_base, &args.iss_baseline, &w.name)?,
            disabled_ns: time_iss(&w, false, args.reps),
            enabled_ns: time_iss(&w, true, args.reps),
            name: w.name,
        });
    }
    for w in [
        mac_kernel(200_000),
        stream_copy(25_000),
        div_kernel(50_000),
        random_mix(7, 400, 1_000),
    ] {
        rows.push(OverheadRow {
            tier: "pipeline",
            baseline_ns: lookup(&pipe_base, &args.pipeline_baseline, &w.name)?,
            disabled_ns: time_pipeline(&w, false, args.reps),
            enabled_ns: time_pipeline(&w, true, args.reps),
            name: w.name,
        });
    }

    let mut disabled_lnsum = 0.0f64;
    let mut enabled_lnsum = 0.0f64;
    for r in &rows {
        disabled_lnsum += r.disabled_regression().ln();
        enabled_lnsum += r.enabled_overhead().ln();
        println!(
            "{:<9} {:<14} off {:>6.3}x of baseline   on {:>6.3}x of off",
            r.tier,
            r.name,
            r.disabled_regression(),
            r.enabled_overhead()
        );
    }
    let n = rows.len() as f64;
    let geo_disabled = (disabled_lnsum / n).exp();
    let geo_enabled = (enabled_lnsum / n).exp();
    let within = geo_disabled <= 1.02;
    println!(
        "geomean: profiling-off {geo_disabled:.3}x of baseline ({}), profiling-on {geo_enabled:.3}x of off",
        if within { "within 2%" } else { "REGRESSED >2%" }
    );

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"profile_overhead\",\n");
    out.push_str(&format!("  \"reps\": {},\n", args.reps));
    out.push_str(&format!(
        "  \"iss_baseline\": \"{}\",\n  \"pipeline_baseline\": \"{}\",\n",
        args.iss_baseline, args.pipeline_baseline
    ));
    out.push_str(
        "  \"note\": \"block profiling disabled vs the recorded fast-path baselines, and \
         enabled vs disabled; best-of-reps wall time of the run loop only; single-CPU \
         container\",\n",
    );
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tier\": \"{}\", \"name\": \"{}\", \"baseline_fast_ns\": {}, \
             \"disabled_ns\": {}, \"enabled_ns\": {}, \"disabled_regression\": {:.4}, \
             \"enabled_overhead\": {:.4}}}{}\n",
            r.tier,
            r.name,
            r.baseline_ns,
            r.disabled_ns,
            r.enabled_ns,
            r.disabled_regression(),
            r.enabled_overhead(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"geomean_disabled_regression\": {geo_disabled:.4},\n"
    ));
    out.push_str(&format!(
        "  \"geomean_enabled_overhead\": {geo_enabled:.4},\n"
    ));
    out.push_str(&format!("  \"disabled_within_2pct\": {within}\n}}\n"));
    std::fs::write(path, out).map_err(|e| format!("could not write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(i32::from(!within))
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;

    if let Some((a, b)) = &args.compare {
        run_compare(a, b, args.top)?;
        return Ok(0);
    }
    if let Some(path) = args.overhead_json.clone() {
        return run_overhead(&args, &path);
    }

    if args.json.is_some() && args.workloads.len() > 1 {
        return Err("--json requires a single --workload".to_string());
    }

    let outputs = scheduler::run_jobs(args.workloads.len(), args.jobs, |i| {
        run_one(&args.workloads[i], &args)
    });
    let mut merged = FoldedStacks::new();
    let many = args.workloads.len() > 1;
    let mut first = true;
    for job in outputs {
        let out = job.output?;
        if !first {
            println!();
        }
        first = false;
        print!("{}", out.header);
        print!("{}", out.report);
        if let Some(path) = &args.json {
            std::fs::write(path, out.doc.to_json())
                .map_err(|e| format!("could not write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        merged.merge(
            &out.stacks,
            if many {
                Some(out.doc.workload.as_str())
            } else {
                None
            },
        );
    }
    if let Some(path) = &args.flame_out {
        std::fs::write(path, merged.render())
            .map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(0)
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("profile: {e}");
            std::process::exit(2);
        }
    }
}
