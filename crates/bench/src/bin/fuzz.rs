//! Coverage-guided differential fuzzer CLI: random-but-valid TC-R
//! programs through all execution tiers, with corpus mutation, opcode
//! coverage feedback and shrink-and-pin on divergence.
//!
//! ```text
//! cargo run --release -p audo-bench --bin fuzz -- [options]
//!
//!   --seed S            session seed, decimal or 0x-hex (default 0)
//!   --iterations N      fuzz cases to run (default 200)
//!   --jobs N            worker threads (default: available parallelism)
//!   --round N           cases per coverage-feedback round (default 128);
//!                       fixed independently of --jobs so generation
//!                       never depends on the worker count
//!   --max-instrs N      retired-instruction budget per program
//!   --corpus DIR        literate corpus directory (default: the repo's
//!                       workloads/corpus)
//!   --no-corpus         generation-only session (skip the corpus
//!                       baseline and mutation)
//!   --pin-dir DIR       write minimized reproducers here on divergence
//!   --inject-fault M    test-only: corrupt the fast-path result of any
//!                       program that retires mnemonic M (exercises the
//!                       whole shrink/pin loop without a real bug)
//!   --check-wcet        additionally hold every agreeing program to the
//!                       static WCET/CSA bounds from audo-analyze: a
//!                       measured count above a static bound is reported,
//!                       shrunk and pinned like a tier divergence
//!   --json              print the JSON report instead of the text one
//!   --bench-json PATH   write wall-clock throughput (programs/sec) as a
//!                       BENCH_fuzz.json perf artifact
//!   --metrics-out PATH  export the session's coverage counters (decoder
//!                       slots hit, stall causes observed) in the audo-obs
//!                       text exposition format
//! ```
//!
//! stdout carries only the deterministic report — byte-identical for any
//! `--jobs`. Wall-clock throughput goes to stderr and `--bench-json`.
//!
//! Exit status: 0 clean, 1 error, 2 at least one divergence.

use std::time::Instant;

use audo_bench::json::json_escape;
use audo_bench::{default_jobs, run_jobs};
use audo_fuzz::{run_fuzz, CaseResult, FuzzOptions, FuzzReport};
use audo_tricore::opcodes::opcode_by_name;

struct Args {
    opts: FuzzOptions,
    jobs: usize,
    json: bool,
    bench_json: Option<String>,
    metrics_out: Option<String>,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("not a number: {s:?}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: FuzzOptions {
            iterations: 200,
            corpus_dir: Some(audo_asm::default_corpus_dir()),
            ..FuzzOptions::default()
        },
        jobs: default_jobs(),
        json: false,
        bench_json: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().ok_or(format!("{arg} needs a value"));
        match arg.as_str() {
            "--seed" => args.opts.seed = parse_u64(&value()?)?,
            "--iterations" => args.opts.iterations = parse_u64(&value()?)?,
            "--max-instrs" => args.opts.max_instrs = parse_u64(&value()?)?.max(1),
            "--round" => args.opts.round = parse_u64(&value()?)?.max(1),
            "--jobs" => {
                args.jobs = parse_u64(&value()?)?
                    .try_into()
                    .map_err(|_| "--jobs out of range".to_string())?;
            }
            "--corpus" => args.opts.corpus_dir = Some(value()?.into()),
            "--no-corpus" => args.opts.corpus_dir = None,
            "--pin-dir" => args.opts.pin_dir = Some(value()?.into()),
            "--inject-fault" => {
                let m = value()?;
                args.opts.fault = Some(
                    opcode_by_name(&m).ok_or(format!("--inject-fault: unknown mnemonic {m:?}"))?,
                );
            }
            "--check-wcet" => args.opts.check_wcet = true,
            "--json" => args.json = true,
            "--bench-json" => args.bench_json = Some(value()?),
            "--metrics-out" => args.metrics_out = Some(value()?),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--seed S] [--iterations N] [--jobs N] [--round N] \
                     [--max-instrs N] [--corpus DIR | --no-corpus] [--pin-dir DIR] \
                     [--inject-fault MNEMONIC] [--check-wcet] [--json] \
                     [--bench-json PATH] [--metrics-out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(args)
}

/// Deterministic JSON rendering of the session report.
fn report_json(r: &FuzzReport) -> String {
    let (covered, sampleable, uncovered) = r.coverage_counts();
    let uncovered: Vec<String> = uncovered.iter().map(|n| format!("\"{n}\"")).collect();
    let divergences: Vec<String> = r
        .divergences
        .iter()
        .map(|d| {
            let case = d
                .index
                .map_or_else(|| "null".to_string(), |i| i.to_string());
            let pinned = d
                .pinned
                .as_ref()
                .map_or_else(|| "null".to_string(), |p| format!("\"{}\"", json_escape(p)));
            format!(
                "    {{\"case\": {case}, \"kind\": \"{}\", \"message\": \"{}\", \
                 \"pinned\": {pinned}}}",
                json_escape(&d.kind),
                json_escape(&d.message)
            )
        })
        .collect();
    format!(
        "{{\n  \"seed\": \"{:#x}\",\n  \"iterations\": {},\n  \
         \"corpus_programs\": {},\n  \"agreed_fault_programs\": {},\n  \
         \"retired_total\": {},\n  \"coverage_covered\": {covered},\n  \
         \"coverage_sampleable\": {sampleable},\n  \"uncovered\": [{}],\n  \
         \"divergences\": [\n{}\n  ],\n  \"clean\": {}\n}}\n",
        r.seed,
        r.iterations,
        r.corpus_programs,
        r.errored,
        r.retired_total,
        uncovered.join(", "),
        divergences.join(",\n"),
        r.divergences.is_empty(),
    )
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;
    let jobs = args.jobs.max(1);

    let t_run = Instant::now();
    let report = run_fuzz(&args.opts, |count, case| {
        run_jobs(count, jobs, case)
            .into_iter()
            .map(|t| t.output)
            .collect::<Vec<CaseResult>>()
    })
    .map_err(|e| e.to_string())?;
    let run_secs = t_run.elapsed().as_secs_f64();

    if args.json {
        print!("{}", report_json(&report));
    } else {
        print!("{}", report.render());
    }

    if let Some(path) = &args.metrics_out {
        let mut reg = audo_obs::Registry::new();
        report.export_obs(&mut reg);
        let body = audo_obs::metrics_text::render(&reg, "audo_");
        std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    // Wall-clock channel: stderr + perf artifact only, never stdout.
    let programs = report.iterations + report.corpus_programs as u64;
    #[allow(clippy::cast_precision_loss)] // reason: stderr perf stats, not a deterministic export
    {
        eprintln!(
            "fuzz: {programs} programs in {run_secs:.2}s ({:.1} programs/sec, {jobs} jobs)",
            programs as f64 / run_secs.max(1e-9),
        );
    }
    if let Some(path) = &args.bench_json {
        #[allow(clippy::cast_precision_loss)] // reason: perf artifact, not a deterministic export
        let body = format!(
            "{{\n  \"bench\": \"fuzz_programs\",\n  \
             \"note\": \"differential fuzz throughput; each program runs up to four tier \
             configurations plus MCDS encode/decode; single-CPU container\",\n  \
             \"programs\": {programs},\n  \"jobs\": {jobs},\n  \
             \"retired_instructions\": {},\n  \"wall_ns\": {},\n  \
             \"programs_per_sec\": {:.1}\n}}\n",
            report.retired_total,
            (run_secs * 1e9) as u64,
            programs as f64 / run_secs.max(1e-9),
        );
        std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    Ok(if report.divergences.is_empty() { 0 } else { 2 })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(1);
        }
    }
}
