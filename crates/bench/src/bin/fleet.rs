//! Fleet-scale calibration service CLI: runs thousands of derived
//! per-vehicle profiling sessions, folds them into streaming per-cohort
//! aggregates, and vetoes any unit whose measured rates diverge from its
//! cohort's static envelope.
//!
//! ```text
//! cargo run --release -p audo-bench --bin fleet -- [options]
//!
//!   --sessions N        vehicles to profile (default 256)
//!   --seed S            fleet master seed, decimal or 0x-hex
//!   --fault-rate F      base tool-link fault rate (each unit derives a
//!                       jitter in [0.5, 1.5) on top)
//!   --miscalibrate 1/N  plant a miscalibrated unit per N vehicles
//!   --jobs N            worker threads (default: available parallelism)
//!   --shard-size N      sessions per shard (default 32); fixed
//!                       independently of --jobs so the report shape
//!                       never depends on the worker count
//!   --json              print the JSON report instead of the text one
//!   --trace PATH        write the deterministic virtual schedule as a
//!                       Chrome trace (chrome://tracing / Perfetto)
//!   --bench-json PATH   write wall-clock throughput (sessions/sec) as a
//!                       BENCH_fleet.json perf artifact
//! ```
//!
//! stdout carries only the deterministic report — byte-identical for any
//! `--jobs`. Wall-clock throughput goes to stderr and `--bench-json`.
//!
//! Exit status: 0 clean, 1 error, 2 at least one unit was vetoed.

use std::time::Instant;

use audo_bench::{default_jobs, export_schedule_obs, run_jobs, wall_summary};
use audo_fleet::{fold, plan, FleetOptions, FleetReport};

struct Args {
    opts: FleetOptions,
    jobs: usize,
    json: bool,
    trace: Option<String>,
    bench_json: Option<String>,
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("not a number: {s:?}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: FleetOptions::default(),
        jobs: default_jobs(),
        json: false,
        trace: None,
        bench_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().ok_or(format!("{arg} needs a value"));
        match arg.as_str() {
            "--sessions" => args.opts.sessions = parse_u64(&value()?)?,
            "--seed" => args.opts.seed = parse_u64(&value()?)?,
            "--fault-rate" => {
                let v = value()?;
                args.opts.fault_rate = v.parse().map_err(|_| format!("not a rate: {v:?}"))?;
                if !(0.0..=1.0).contains(&args.opts.fault_rate) {
                    return Err(format!("--fault-rate {v} outside [0, 1]"));
                }
            }
            "--miscalibrate" => {
                let v = value()?;
                let n = v
                    .strip_prefix("1/")
                    .ok_or(format!("--miscalibrate wants 1/N, got {v:?}"))
                    .and_then(parse_u64)?;
                if n == 0 {
                    return Err("--miscalibrate 1/0 is not a rate".to_string());
                }
                args.opts.miscalibrate = Some(n);
            }
            "--jobs" => {
                args.jobs = parse_u64(&value()?)?
                    .try_into()
                    .map_err(|_| "--jobs out of range".to_string())?;
            }
            "--shard-size" => {
                args.opts.shard_size = parse_u64(&value()?)?.max(1);
            }
            "--json" => args.json = true,
            "--trace" => args.trace = Some(value()?),
            "--bench-json" => args.bench_json = Some(value()?),
            "--help" | "-h" => {
                println!(
                    "usage: fleet [--sessions N] [--seed S] [--fault-rate F] \
                     [--miscalibrate 1/N] [--jobs N] [--shard-size N] [--json] \
                     [--trace PATH] [--bench-json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(args)
}

fn write_bench_json(
    path: &str,
    report: &FleetReport,
    jobs: usize,
    run_secs: f64,
) -> Result<(), String> {
    let sessions = report.total_sessions();
    #[allow(clippy::cast_precision_loss)] // reason: perf artifact, not a deterministic export
    let body = format!(
        "{{\n  \"bench\": \"fleet_sessions\",\n  \
         \"note\": \"fleet calibration throughput; wall time of the shard run only \
         (cohort build excluded); single-CPU container\",\n  \
         \"sessions\": {},\n  \"jobs\": {},\n  \"shards\": {},\n  \
         \"total_cycles\": {},\n  \"wall_ns\": {},\n  \
         \"sessions_per_sec\": {:.1},\n  \"sim_cycles_per_sec\": {:.0}\n}}\n",
        sessions,
        jobs,
        report.shard_cycles.len(),
        report.total_cycles(),
        (run_secs * 1e9) as u64,
        sessions as f64 / run_secs.max(1e-9),
        report.total_cycles() as f64 / run_secs.max(1e-9),
    );
    std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;

    let t_plan = Instant::now();
    let plan = plan(args.opts.clone());
    let plan_secs = t_plan.elapsed().as_secs_f64();

    let t_run = Instant::now();
    let timed = run_jobs(plan.shard_count(), args.jobs, |s| plan.run_shard(s));
    let run_elapsed = t_run.elapsed();
    let run_secs = run_elapsed.as_secs_f64();

    let outcomes: Vec<_> = timed.iter().map(|j| j.output.clone()).collect();
    let report = fold(&plan, &outcomes)?;

    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }

    if let Some(path) = &args.trace {
        let mut reg = audo_obs::Registry::new();
        export_schedule_obs(&mut reg, "fleet.schedule", 1, &report.shard_cycles);
        let body = audo_obs::chrome::trace_json(
            &reg,
            "audo-fleet",
            &[(1, "fleet schedule (virtual replay)".to_string())],
        );
        std::fs::write(path, body).map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    // Wall-clock channel: stderr + perf artifact only, never stdout.
    let wall = wall_summary(&timed, run_elapsed, args.jobs);
    #[allow(clippy::cast_precision_loss)] // reason: stderr perf stats, not a deterministic export
    {
        eprintln!(
            "fleet: {} sessions in {:.2}s ({:.1} sessions/sec, {} jobs, \
             utilization {:.0}%, plan build {:.2}s)",
            report.total_sessions(),
            run_secs,
            report.total_sessions() as f64 / run_secs.max(1e-9),
            args.jobs,
            wall.utilization * 100.0,
            plan_secs,
        );
    }
    if let Some(path) = &args.bench_json {
        write_bench_json(path, &report, args.jobs, run_secs)?;
        eprintln!("wrote {path}");
    }

    Ok(if report.is_clean() { 0 } else { 2 })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(1);
        }
    }
}
