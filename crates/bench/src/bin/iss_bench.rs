//! Measures ISS throughput with the decode-cache fast path off vs. on and
//! writes the machine-readable perf-trajectory point `BENCH_iss.json`.
//!
//! Usage: `iss_bench [--json PATH] [--reps N]`
//!
//! For each instruction-mix workload the program times `Iss::run` only
//! (setup — assembly, memory mapping, image load — is excluded), takes the
//! best of `N` repetitions to suppress scheduler noise, and reports
//! retired instructions per wall-second plus the fast/slow speedup. The
//! JSON is written by hand so the binary has no serializer dependency.

use std::time::Instant;

use audo_common::Addr;
use audo_tricore::iss::Iss;
use audo_workloads::micro::{div_kernel, mac_kernel, random_mix, stream_copy};
use audo_workloads::Workload;

struct Row {
    name: String,
    instrs: u64,
    slow_ns: u128,
    fast_ns: u128,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.slow_ns as f64 / self.fast_ns as f64
    }
    fn mips(&self, ns: u128) -> f64 {
        self.instrs as f64 / (ns as f64 / 1e9) / 1e6
    }
}

fn prepared(w: &Workload, fast: bool) -> Iss {
    let mut iss = Iss::new();
    iss.map_region(Addr(0x8000_0000), 0x4_0000);
    iss.map_region(Addr(0x9000_0000), 0x2_0000);
    iss.map_region(Addr(0xD000_0000), 0x2_0000);
    iss.init_csa(Addr(0xD000_8000), 64).unwrap();
    iss.load(&w.image).unwrap();
    iss.set_fast_path(fast);
    iss
}

/// Best-of-`reps` wall time of `Iss::run` alone, in nanoseconds, plus the
/// retired-instruction count (identical across paths by construction).
fn time_run(w: &Workload, fast: bool, reps: u32) -> (u128, u64) {
    let mut best = u128::MAX;
    let mut instrs = 0;
    for _ in 0..reps {
        let iss = prepared(w, fast);
        let t0 = Instant::now();
        let run = iss.run(50_000_000).expect("workload completes");
        let dt = t0.elapsed().as_nanos().max(1);
        best = best.min(dt);
        instrs = run.instr_count;
    }
    (best, instrs)
}

fn main() {
    let mut json_path = String::from("BENCH_iss.json");
    let mut reps: u32 = 5;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next().expect("--json needs a path"),
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps must be an integer")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let workloads = [
        mac_kernel(20_000),
        stream_copy(20_000),
        div_kernel(5_000),
        random_mix(7, 400, 400),
    ];
    let mut rows = Vec::new();
    for w in &workloads {
        let (slow_ns, slow_instrs) = time_run(w, false, reps);
        let (fast_ns, fast_instrs) = time_run(w, true, reps);
        assert_eq!(
            slow_instrs, fast_instrs,
            "fast path must retire the same instruction count"
        );
        let row = Row {
            name: w.name.clone(),
            instrs: slow_instrs,
            slow_ns,
            fast_ns,
        };
        println!(
            "{:<14} {:>9} instrs  slow {:>8.2} Mi/s  fast {:>8.2} Mi/s  speedup {:>5.2}x",
            row.name,
            row.instrs,
            row.mips(row.slow_ns),
            row.mips(row.fast_ns),
            row.speedup()
        );
        rows.push(row);
    }

    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("geomean speedup: {geomean:.2}x");

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"iss_throughput\",\n");
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str("  \"note\": \"functional ISS, decode-cache fast path off vs on; best-of-reps wall time of Iss::run only; single-CPU container\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"instrs\": {}, \"slow_ns\": {}, \"fast_ns\": {}, \"slow_mips\": {:.3}, \"fast_mips\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.instrs,
            r.slow_ns,
            r.fast_ns,
            r.mips(r.slow_ns),
            r.mips(r.fast_ns),
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"geomean_speedup\": {geomean:.3}\n}}\n"));
    std::fs::write(&json_path, out).expect("write BENCH json");
    println!("wrote {json_path}");
}
