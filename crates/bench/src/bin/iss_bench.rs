//! Measures ISS throughput with the decode-cache fast path off vs. on and
//! writes the machine-readable perf-trajectory point `BENCH_iss.json`.
//!
//! ```text
//! iss_bench [--json PATH] [--reps N] [--trace-out PATH] [--metrics-out PATH]
//!           [--obs-json PATH] [--baseline PATH]
//! ```
//!
//! For each instruction-mix workload the program times `Iss::run` only
//! (setup — assembly, memory mapping, image load — is excluded), takes the
//! best of `N` repetitions to suppress scheduler noise, and reports
//! retired instructions per wall-second plus the fast/slow speedup. The
//! JSON is written by hand so the binary has no serializer dependency.
//!
//! `--trace-out`/`--metrics-out` write observability exports of one
//! instrumented run per workload (fast path with the instruction-mix
//! counter on). All timestamps are retired-instruction counts, so the
//! files are byte-identical across identical runs.
//!
//! `--obs-json` additionally measures instrumentation overhead and writes
//! it (default `BENCH_obs.json`): the fast path is re-timed with the mix
//! counter enabled, and the plain (instrumentation-disabled) timings are
//! compared against the `fast_ns` baseline in `--baseline` (default
//! `BENCH_iss.json`) — the disabled geomean must stay within 2%.

use std::time::Instant;

use audo_common::Addr;
use audo_tricore::iss::Iss;
use audo_workloads::micro::{div_kernel, mac_kernel, random_mix, stream_copy};
use audo_workloads::Workload;

struct Row {
    name: String,
    instrs: u64,
    slow_ns: u128,
    fast_ns: u128,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.slow_ns as f64 / self.fast_ns as f64
    }
    fn mips(&self, ns: u128) -> f64 {
        self.instrs as f64 / (ns as f64 / 1e9) / 1e6
    }
}

fn prepared(w: &Workload, fast: bool) -> Iss {
    let mut iss = Iss::new();
    iss.map_region(Addr(0x8000_0000), 0x4_0000);
    iss.map_region(Addr(0x9000_0000), 0x2_0000);
    iss.map_region(Addr(0xD000_0000), 0x2_0000);
    iss.init_csa(Addr(0xD000_8000), 64).unwrap();
    iss.load(&w.image).unwrap();
    iss.set_fast_path(fast);
    iss
}

/// Best-of-`reps` wall time of `Iss::run` alone, in nanoseconds, plus the
/// retired-instruction count (identical across paths by construction).
fn time_run(w: &Workload, fast: bool, mix: bool, reps: u32) -> (u128, u64) {
    let mut best = u128::MAX;
    let mut instrs = 0;
    for _ in 0..reps {
        let mut iss = prepared(w, fast);
        iss.set_mix_observation(mix);
        let t0 = Instant::now();
        let run = iss.run(50_000_000).expect("workload completes");
        let dt = t0.elapsed().as_nanos().max(1);
        best = best.min(dt);
        instrs = run.instr_count;
    }
    (best, instrs)
}

/// One fully instrumented run of a workload (fast path, mix counter on),
/// exported into a fresh registry. Simulated time is the retired count.
fn observed_run(w: &Workload) -> audo_obs::Registry {
    let mut iss = prepared(w, true);
    iss.set_mix_observation(true);
    let mut reg = audo_obs::Registry::new();
    reg.begin_span("run", 0);
    iss.run_resumable(50_000_000).expect("workload completes");
    iss.export_obs(&mut reg);
    let retired = reg.counter("iss.instructions_retired");
    reg.end_span(retired);
    reg.stamp(retired);
    reg
}

/// Extracts `(name, fast_ns)` pairs from a `BENCH_iss.json` baseline.
/// The file is our own hand-written format, so a line scan suffices.
fn read_baseline(path: &str) -> Result<Vec<(String, u128)>, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read baseline {path}: {e}"))?;
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let name: String = line[name_at + 9..]
            .chars()
            .take_while(|&c| c != '"')
            .collect();
        let fast_at = line
            .find("\"fast_ns\": ")
            .ok_or_else(|| format!("baseline {path}: workload line without fast_ns"))?;
        let digits: String = line[fast_at + 11..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let ns = digits
            .parse::<u128>()
            .map_err(|_| format!("baseline {path}: bad fast_ns for {name}"))?;
        out.push((name, ns));
    }
    if out.is_empty() {
        return Err(format!("baseline {path}: no workloads found"));
    }
    Ok(out)
}

struct Args {
    json_path: String,
    reps: u32,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    obs_json: Option<String>,
    baseline: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        json_path: String::from("BENCH_iss.json"),
        reps: 5,
        trace_out: None,
        metrics_out: None,
        obs_json: None,
        baseline: String::from("BENCH_iss.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => parsed.json_path = args.next().expect("--json needs a path"),
            "--reps" => {
                parsed.reps = args
                    .next()
                    .expect("--reps needs a count")
                    .parse()
                    .expect("--reps must be an integer");
            }
            "--trace-out" => {
                parsed.trace_out = Some(args.next().expect("--trace-out needs a path"))
            }
            "--metrics-out" => {
                parsed.metrics_out = Some(args.next().expect("--metrics-out needs a path"));
            }
            "--obs-json" => parsed.obs_json = Some(args.next().expect("--obs-json needs a path")),
            "--baseline" => parsed.baseline = args.next().expect("--baseline needs a path"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

fn write_obs_exports(args: &Args, workloads: &[Workload]) {
    if args.trace_out.is_none() && args.metrics_out.is_none() {
        return;
    }
    let mut merged = audo_obs::Registry::new();
    let mut tracks: Vec<(u32, String)> = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        // reason: the workload list is tiny; i + 1 always fits u32.
        #[allow(clippy::cast_possible_truncation)]
        let track = (i + 1) as u32;
        let reg = observed_run(w);
        merged.merge_from(&format!("{}.", w.name), &reg, track);
        tracks.push((track, w.name.clone()));
    }
    if let Some(path) = &args.trace_out {
        let body = audo_obs::chrome::trace_json(&merged, "audo iss_bench", &tracks);
        std::fs::write(path, body).expect("write trace json");
        println!("wrote {path}");
    }
    if let Some(path) = &args.metrics_out {
        let body = audo_obs::metrics_text::render(&merged, "audo_");
        std::fs::write(path, body).expect("write metrics snapshot");
        println!("wrote {path}");
    }
}

/// Measures instrumentation overhead on the fast path and writes
/// `BENCH_obs.json`. `rows` carries this run's instrumentation-disabled
/// timings; the baseline file carries the pre-observability `fast_ns`.
fn write_obs_overhead(args: &Args, path: &str, rows: &[Row]) {
    let baseline = match read_baseline(&args.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut entries = Vec::new();
    let mut disabled_lnsum = 0.0f64;
    let mut enabled_lnsum = 0.0f64;
    let workloads = [
        mac_kernel(20_000),
        stream_copy(20_000),
        div_kernel(5_000),
        random_mix(7, 400, 400),
    ];
    for (w, row) in workloads.iter().zip(rows) {
        let (enabled_ns, _) = time_run(w, true, true, args.reps);
        let base_ns = baseline
            .iter()
            .find(|(n, _)| *n == row.name)
            .map(|(_, ns)| *ns)
            .unwrap_or_else(|| {
                eprintln!("baseline {} has no workload {:?}", args.baseline, row.name);
                std::process::exit(2);
            });
        let disabled_regression = row.fast_ns as f64 / base_ns as f64;
        let enabled_overhead = enabled_ns as f64 / row.fast_ns as f64;
        disabled_lnsum += disabled_regression.ln();
        enabled_lnsum += enabled_overhead.ln();
        println!(
            "{:<14} disabled {:>6.3}x of baseline   enabled {:>6.3}x of disabled",
            row.name, disabled_regression, enabled_overhead
        );
        entries.push((
            row,
            base_ns,
            enabled_ns,
            disabled_regression,
            enabled_overhead,
        ));
    }
    let n = entries.len() as f64;
    let geo_disabled = (disabled_lnsum / n).exp();
    let geo_enabled = (enabled_lnsum / n).exp();
    let within = geo_disabled <= 1.02;
    println!(
        "geomean: disabled {geo_disabled:.3}x of baseline ({}), enabled {geo_enabled:.3}x of disabled",
        if within { "within 2%" } else { "REGRESSED >2%" }
    );

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"obs_overhead\",\n");
    out.push_str(&format!("  \"reps\": {},\n", args.reps));
    out.push_str(&format!("  \"baseline\": \"{}\",\n", args.baseline));
    out.push_str(
        "  \"note\": \"decode-cache fast path: instrumentation disabled vs the recorded \
         baseline, and with the instruction-mix counter enabled; best-of-reps wall time of \
         Iss::run only; single-CPU container\",\n",
    );
    out.push_str("  \"workloads\": [\n");
    for (i, (row, base_ns, enabled_ns, disabled_regression, enabled_overhead)) in
        entries.iter().enumerate()
    {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"instrs\": {}, \"baseline_fast_ns\": {}, \
             \"disabled_ns\": {}, \"enabled_ns\": {}, \"disabled_regression\": {:.4}, \
             \"enabled_overhead\": {:.4}}}{}\n",
            row.name,
            row.instrs,
            base_ns,
            row.fast_ns,
            enabled_ns,
            disabled_regression,
            enabled_overhead,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"geomean_disabled_regression\": {geo_disabled:.4},\n"
    ));
    out.push_str(&format!(
        "  \"geomean_enabled_overhead\": {geo_enabled:.4},\n"
    ));
    out.push_str(&format!("  \"disabled_within_2pct\": {within}\n}}\n"));
    std::fs::write(path, out).expect("write BENCH_obs json");
    println!("wrote {path}");
    if !within {
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();

    let workloads = [
        mac_kernel(20_000),
        stream_copy(20_000),
        div_kernel(5_000),
        random_mix(7, 400, 400),
    ];
    let mut rows = Vec::new();
    for w in &workloads {
        let (slow_ns, slow_instrs) = time_run(w, false, false, args.reps);
        let (fast_ns, fast_instrs) = time_run(w, true, false, args.reps);
        assert_eq!(
            slow_instrs, fast_instrs,
            "fast path must retire the same instruction count"
        );
        let row = Row {
            name: w.name.clone(),
            instrs: slow_instrs,
            slow_ns,
            fast_ns,
        };
        println!(
            "{:<14} {:>9} instrs  slow {:>8.2} Mi/s  fast {:>8.2} Mi/s  speedup {:>5.2}x",
            row.name,
            row.instrs,
            row.mips(row.slow_ns),
            row.mips(row.fast_ns),
            row.speedup()
        );
        rows.push(row);
    }

    let geomean = (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("geomean speedup: {geomean:.2}x");

    if args.obs_json.is_none() {
        let mut out = String::new();
        out.push_str("{\n  \"bench\": \"iss_throughput\",\n");
        out.push_str(&format!("  \"reps\": {},\n", args.reps));
        out.push_str("  \"note\": \"functional ISS, decode-cache fast path off vs on; best-of-reps wall time of Iss::run only; single-CPU container\",\n");
        out.push_str("  \"workloads\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"instrs\": {}, \"slow_ns\": {}, \"fast_ns\": {}, \"slow_mips\": {:.3}, \"fast_mips\": {:.3}, \"speedup\": {:.3}}}{}\n",
                r.name,
                r.instrs,
                r.slow_ns,
                r.fast_ns,
                r.mips(r.slow_ns),
                r.mips(r.fast_ns),
                r.speedup(),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"geomean_speedup\": {geomean:.3}\n}}\n"));
        std::fs::write(&args.json_path, out).expect("write BENCH json");
        println!("wrote {}", args.json_path);
    }

    write_obs_exports(&args, &workloads);
    if let Some(path) = args.obs_json.clone() {
        write_obs_overhead(&args, &path, &rows);
    }
}
