//! CI gate: the pipeline predecoded fast path must be invisible.
//!
//! Runs the stock engine-control workload on a full SoC twice — predecode
//! fast path off, then on — with observation enabled, and requires the two
//! runs to be byte-identical in everything a toolchain could see: cycle
//! count, retired instructions, the complete performance-event and bus-
//! transaction streams, the architectural register file, and the rendered
//! metrics snapshot (modulo the predecode cache's own hit/miss counters,
//! which describe the mechanism itself). Any difference exits nonzero.

use audo_common::{BusTransaction, EventRecord, SimError};
use audo_obs::{metrics_text, Registry};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_workloads::stock_workloads;

struct RunOut {
    cycles: u64,
    retired: u64,
    events: Vec<EventRecord>,
    bus: Vec<BusTransaction>,
    d: [u32; 16],
    a: [u32; 16],
    metrics: String,
}

fn run(fast: bool) -> Result<RunOut, SimError> {
    let workloads = stock_workloads();
    let w = workloads
        .iter()
        .find(|w| w.name.contains("engine"))
        .expect("stock engine workload exists");
    let mut soc = Soc::new(SocConfig::default());
    soc.tricore.set_fast_path(fast);
    w.install(&mut soc)?;
    soc.set_observation(true);
    let mut events = Vec::new();
    let mut bus = Vec::new();
    let mut cycles = 0u64;
    while cycles < w.max_cycles {
        let obs = soc.step()?;
        events.extend(obs.events);
        bus.extend(obs.bus);
        cycles += 1;
        if obs.halted {
            break;
        }
    }
    let mut reg = Registry::new();
    soc.export_obs(&mut reg);
    Ok(RunOut {
        cycles,
        retired: soc.tricore.retired_total(),
        events,
        bus,
        d: soc.tricore.arch().d,
        a: soc.tricore.arch().a,
        metrics: metrics_text::render(&reg, "audo"),
    })
}

/// Drops the metric lines describing the predecode cache itself (hits and
/// misses legitimately differ between the two modes: with the fast path
/// off the cache is not consulted at all).
fn strip_predecode(metrics: &str) -> String {
    metrics
        .lines()
        .filter(|l| !l.contains("predecode"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn main() {
    let slow = run(false).expect("uncached run completes");
    let fast = run(true).expect("cached run completes");
    let mut ok = true;
    let mut check = |what: &str, same: bool| {
        if same {
            println!("  ok: {what}");
        } else {
            println!("  MISMATCH: {what}");
            ok = false;
        }
    };
    check("cycle count", fast.cycles == slow.cycles);
    check("instructions retired", fast.retired == slow.retired);
    check("data registers", fast.d == slow.d);
    check("address registers", fast.a == slow.a);
    check("performance-event stream", fast.events == slow.events);
    check("bus-transaction stream", fast.bus == slow.bus);
    check(
        "rendered metrics (modulo predecode counters)",
        strip_predecode(&fast.metrics) == strip_predecode(&slow.metrics),
    );
    if ok {
        println!(
            "pipeline fast-path gate passed: {} cycles, {} instructions, \
             {} events byte-identical cached vs uncached",
            slow.cycles,
            slow.retired,
            slow.events.len()
        );
    } else {
        eprintln!("pipeline fast path is observable — timing model broken");
        std::process::exit(1);
    }
}
