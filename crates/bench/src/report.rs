//! Uniform experiment reports: human-readable lines plus machine-checkable
//! pass/fail assertions, consumed by the `experiments` binary (which
//! regenerates EXPERIMENTS.md) and by the integration tests.

/// One verifiable claim of an experiment.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is asserted.
    pub what: String,
    /// Whether the measurement satisfied it.
    pub pass: bool,
}

/// A rendered experiment.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (`E1`..`E16`).
    pub id: &'static str,
    /// Title (the paper anchor).
    pub title: String,
    /// Report body lines.
    pub lines: Vec<String>,
    /// Pass/fail claims.
    pub checks: Vec<Check>,
    /// Machine-readable key/value result fields, emitted into the JSON
    /// summary of the `experiments` binary (not into the rendered text).
    pub kv: Vec<(String, String)>,
    /// Observability registry for this experiment. Enabled (and populated
    /// by the experiment) only when [`crate::set_obs`] switched experiment
    /// observability on; disabled and empty otherwise.
    pub obs: audo_obs::Registry,
    /// Folded call stacks this experiment reconstructed (flamegraph input;
    /// populated only with observability on).
    pub flame: audo_obs::FoldedStacks,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(id: &'static str, title: impl Into<String>) -> Report {
        Report {
            id,
            title: title.into(),
            lines: Vec::new(),
            checks: Vec::new(),
            kv: Vec::new(),
            obs: if crate::obs_enabled() {
                audo_obs::Registry::new()
            } else {
                audo_obs::Registry::disabled()
            },
            flame: audo_obs::FoldedStacks::new(),
        }
    }

    /// Appends a body line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Records a machine-readable result field for the JSON summary.
    pub fn field(&mut self, key: impl Into<String>, value: impl ToString) {
        self.kv.push((key.into(), value.to_string()));
    }

    /// Records a claim.
    pub fn check(&mut self, what: impl Into<String>, pass: bool) {
        self.checks.push(Check {
            what: what.into(),
            pass,
        });
    }

    /// `true` when every claim held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Renders the report as markdown-ish text.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out);
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        let _ = writeln!(out);
        for c in &self.checks {
            let _ = writeln!(out, "- [{}] {}", if c.pass { "x" } else { " " }, c.what);
        }
        let _ = writeln!(out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_checks_and_lines() {
        let mut r = Report::new("E0", "demo");
        r.line("alpha");
        r.check("good", true);
        r.check("bad", false);
        assert!(!r.passed());
        let s = r.render();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("alpha"));
        assert!(s.contains("- [x] good"));
        assert!(s.contains("- [ ] bad"));
    }

    #[test]
    fn empty_report_passes() {
        let r = Report::new("E0", "empty");
        assert!(r.passed());
        assert!(r.render().contains("E0"));
    }

    #[test]
    fn fields_are_recorded_but_not_rendered() {
        let mut r = Report::new("E0", "demo");
        r.field("retries", 3u64);
        r.field("rate", 0.01);
        assert_eq!(
            r.kv,
            vec![
                ("retries".to_string(), "3".to_string()),
                ("rate".to_string(), "0.01".to_string()),
            ]
        );
        assert!(!r.render().contains("retries"));
    }
}
