//! Per-vehicle seed derivation.
//!
//! Every unit in the fleet is identified by its session index; everything
//! else about it — its own seed, the calibration cohort it belongs to,
//! its tool-link fault rate, whether it is the planted miscalibrated
//! unit — is *derived* from the fleet master seed and that index through
//! a splitmix64 stream. Derivation is pure integer math: the same
//! `(fleet seed, index)` pair derives the same vehicle on any host, at
//! any `--jobs`, in any session order, which is what makes a fleet run
//! replayable (and a vetoed unit chaseable by seed alone).

use crate::cohort;

/// The splitmix64 output mix (Steele, Lea & Flood; the standard
/// `SplitMix64` finalizer). Good avalanche from a weak input.
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent value from a vehicle seed: `stream` selects
/// which quantity (cohort, fault jitter, miscalibration draw, …) so the
/// draws do not correlate.
#[must_use]
pub fn derive_stream(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Derivation streams (documented so goldens/chasing tools can recompute
/// any single draw).
pub mod stream {
    /// Cohort selection draw.
    pub const COHORT: u64 = 1;
    /// Tool-link fault-rate jitter draw.
    pub const FAULT: u64 = 2;
    /// Miscalibration draw (`1/N` units hit `draw % N == 0`).
    pub const MISCAL: u64 = 3;
}

/// Everything derived about one vehicle.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleSpec {
    /// Session index in the fleet (0-based).
    pub index: u64,
    /// The vehicle's own seed (drives its link-fault injector and every
    /// further per-vehicle draw).
    pub seed: u64,
    /// Calibration cohort ([`crate::cohort::COHORTS`] index). For a
    /// miscalibrated unit this is the cohort the unit *claims* —
    /// the envelope it is checked against.
    pub cohort: usize,
    /// Derived per-unit tool-link fault rate (base rate × jitter in
    /// `[0.5, 1.5)`).
    pub fault_rate: f64,
    /// This unit is the planted miscalibration: it claims the lean
    /// scratchpad-resident calibration but actually runs the flash-heavy
    /// stock build.
    pub miscalibrated: bool,
}

/// The vehicle seed of session `index` under `fleet_seed`.
#[must_use]
pub fn vehicle_seed(fleet_seed: u64, index: u64) -> u64 {
    splitmix64(fleet_seed ^ splitmix64(index))
}

/// Whether the vehicle with `seed` is miscalibrated under a `1/n` plant
/// rate (the draw every chasing tool can recompute).
#[must_use]
pub fn is_miscalibrated(seed: u64, n: u64) -> bool {
    n > 0 && derive_stream(seed, stream::MISCAL).is_multiple_of(n)
}

/// Derives the full spec of session `index`.
///
/// `miscalibrate` is the plant rate as `Some(n)` for "1 in n" (`None`
/// plants nothing). A miscalibrated unit's cohort is forced to the lean
/// calibration cohort — that is the envelope its measured rates are
/// checked against, and the flash-heavy rogue build it actually runs
/// cannot satisfy it.
#[must_use]
pub fn vehicle(
    fleet_seed: u64,
    index: u64,
    base_fault_rate: f64,
    miscalibrate: Option<u64>,
) -> VehicleSpec {
    let seed = vehicle_seed(fleet_seed, index);
    let miscalibrated = miscalibrate.is_some_and(|n| is_miscalibrated(seed, n));
    let cohort = if miscalibrated {
        cohort::LEAN
    } else {
        cohort::pick(derive_stream(seed, stream::COHORT))
    };
    // Jitter in [0.5, 1.5): units near a noisy charger and units on a
    // clean bench link, derived — not sampled — so it replays.
    let jitter = 0.5 + (derive_stream(seed, stream::FAULT) >> 11) as f64 / (1u64 << 53) as f64;
    VehicleSpec {
        index,
        seed,
        cohort,
        fault_rate: (base_fault_rate * jitter).clamp(0.0, 1.0),
        miscalibrated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure_and_index_sensitive() {
        let a = vehicle(42, 7, 1e-3, Some(100));
        let b = vehicle(42, 7, 1e-3, Some(100));
        assert_eq!(a, b);
        let c = vehicle(42, 8, 1e-3, Some(100));
        assert_ne!(a.seed, c.seed);
        // A different fleet seed reseeds every vehicle.
        let d = vehicle(43, 7, 1e-3, Some(100));
        assert_ne!(a.seed, d.seed);
    }

    #[test]
    fn fault_rate_jitter_stays_in_band() {
        for i in 0..500 {
            let v = vehicle(0xF00D, i, 1e-2, None);
            assert!(v.fault_rate >= 0.5e-2 && v.fault_rate < 1.5e-2, "{v:?}");
            assert!(!v.miscalibrated);
        }
        // Zero base rate derives zero everywhere.
        assert_eq!(vehicle(0xF00D, 3, 0.0, None).fault_rate, 0.0);
    }

    #[test]
    fn miscalibrated_units_claim_the_lean_cohort() {
        // 1/1 plants every unit.
        for i in 0..16 {
            let v = vehicle(1, i, 0.0, Some(1));
            assert!(v.miscalibrated);
            assert_eq!(v.cohort, cohort::LEAN);
        }
        // Plant rate 1/n draws roughly 1/n of units (loose band; the
        // draw is pinned exactly by the fleet determinism suite).
        let planted = (0..4000)
            .filter(|&i| vehicle(2, i, 0.0, Some(16)).miscalibrated)
            .count();
        assert!((100..500).contains(&planted), "{planted}");
    }

    #[test]
    fn cohorts_cover_the_table() {
        let mut seen = vec![0u64; cohort::COHORTS.len()];
        for i in 0..2000 {
            seen[vehicle(3, i, 0.0, None).cohort] += 1;
        }
        assert!(seen.iter().all(|&n| n > 0), "{seen:?}");
    }
}
