//! Streaming fleet aggregates.
//!
//! A fleet run never retains per-session data: each finished session is
//! folded into its cohort's [`CohortAggregate`] (plain counter sums plus
//! [`Histogram::merge`] folds) and dropped. Shards fold their sessions
//! locally; the report fold merges the shard aggregates in shard order,
//! which is associative bucket arithmetic — the reason the final report
//! is byte-identical at any `--jobs`.
//!
//! The hot-block aggregate is the one bounded (top-K) fold: each session
//! contributes its hottest blocks, the cohort keeps at most
//! [`HOT_BLOCK_CAP`] entries, and over-cap entries are evicted smallest
//! weight first with a key-order tiebreak. Eviction is not associative
//! in general, but the shard decomposition is fixed by `shard_size`
//! (never by the worker count) and shards are folded in shard order, so
//! the surviving set is still byte-identical at any `--jobs`. Within a
//! cohort every healthy session replays the same image, so in practice
//! the fold sums identical block sets and stays exact.

use std::collections::BTreeMap;

use audo_obs::profile::{BlockCounts, BlockKey};
use audo_obs::Histogram;

use crate::session::SessionSample;

/// Most hot blocks a cohort aggregate retains ([`CohortAggregate::hot_blocks`]).
pub const HOT_BLOCK_CAP: usize = 16;

/// Rate statistics of one cohort, folded over all its sessions.
#[derive(Debug, Clone, Default)]
pub struct CohortAggregate {
    /// Sessions folded in.
    pub sessions: u64,
    /// Sessions vetoed by the divergence check.
    pub vetoed: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total retired TriCore instructions.
    pub instructions: u64,
    /// Trace bytes the MCDS produced.
    pub trace_produced: u64,
    /// Trace bytes lost to EMEM overflow.
    pub trace_lost: u64,
    /// Tool-link retransmissions.
    pub link_retries: u64,
    /// Tool-link response timeouts.
    pub link_timeouts: u64,
    /// Sessions whose trace drain ended truncated.
    pub link_truncated: u64,
    /// Per-session simulated cycle cost.
    pub session_cycles: Histogram,
    /// DAP transaction latency (cycles), merged from every session's
    /// tool-link histogram.
    pub dap_transaction_cycles: Histogram,
    /// MCDS encoded message sizes (bytes), merged from every session.
    pub mcds_message_bytes: Histogram,
    /// Fleet-wide hottest blocks of this cohort: per-session top blocks
    /// summed, capped at [`HOT_BLOCK_CAP`] with deterministic eviction.
    pub hot_blocks: BTreeMap<BlockKey, BlockCounts>,
}

impl CohortAggregate {
    /// Folds one finished session in.
    pub fn fold_session(&mut self, s: &SessionSample) {
        self.sessions += 1;
        if s.vetoed {
            self.vetoed += 1;
        }
        self.cycles += s.cycles;
        self.instructions += s.instructions;
        self.trace_produced += s.trace_produced;
        self.trace_lost += s.trace_lost;
        self.link_retries += s.link_retries;
        self.link_timeouts += s.link_timeouts;
        self.link_truncated += u64::from(s.link_truncated);
        self.session_cycles.record(s.cycles);
        self.dap_transaction_cycles.merge(&s.dap_transaction_cycles);
        self.mcds_message_bytes.merge(&s.mcds_message_bytes);
        for (key, counts) in &s.hot_blocks {
            self.hot_blocks.entry(*key).or_default().merge(counts);
        }
        self.evict_hot_blocks();
    }

    /// Folds another aggregate (a shard's view of the same cohort) in.
    pub fn merge(&mut self, other: &CohortAggregate) {
        self.sessions += other.sessions;
        self.vetoed += other.vetoed;
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.trace_produced += other.trace_produced;
        self.trace_lost += other.trace_lost;
        self.link_retries += other.link_retries;
        self.link_timeouts += other.link_timeouts;
        self.link_truncated += other.link_truncated;
        self.session_cycles.merge(&other.session_cycles);
        self.dap_transaction_cycles
            .merge(&other.dap_transaction_cycles);
        self.mcds_message_bytes.merge(&other.mcds_message_bytes);
        for (key, counts) in &other.hot_blocks {
            self.hot_blocks.entry(*key).or_default().merge(counts);
        }
        self.evict_hot_blocks();
    }

    /// Trims the hot-block set to [`HOT_BLOCK_CAP`]: the entry with the
    /// smallest [`BlockCounts::weight`] goes first, ties broken toward
    /// the smaller key — a pure function of the map contents.
    fn evict_hot_blocks(&mut self) {
        while self.hot_blocks.len() > HOT_BLOCK_CAP {
            let victim = self
                .hot_blocks
                .iter()
                .min_by_key(|(key, c)| (c.weight(), **key))
                .map(|(key, _)| *key)
                .expect("map is over cap, therefore non-empty");
            self.hot_blocks.remove(&victim);
        }
    }

    /// The `n` hottest blocks, descending by weight with a key tiebreak
    /// (the same ordering every profile renderer uses).
    #[must_use]
    pub fn top_hot_blocks(&self, n: usize) -> Vec<(&BlockKey, &BlockCounts)> {
        let mut rows: Vec<(&BlockKey, &BlockCounts)> = self.hot_blocks.iter().collect();
        rows.sort_by(|a, b| b.1.weight().cmp(&a.1.weight()).then(a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }

    /// Mean IPC over the cohort (total instructions / total cycles).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            // reason: tallies far below 2^53, f64 division is exact enough.
            #[allow(clippy::cast_precision_loss)]
            {
                self.instructions as f64 / self.cycles as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionSample;

    fn block(offset: u32, cycles: u64) -> (BlockKey, BlockCounts) {
        (
            BlockKey {
                region: 0x8000_0000,
                offset,
                generation: 1,
            },
            BlockCounts {
                executions: cycles / 10,
                instructions: cycles / 2,
                span: 8,
                retire_cycles: cycles,
                stall_cycles: [0; audo_common::events::StallReason::COUNT],
            },
        )
    }

    fn sample(cycles: u64, vetoed: bool) -> SessionSample {
        let mut dap = Histogram::default();
        dap.record(cycles / 100);
        SessionSample {
            cycles,
            instructions: cycles / 2,
            trace_produced: 64,
            trace_lost: 0,
            link_retries: 1,
            link_timeouts: 0,
            link_truncated: false,
            dap_transaction_cycles: dap,
            mcds_message_bytes: Histogram::default(),
            vetoed,
            veto_rows: Vec::new(),
            // Every cohort session replays the same image, so samples
            // share block identities — the production shape.
            hot_blocks: vec![block(0x24, cycles), block(0x80, cycles / 4)],
        }
    }

    #[test]
    fn shard_fold_equals_serial_fold() {
        // Folding sessions 0..6 serially must equal folding two shard
        // aggregates (0..3, 3..6) — the determinism contract in miniature.
        let samples: Vec<SessionSample> = (1..=6).map(|i| sample(i * 1000, i == 4)).collect();
        let mut serial = CohortAggregate::default();
        for s in &samples {
            serial.fold_session(s);
        }
        let mut a = CohortAggregate::default();
        let mut b = CohortAggregate::default();
        for s in &samples[..3] {
            a.fold_session(s);
        }
        for s in &samples[3..] {
            b.fold_session(s);
        }
        a.merge(&b);
        assert_eq!(a.sessions, serial.sessions);
        assert_eq!(a.vetoed, serial.vetoed);
        assert_eq!(a.cycles, serial.cycles);
        assert_eq!(a.session_cycles, serial.session_cycles);
        assert_eq!(a.dap_transaction_cycles, serial.dap_transaction_cycles);
        assert_eq!(a.hot_blocks, serial.hot_blocks);
        assert!((a.ipc() - serial.ipc()).abs() < 1e-12);
    }

    #[test]
    fn hot_block_cap_evicts_smallest_weight_first() {
        let mut agg = CohortAggregate::default();
        let mut s = sample(1_000, false);
        // HOT_BLOCK_CAP + 4 distinct blocks with strictly rising weight:
        // the four lightest must be the ones evicted.
        s.hot_blocks = (0..HOT_BLOCK_CAP as u32 + 4)
            .map(|i| block(i * 0x10, u64::from(i + 1) * 100))
            .collect();
        agg.fold_session(&s);
        assert_eq!(agg.hot_blocks.len(), HOT_BLOCK_CAP);
        for i in 0..4u32 {
            let (light, _) = block(i * 0x10, 0);
            assert!(!agg.hot_blocks.contains_key(&light), "offset {i} survived");
        }
        // The top listing ranks by weight, descending.
        let top = agg.top_hot_blocks(3);
        assert_eq!(top[0].0.offset, (HOT_BLOCK_CAP as u32 + 3) * 0x10);
        assert!(top[0].1.weight() > top[2].1.weight());
    }

    #[test]
    fn empty_aggregate_is_all_zero() {
        let agg = CohortAggregate::default();
        assert_eq!(agg.ipc(), 0.0);
        assert_eq!(agg.session_cycles.percentile(50.0), 0);
    }
}
