//! Streaming fleet aggregates.
//!
//! A fleet run never retains per-session data: each finished session is
//! folded into its cohort's [`CohortAggregate`] (plain counter sums plus
//! [`Histogram::merge`] folds) and dropped. Shards fold their sessions
//! locally; the report fold merges the shard aggregates in shard order,
//! which is associative bucket arithmetic — the reason the final report
//! is byte-identical at any `--jobs`.

use audo_obs::Histogram;

use crate::session::SessionSample;

/// Rate statistics of one cohort, folded over all its sessions.
#[derive(Debug, Clone, Default)]
pub struct CohortAggregate {
    /// Sessions folded in.
    pub sessions: u64,
    /// Sessions vetoed by the divergence check.
    pub vetoed: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total retired TriCore instructions.
    pub instructions: u64,
    /// Trace bytes the MCDS produced.
    pub trace_produced: u64,
    /// Trace bytes lost to EMEM overflow.
    pub trace_lost: u64,
    /// Tool-link retransmissions.
    pub link_retries: u64,
    /// Tool-link response timeouts.
    pub link_timeouts: u64,
    /// Sessions whose trace drain ended truncated.
    pub link_truncated: u64,
    /// Per-session simulated cycle cost.
    pub session_cycles: Histogram,
    /// DAP transaction latency (cycles), merged from every session's
    /// tool-link histogram.
    pub dap_transaction_cycles: Histogram,
    /// MCDS encoded message sizes (bytes), merged from every session.
    pub mcds_message_bytes: Histogram,
}

impl CohortAggregate {
    /// Folds one finished session in.
    pub fn fold_session(&mut self, s: &SessionSample) {
        self.sessions += 1;
        if s.vetoed {
            self.vetoed += 1;
        }
        self.cycles += s.cycles;
        self.instructions += s.instructions;
        self.trace_produced += s.trace_produced;
        self.trace_lost += s.trace_lost;
        self.link_retries += s.link_retries;
        self.link_timeouts += s.link_timeouts;
        self.link_truncated += u64::from(s.link_truncated);
        self.session_cycles.record(s.cycles);
        self.dap_transaction_cycles.merge(&s.dap_transaction_cycles);
        self.mcds_message_bytes.merge(&s.mcds_message_bytes);
    }

    /// Folds another aggregate (a shard's view of the same cohort) in.
    pub fn merge(&mut self, other: &CohortAggregate) {
        self.sessions += other.sessions;
        self.vetoed += other.vetoed;
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.trace_produced += other.trace_produced;
        self.trace_lost += other.trace_lost;
        self.link_retries += other.link_retries;
        self.link_timeouts += other.link_timeouts;
        self.link_truncated += other.link_truncated;
        self.session_cycles.merge(&other.session_cycles);
        self.dap_transaction_cycles
            .merge(&other.dap_transaction_cycles);
        self.mcds_message_bytes.merge(&other.mcds_message_bytes);
    }

    /// Mean IPC over the cohort (total instructions / total cycles).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            // reason: tallies far below 2^53, f64 division is exact enough.
            #[allow(clippy::cast_precision_loss)]
            {
                self.instructions as f64 / self.cycles as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionSample;

    fn sample(cycles: u64, vetoed: bool) -> SessionSample {
        let mut dap = Histogram::default();
        dap.record(cycles / 100);
        SessionSample {
            cycles,
            instructions: cycles / 2,
            trace_produced: 64,
            trace_lost: 0,
            link_retries: 1,
            link_timeouts: 0,
            link_truncated: false,
            dap_transaction_cycles: dap,
            mcds_message_bytes: Histogram::default(),
            vetoed,
            veto_rows: Vec::new(),
        }
    }

    #[test]
    fn shard_fold_equals_serial_fold() {
        // Folding sessions 0..6 serially must equal folding two shard
        // aggregates (0..3, 3..6) — the determinism contract in miniature.
        let samples: Vec<SessionSample> = (1..=6).map(|i| sample(i * 1000, i == 4)).collect();
        let mut serial = CohortAggregate::default();
        for s in &samples {
            serial.fold_session(s);
        }
        let mut a = CohortAggregate::default();
        let mut b = CohortAggregate::default();
        for s in &samples[..3] {
            a.fold_session(s);
        }
        for s in &samples[3..] {
            b.fold_session(s);
        }
        a.merge(&b);
        assert_eq!(a.sessions, serial.sessions);
        assert_eq!(a.vetoed, serial.vetoed);
        assert_eq!(a.cycles, serial.cycles);
        assert_eq!(a.session_cycles, serial.session_cycles);
        assert_eq!(a.dap_transaction_cycles, serial.dap_transaction_cycles);
        assert!((a.ipc() - serial.ipc()).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_is_all_zero() {
        let agg = CohortAggregate::default();
        assert_eq!(agg.ipc(), 0.0);
        assert_eq!(agg.session_cycles.percentile(50.0), 0);
    }
}
