//! The calibration cohorts: prebuilt workload images, SoC configurations
//! and static rate envelopes shared by every session of a cohort.
//!
//! Building a workload (assembling its image) and analyzing it (CFG
//! recovery, constant propagation, static rate bounds) are per-*cohort*
//! costs, not per-*session* costs: a fleet run builds each cohort's
//! artifacts exactly once and every session replays the prebuilt image
//! on a fresh SoC — the "batched replay" that makes thousands of
//! sessions per invocation affordable.

use audo_analyze::{analyze, predict::Prediction, MasterRanges};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::{variants, Workload};

/// Static description of one cohort.
#[derive(Debug, Clone, Copy)]
pub struct CohortSpec {
    /// Stable cohort name (report key).
    pub name: &'static str,
    /// Platform derivative the cohort ships on.
    pub config: &'static str,
    /// Selection weight (out of the table's total) for the cohort draw.
    pub weight: u64,
    /// One-line description.
    pub description: &'static str,
}

/// The fleet's cohort table, in stable report order.
///
/// Weights model a production mix: most units run the stock engine
/// calibration; the optimized overlays, the transmission flavour and the
/// chassis flavour each take a smaller share.
pub const COHORTS: &[CohortSpec] = &[
    CohortSpec {
        name: "engine-stock",
        config: "tc1797",
        weight: 4,
        description: "stock engine calibration, flash-resident tables",
    },
    CohortSpec {
        name: "engine-dspr",
        config: "tc1797",
        weight: 2,
        description: "engine with lookup tables copied to the DSPR",
    },
    CohortSpec {
        name: "engine-pspr",
        config: "tc1797",
        weight: 2,
        description: "engine with ISRs in the program scratchpad",
    },
    CohortSpec {
        name: "engine-pcp",
        config: "tc1797",
        weight: 2,
        description: "engine with CAN handling offloaded to the PCP",
    },
    CohortSpec {
        name: "engine-lean",
        config: "tc1767",
        weight: 2,
        description: "scratchpad-resident lean calibration on the small derivative",
    },
    CohortSpec {
        name: "transmission",
        config: "tc1797",
        weight: 2,
        description: "transmission control: timer-driven shift decisions",
    },
    CohortSpec {
        name: "chassis",
        config: "tc1767",
        weight: 2,
        description: "chassis monitor: high interrupt rate, tiny handlers",
    },
];

/// Index of the lean scratchpad-resident cohort — the calibration a
/// miscalibrated unit *claims* (its envelope is flash-light, so the
/// flash-heavy rogue build it actually runs cannot satisfy it).
pub const LEAN: usize = 4;

/// Maps a cohort draw onto a cohort index by cumulative weight.
#[must_use]
pub fn pick(draw: u64) -> usize {
    let total: u64 = COHORTS.iter().map(|c| c.weight).sum();
    let mut ticket = draw % total;
    for (i, c) in COHORTS.iter().enumerate() {
        if ticket < c.weight {
            return i;
        }
        ticket -= c.weight;
    }
    unreachable!("ticket < total by construction")
}

/// Everything a session needs from its cohort, built once per fleet run.
pub struct CohortArtifacts {
    /// The cohort's static description.
    pub spec: &'static CohortSpec,
    /// Prebuilt workload (image + peripheral setup + optional PCP
    /// firmware), replayed by every session of the cohort.
    pub workload: Workload,
    /// Platform derivative configuration.
    pub config: SocConfig,
    /// Static rate envelope of the cohort's image — what every session's
    /// measured snapshot is checked against.
    pub envelope: Prediction,
    /// Cycle budget for one session (the workload halts well before).
    pub budget: u64,
}

/// Fleet-sized engine parameters: the same program structure as the
/// full-length engine workload, shortened (fewer crank teeth and
/// background passes at higher RPM) so one session costs on the order of
/// 10^5 simulated cycles instead of 10^6. The steady-state *rates* the
/// veto checks are unchanged — only the observation window shrinks.
#[must_use]
fn fleet_engine_params() -> EngineParams {
    EngineParams {
        rpm: 6000,
        target_teeth: 4,
        target_bg_passes: 6,
        ..EngineParams::default()
    }
}

/// Builds the named cohort's workload.
fn build_workload(name: &str) -> Workload {
    let engine = |f: fn(&mut EngineParams)| {
        let mut p = fleet_engine_params();
        f(&mut p);
        engine_control(&p)
    };
    match name {
        "engine-stock" => engine(|_| {}),
        "engine-dspr" => engine(|p| p.tables_in_dspr = true),
        "engine-pspr" => engine(|p| p.isrs_in_pspr = true),
        "engine-pcp" => engine(|p| p.can_on_pcp = true),
        "engine-lean" => engine(|p| {
            p.tables_in_dspr = true;
            p.bg_in_dspr = true;
        }),
        "transmission" => variants::transmission_control(3),
        "chassis" => variants::chassis_monitor(16, 2_000),
        other => unreachable!("unknown cohort {other}"),
    }
}

fn build_config(name: &str) -> SocConfig {
    match name {
        "tc1797" => SocConfig::tc1797(),
        "tc1767" => SocConfig::tc1767(),
        other => unreachable!("unknown config {other}"),
    }
}

/// Derives the static envelope of a workload exactly the way the
/// `analyze` CLI does: install into a fresh SoC (so DMA programming from
/// the setup hook is visible), derive the concurrent-master ranges, and
/// run the full static analysis.
fn envelope_of(w: &Workload, cfg: &SocConfig) -> Prediction {
    let mut soc = Soc::new(cfg.clone());
    w.install(&mut soc)
        .expect("cohort workload installs on its own derivative");
    let pcp = w.pcp().map(|p| {
        let entries: Vec<u16> = p.channels.iter().map(|&(_, e)| e).collect();
        (p.words.clone(), p.base, entries)
    });
    let masters = match &pcp {
        Some((words, base, entries)) => MasterRanges::derive(
            &soc.fabric.dma,
            Some((words.as_slice(), *base, entries.as_slice())),
        ),
        None => MasterRanges::derive(&soc.fabric.dma, None),
    };
    analyze(&w.image, cfg, &masters, &w.name).prediction
}

/// Builds every cohort's artifacts (in [`COHORTS`] order).
#[must_use]
pub fn build_artifacts() -> Vec<CohortArtifacts> {
    COHORTS
        .iter()
        .map(|spec| {
            let workload = build_workload(spec.name);
            let config = build_config(spec.config);
            let envelope = envelope_of(&workload, &config);
            let budget = workload.max_cycles;
            CohortArtifacts {
                spec,
                workload,
                config,
                envelope,
                budget,
            }
        })
        .collect()
}

/// Builds the rogue build a miscalibrated unit actually runs: the
/// flash-heavy stock engine image on the lean cohort's (small)
/// derivative. Its steady-state flash data rate is an order of magnitude
/// above the lean envelope's bound, so [`audo_analyze::predict::check`]
/// flags it from the measured counters alone.
#[must_use]
pub fn build_rogue() -> Workload {
    build_workload("engine-stock")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_respects_cumulative_weights() {
        let total: u64 = COHORTS.iter().map(|c| c.weight).sum();
        assert_eq!(pick(0), 0);
        assert_eq!(pick(total - 1), COHORTS.len() - 1);
        assert_eq!(pick(total), 0, "wraps by modulo");
        // Exact draw counts over one full period match the weights.
        let mut counts = vec![0u64; COHORTS.len()];
        for draw in 0..total {
            counts[pick(draw)] += 1;
        }
        let weights: Vec<u64> = COHORTS.iter().map(|c| c.weight).collect();
        assert_eq!(counts, weights);
    }

    #[test]
    fn lean_cohort_is_the_scratchpad_resident_one() {
        assert_eq!(COHORTS[LEAN].name, "engine-lean");
        assert_eq!(COHORTS[LEAN].config, "tc1767");
    }

    #[test]
    fn rogue_flash_rate_breaks_the_lean_envelope() {
        // The structural guarantee the planted-unit detection rests on:
        // the stock build's *static* flash rate already exceeds the lean
        // envelope's measured-rate ceiling.
        let lean_w = build_workload("engine-lean");
        let cfg = build_config("tc1767");
        let lean = envelope_of(&lean_w, &cfg);
        let rogue = envelope_of(&build_rogue(), &cfg);
        assert!(
            rogue.flash_per_100 > lean.flash_per_100 * 2.0 + 0.5,
            "rogue {:.2} vs lean ceiling {:.2}",
            rogue.flash_per_100,
            lean.flash_per_100 * 2.0 + 0.5
        );
    }
}
