//! Deterministic fleet report rendering.
//!
//! Both renderers consume only folded state ([`crate::FleetReport`]):
//! counters, merged histograms, derived seeds and simulated shard
//! cycles. No wall-clock quantity ever enters — the same run options
//! produce byte-identical output at any worker count, which is what the
//! `fleet_check` CI gate diffs.

use std::fmt::Write as _;

use audo_common::events::StallReason;
use audo_obs::profile::{BlockCounts, BlockKey};
use audo_obs::Histogram;

use crate::{FleetReport, VetoRecord};

/// Hot-block rows each renderer shows per cohort (the aggregate itself
/// tracks up to [`crate::aggregate::HOT_BLOCK_CAP`]).
const HOT_BLOCK_ROWS: usize = 4;

fn dominant_stall_key(c: &BlockCounts) -> &'static str {
    c.dominant_stall().map_or("-", StallReason::key)
}

fn json_hot_block(key: &BlockKey, c: &BlockCounts) -> String {
    format!(
        "{{\"addr\":\"{:#010x}\",\"generation\":{},\"executions\":{},\
         \"instructions\":{},\"cycles\":{},\"dominant_stall\":\"{}\"}}",
        key.addr(),
        key.generation,
        c.executions,
        c.instructions,
        c.cycles(),
        dominant_stall_key(c)
    )
}

/// Renders an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot carry).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_hist(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count(),
        h.percentile(50.0),
        h.percentile(90.0),
        h.percentile(99.0)
    )
}

fn json_veto(v: &VetoRecord) -> String {
    let codes: Vec<String> = v.rows.iter().map(|r| format!("\"{}\"", r.code)).collect();
    let rows: Vec<String> = v
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"rate\":\"{}\",\"code\":\"{}\",\"measured\":{},\"lo\":{},\"hi\":{}}}",
                r.rate,
                r.code,
                json_f64(r.measured),
                json_f64(r.lo),
                json_f64(r.hi)
            )
        })
        .collect();
    format!(
        "{{\"index\":{},\"seed\":\"{:#018x}\",\"cohort\":\"{}\",\"codes\":[{}],\"rows\":[{}]}}",
        v.index,
        v.seed,
        crate::cohort::COHORTS[v.cohort].name,
        codes.join(","),
        rows.join(",")
    )
}

/// Renders the machine-readable JSON report.
#[must_use]
pub fn render_json(r: &FleetReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"fleet_seed\": \"{:#018x}\",", r.opts.seed);
    let _ = writeln!(s, "  \"sessions\": {},", r.opts.sessions);
    let _ = writeln!(s, "  \"base_fault_rate\": {},", json_f64(r.opts.fault_rate));
    let _ = writeln!(
        s,
        "  \"miscalibrate\": {},",
        r.opts
            .miscalibrate
            .map_or("null".to_string(), |n| format!("\"1/{n}\""))
    );
    let _ = writeln!(s, "  \"shard_size\": {},", r.opts.shard_size);
    let _ = writeln!(s, "  \"planted\": {},", r.planted);
    let _ = writeln!(s, "  \"vetoed\": {},", r.vetoes.len());
    let _ = writeln!(s, "  \"total_cycles\": {},", r.total_cycles());
    s.push_str("  \"cohorts\": [\n");
    for (i, (spec, agg)) in crate::cohort::COHORTS.iter().zip(&r.cohorts).enumerate() {
        let _ = write!(
            s,
            "    {{\"name\":\"{}\",\"config\":\"{}\",\"sessions\":{},\"vetoed\":{},\
             \"cycles\":{},\"instructions\":{},\"ipc\":{},\
             \"trace_produced\":{},\"trace_lost\":{},\
             \"link_retries\":{},\"link_timeouts\":{},\"link_truncated\":{},\
             \"session_cycles\":{},\"dap_transaction_cycles\":{},\"mcds_message_bytes\":{},\
             \"hot_blocks\":[{}]}}",
            spec.name,
            spec.config,
            agg.sessions,
            agg.vetoed,
            agg.cycles,
            agg.instructions,
            json_f64(agg.ipc()),
            agg.trace_produced,
            agg.trace_lost,
            agg.link_retries,
            agg.link_timeouts,
            agg.link_truncated,
            json_hist(&agg.session_cycles),
            json_hist(&agg.dap_transaction_cycles),
            json_hist(&agg.mcds_message_bytes),
            agg.top_hot_blocks(HOT_BLOCK_ROWS)
                .iter()
                .map(|(k, c)| json_hot_block(k, c))
                .collect::<Vec<String>>()
                .join(",")
        );
        s.push_str(if i + 1 < r.cohorts.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"vetoes\": [\n");
    for (i, v) in r.vetoes.iter().enumerate() {
        let _ = write!(s, "    {}", json_veto(v));
        s.push_str(if i + 1 < r.vetoes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let virtual_cycles: u64 = r.shard_cycles.iter().sum();
    let shard_list: Vec<String> = r.shard_cycles.iter().map(u64::to_string).collect();
    let _ = writeln!(
        s,
        "  \"schedule\": {{\"shards\":{},\"virtual_cycles\":{},\"queue_wait_cycles\":{},\"shard_cycles\":[{}]}}",
        r.shard_cycles.len(),
        virtual_cycles,
        json_hist(&r.queue_wait_hist()),
        shard_list.join(",")
    );
    s.push_str("}\n");
    s
}

/// Renders the human-readable report.
#[must_use]
pub fn render_text(r: &FleetReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "fleet report");
    let _ = writeln!(s, "============");
    let _ = writeln!(
        s,
        "seed {:#018x}  sessions {}  fault-rate {}  miscalibrate {}",
        r.opts.seed,
        r.opts.sessions,
        r.opts.fault_rate,
        r.opts
            .miscalibrate
            .map_or("off".to_string(), |n| format!("1/{n}"))
    );
    let _ = writeln!(
        s,
        "total cycles {}  shards {} (shard size {})",
        r.total_cycles(),
        r.shard_cycles.len(),
        r.opts.shard_size
    );
    s.push('\n');
    let _ = writeln!(
        s,
        "{:<14} {:>8} {:>6} {:>14} {:>6} {:>9} {:>8} {:>8}",
        "cohort", "sessions", "vetoed", "cycles", "ipc", "trace(B)", "cyc p50", "cyc p99"
    );
    for (spec, agg) in crate::cohort::COHORTS.iter().zip(&r.cohorts) {
        let _ = writeln!(
            s,
            "{:<14} {:>8} {:>6} {:>14} {:>6.3} {:>9} {:>8} {:>8}",
            spec.name,
            agg.sessions,
            agg.vetoed,
            agg.cycles,
            agg.ipc(),
            agg.trace_produced,
            agg.session_cycles.percentile(50.0),
            agg.session_cycles.percentile(99.0)
        );
    }
    s.push('\n');
    let any_hot = r.cohorts.iter().any(|c| !c.hot_blocks.is_empty());
    if any_hot {
        let _ = writeln!(
            s,
            "fleet hot blocks (per cohort, top {HOT_BLOCK_ROWS} by attributed weight)"
        );
        for (spec, agg) in crate::cohort::COHORTS.iter().zip(&r.cohorts) {
            for (key, c) in agg.top_hot_blocks(HOT_BLOCK_ROWS) {
                let _ = writeln!(
                    s,
                    "  {:<14} {:#010x} gen {:>4}  exec {:>10} instrs {:>10} cycles {:>10}  {}",
                    spec.name,
                    key.addr(),
                    key.generation,
                    c.executions,
                    c.instructions,
                    c.cycles(),
                    dominant_stall_key(c)
                );
            }
        }
        s.push('\n');
    }
    if r.vetoes.is_empty() {
        let _ = writeln!(
            s,
            "divergence veto: clean ({} sessions)",
            r.total_sessions()
        );
    } else {
        let _ = writeln!(
            s,
            "divergence veto: {} unit(s) flagged (planted {})",
            r.vetoes.len(),
            r.planted
        );
        for v in &r.vetoes {
            let _ = writeln!(
                s,
                "  unit #{:<6} seed {:#018x}  cohort {}",
                v.index,
                v.seed,
                crate::cohort::COHORTS[v.cohort].name
            );
            for row in &v.rows {
                let _ = writeln!(
                    s,
                    "    {:<18} {} measured {:.4} outside [{:.4}, {:.4}]",
                    row.code, row.rate, row.measured, row.lo, row.hi
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::VetoRow;
    use crate::{aggregate::CohortAggregate, FleetOptions};

    fn tiny_report() -> FleetReport {
        let mut cohorts = vec![CohortAggregate::default(); crate::cohort::COHORTS.len()];
        cohorts[0].sessions = 2;
        cohorts[0].cycles = 200_000;
        cohorts[0].instructions = 120_000;
        cohorts[0].session_cycles.record(100_000);
        cohorts[0].session_cycles.record(100_000);
        cohorts[0].hot_blocks.insert(
            BlockKey {
                region: 0x8000_0000,
                offset: 0x24,
                generation: 3,
            },
            BlockCounts {
                executions: 500,
                instructions: 2_000,
                span: 12,
                retire_cycles: 2_000,
                stall_cycles: {
                    let mut s = [0; StallReason::COUNT];
                    s[StallReason::Fetch.index()] = 900;
                    s
                },
            },
        );
        FleetReport {
            opts: FleetOptions::default(),
            planted: 1,
            cohorts,
            vetoes: vec![VetoRecord {
                index: 7,
                seed: 0xDEAD_BEEF,
                cohort: crate::cohort::LEAN,
                rows: vec![VetoRow {
                    rate: "flash_per_100_instrs",
                    code: "FLEET-FLASH-RATE",
                    measured: 24.5,
                    lo: 0.0,
                    hi: 2.8,
                }],
            }],
            shard_cycles: vec![100_000, 100_000],
        }
    }

    #[test]
    fn json_is_stable_and_carries_the_veto() {
        let r = tiny_report();
        let a = render_json(&r);
        assert_eq!(a, render_json(&r), "rendering is pure");
        assert!(a.contains("\"seed\":\"0x00000000deadbeef\""), "{a}");
        assert!(a.contains("FLEET-FLASH-RATE"), "{a}");
        assert!(a.contains("\"cohort\":\"engine-lean\""), "{a}");
        assert!(a.contains("\"planted\": 1"), "{a}");
        assert!(
            a.contains(
                "\"hot_blocks\":[{\"addr\":\"0x80000024\",\"generation\":3,\
                 \"executions\":500,\"instructions\":2000,\"cycles\":2900,\
                 \"dominant_stall\":\"fetch\"}]"
            ),
            "{a}"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }

    #[test]
    fn text_report_names_the_vetoed_unit() {
        let t = render_text(&tiny_report());
        assert!(t.contains("unit #7"), "{t}");
        assert!(t.contains("engine-lean"), "{t}");
        assert!(t.contains("FLEET-FLASH-RATE"), "{t}");
        assert!(t.contains("fleet hot blocks"), "{t}");
        assert!(t.contains("0x80000024 gen    3"), "{t}");
    }
}
