//! One fleet session: replay a prebuilt cohort image on a fresh
//! Emulation Device, drain the trace through the framed tool link at the
//! unit's derived fault rate, and check the measured counters against
//! the cohort's static envelope.

use audo_analyze::predict::{self, CheckRow};
use audo_common::SimError;
use audo_dap::FaultConfig;
use audo_ed::{EdConfig, EmulationDevice};
use audo_obs::profile::{BlockCounts, BlockKey};
use audo_obs::Histogram;
use audo_profiler::session::{profile, DrainPolicy, SessionOptions, ToolLinkOptions};
use audo_profiler::spec::ProfileSpec;
use audo_profiler::Metric;

use crate::cohort::CohortArtifacts;
use crate::derive::VehicleSpec;
use crate::FleetOptions;

/// Stable veto finding codes, one per checked rate.
#[must_use]
pub fn veto_code(rate: &str) -> &'static str {
    match rate {
        "ipc" => "FLEET-IPC-RANGE",
        "flash_per_100_instrs" => "FLEET-FLASH-RATE",
        "csa_depth" => "FLEET-CSA-DEPTH",
        "wcet_block_cycles" => "FLEET-WCET-BLOCK",
        _ => "FLEET-RATE",
    }
}

/// One divergence-table row of a vetoed session (a serializable
/// reduction of [`CheckRow`]).
#[derive(Debug, Clone)]
pub struct VetoRow {
    /// Rate name (`ipc`, `flash_per_100_instrs`, …).
    pub rate: &'static str,
    /// Stable finding code.
    pub code: &'static str,
    /// Measured value.
    pub measured: f64,
    /// Inclusive static lower bound.
    pub lo: f64,
    /// Inclusive static upper bound.
    pub hi: f64,
}

/// Hottest blocks each session contributes to its cohort's fleet-wide
/// hot-block aggregate. Small on purpose: the fleet never retains a full
/// per-session profile, only this bounded summary.
pub const HOT_BLOCKS_PER_SESSION: usize = 8;

/// What one session contributes to the fleet aggregates.
#[derive(Debug, Clone)]
pub struct SessionSample {
    /// Simulated cycles the session ran.
    pub cycles: u64,
    /// Retired TriCore instructions.
    pub instructions: u64,
    /// Trace bytes the MCDS produced.
    pub trace_produced: u64,
    /// Trace bytes lost to EMEM overflow.
    pub trace_lost: u64,
    /// Tool-link retransmissions.
    pub link_retries: u64,
    /// Tool-link response timeouts.
    pub link_timeouts: u64,
    /// The trace drain ended truncated.
    pub link_truncated: bool,
    /// DAP transaction latency histogram (cycles).
    pub dap_transaction_cycles: Histogram,
    /// MCDS encoded message size histogram (bytes).
    pub mcds_message_bytes: Histogram,
    /// The measured snapshot diverged from the cohort envelope.
    pub vetoed: bool,
    /// The diverged rates (empty unless vetoed).
    pub veto_rows: Vec<VetoRow>,
    /// This session's hottest blocks (top [`HOT_BLOCKS_PER_SESSION`] by
    /// attributed weight), in descending-weight order.
    pub hot_blocks: Vec<(BlockKey, BlockCounts)>,
}

/// Runs session `spec` against its cohort artifacts.
///
/// The veto reads the device-side counters (sampled from the SoC after
/// the run), not the drained trace, so an injected link fault can never
/// mask a miscalibrated unit — a noisy link shows up in the link stats,
/// a wrong calibration in the divergence rows.
///
/// # Errors
///
/// Propagates simulation errors (a session that fails to halt within its
/// cohort budget is a fleet-engine bug, surfaced with the unit's seed by
/// the caller).
pub fn run_session(
    art: &CohortArtifacts,
    rogue: &audo_workloads::Workload,
    spec: &VehicleSpec,
    opts: &FleetOptions,
) -> Result<SessionSample, SimError> {
    let workload = if spec.miscalibrated {
        rogue
    } else {
        &art.workload
    };
    let mut ed = EmulationDevice::new(art.config.clone(), EdConfig::default());
    workload.install_ed(&mut ed)?;
    ed.soc.tricore.set_profile_observation(true);

    let profile_spec = ProfileSpec::new()
        .metric(Metric::Ipc, opts.metric_window)
        .with_timestamp_shift(4);
    let faults = if spec.fault_rate > 0.0 {
        FaultConfig::uniform(spec.fault_rate, spec.seed)
    } else {
        FaultConfig::lossless()
    };
    let outcome = profile(
        &mut ed,
        &profile_spec,
        &SessionOptions {
            max_cycles: art.budget.max(rogue.max_cycles),
            drain: DrainPolicy::Session(ToolLinkOptions {
                faults,
                ..ToolLinkOptions::default()
            }),
            run_to_halt: true,
            observe: true,
        },
    )?;

    // The measured snapshot: every counter/gauge the run sampled, under
    // the same sanitised names a Prometheus export would use — the veto
    // sees exactly what `analyze --check-against` would see.
    let mut snapshot = std::collections::BTreeMap::new();
    for (name, v) in outcome.obs.counters() {
        // reason: counter tallies are far below 2^53; exact in f64.
        #[allow(clippy::cast_precision_loss)]
        snapshot.insert(audo_obs::metrics_text::sanitize(name), v as f64);
    }
    for (name, v) in outcome.obs.gauges() {
        snapshot.insert(audo_obs::metrics_text::sanitize(name), v);
    }
    let rows = predict::check(&art.envelope, &snapshot);
    let mut veto_rows: Vec<VetoRow> = rows
        .iter()
        .filter(|r| !r.ok())
        .map(|r: &CheckRow| VetoRow {
            rate: r.name,
            code: veto_code(r.name),
            measured: r.measured.unwrap_or(f64::NAN),
            lo: r.lo,
            hi: r.hi,
        })
        .collect();

    let hot_blocks = ed.soc.tricore.block_profile().map_or_else(Vec::new, |p| {
        p.top_blocks(HOT_BLOCKS_PER_SESSION)
            .into_iter()
            .map(|(k, c)| (*k, *c))
            .collect::<Vec<_>>()
    });
    // WCET envelope over the hot blocks: a carved block's cycles can
    // never exceed `(executions + 1 + interrupts) × block_cycles_ub`
    // under the static timing table (the +1 covers a final partial
    // entry, interrupts discard in-flight work already charged). A unit
    // above that line runs timing the cohort's image cannot produce.
    if art.envelope.block_cycles_ub > 0 {
        let irqs = ed.soc.irqs_taken;
        for (_, c) in &hot_blocks {
            let entries = c.executions + 1 + irqs;
            // reason: cycle tallies are far below 2^53; exact in f64.
            #[allow(clippy::cast_precision_loss)]
            let per_entry = c.cycles() as f64 / entries as f64;
            // reason: cycle tallies are far below 2^53; exact in f64.
            #[allow(clippy::cast_precision_loss)]
            let ub = art.envelope.block_cycles_ub as f64;
            if per_entry > ub {
                veto_rows.push(VetoRow {
                    rate: "wcet_block_cycles",
                    code: veto_code("wcet_block_cycles"),
                    measured: per_entry,
                    lo: 0.0,
                    hi: ub,
                });
                break;
            }
        }
    }

    let find_hist = |suffix: &str| {
        outcome
            .obs
            .histograms()
            .find(|(n, _)| n.ends_with(suffix))
            .map(|(_, h)| h.clone())
            .unwrap_or_default()
    };
    let (link_retries, link_timeouts, link_truncated) = outcome.tool.map_or((0, 0, false), |t| {
        (t.stats.retries, t.stats.timeouts, t.stats.trace_truncated)
    });
    Ok(SessionSample {
        cycles: outcome.cycles,
        instructions: outcome.obs.counter("soc.tricore.instructions_retired"),
        trace_produced: outcome.produced_bytes,
        trace_lost: outcome.lost_bytes,
        link_retries,
        link_timeouts,
        link_truncated,
        dap_transaction_cycles: find_hist("dap.transaction_cycles"),
        mcds_message_bytes: find_hist("mcds.message_bytes"),
        vetoed: !veto_rows.is_empty(),
        veto_rows,
        hot_blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn veto_codes_are_stable_per_rate() {
        assert_eq!(veto_code("ipc"), "FLEET-IPC-RANGE");
        assert_eq!(veto_code("flash_per_100_instrs"), "FLEET-FLASH-RATE");
        assert_eq!(veto_code("csa_depth"), "FLEET-CSA-DEPTH");
        assert_eq!(veto_code("wcet_block_cycles"), "FLEET-WCET-BLOCK");
        assert_eq!(veto_code("anything_else"), "FLEET-RATE");
    }
}
