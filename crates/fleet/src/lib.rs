//! Fleet-scale calibration service (`audo-fleet`).
//!
//! The paper profiles *one* ECU on *one* bench. The production framing
//! this workspace grows toward is millions of instrumented vehicles
//! phoning home with profiling and calibration data. This crate turns
//! the existing deterministic single-session machinery into that
//! many-unit aggregation layer: one invocation runs thousands of
//! profiling sessions, where each per-vehicle seed *derives* the unit's
//! workload variant (engine/transmission/chassis plus calibration
//! overlays), its SoC derivative, and its tool-link fault rate
//! ([`mod@derive`]); sessions replay prebuilt per-cohort images
//! ([`cohort`]), are folded into streaming per-cohort aggregates with
//! no per-session retention ([`aggregate`], via
//! [`audo_obs::Histogram::merge`]), and each session's measured
//! counters are checked against its cohort's static rate envelope from
//! `audo-analyze` — a deliberately miscalibrated 1-in-N unit surfaces
//! in the fleet report with its seed, cohort and finding codes
//! ([`session`], [`report`]).
//!
//! # The determinism contract
//!
//! Same `(seed, sessions)` ⇒ byte-identical report, at any worker
//! count. Everything a session does is seeded and simulated-cycle-timed;
//! shard boundaries depend only on the fixed shard size; the shard fold
//! is associative counter/bucket arithmetic applied in shard order.
//! Wall-clock throughput (sessions/sec) is deliberately *not* part of
//! the report — it travels on stderr and in `BENCH_fleet.json`.
//!
//! # Example
//!
//! ```
//! use audo_fleet::{fold, plan, FleetOptions};
//!
//! let plan = plan(FleetOptions {
//!     sessions: 4,
//!     seed: 0xF1EE7,
//!     ..FleetOptions::default()
//! });
//! let shards: Vec<_> = (0..plan.shard_count()).map(|s| plan.run_shard(s)).collect();
//! let report = fold(&plan, &shards).unwrap();
//! assert_eq!(report.total_sessions(), 4);
//! assert!(report.is_clean());
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod cohort;
pub mod derive;
pub mod report;
pub mod session;

use aggregate::CohortAggregate;
use cohort::CohortArtifacts;
use derive::VehicleSpec;
use session::VetoRow;

/// Fleet run options.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOptions {
    /// Number of profiling sessions (vehicles) to run.
    pub sessions: u64,
    /// Fleet master seed; every per-vehicle property derives from it.
    pub seed: u64,
    /// Base tool-link fault rate (per-mechanism probability); each unit
    /// applies its derived jitter in `[0.5, 1.5)`.
    pub fault_rate: f64,
    /// Plant a miscalibrated unit per `n` vehicles (`--miscalibrate 1/n`).
    pub miscalibrate: Option<u64>,
    /// Sessions per shard. Fixed independently of the worker count so
    /// the shard decomposition — and therefore the report — does not
    /// change with `--jobs`.
    pub shard_size: u64,
    /// MCDS rate-metric window (cycles) for the per-session IPC probe.
    pub metric_window: u32,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            sessions: 256,
            seed: 0xA0D0_CA11,
            fault_rate: 0.0,
            miscalibrate: None,
            shard_size: 32,
            metric_window: 2_000,
        }
    }
}

/// A prepared fleet run: per-cohort artifacts built once, sessions
/// derived on demand.
pub struct FleetPlan {
    /// The options the plan was built from.
    pub opts: FleetOptions,
    /// Prebuilt cohort artifacts, indexed like [`cohort::COHORTS`].
    pub cohorts: Vec<CohortArtifacts>,
    /// The rogue build a miscalibrated unit actually runs.
    pub rogue: audo_workloads::Workload,
}

/// Builds a fleet plan: cohort images assembled and statically analyzed
/// once, shared by every session ("batched replay").
#[must_use]
pub fn plan(opts: FleetOptions) -> FleetPlan {
    FleetPlan {
        cohorts: cohort::build_artifacts(),
        rogue: cohort::build_rogue(),
        opts,
    }
}

/// One vetoed unit in the fleet report: enough to chase the physical
/// unit (seed) and the failure mode (codes) without any session data.
#[derive(Debug, Clone)]
pub struct VetoRecord {
    /// Session index.
    pub index: u64,
    /// The unit's derived seed.
    pub seed: u64,
    /// Claimed cohort ([`cohort::COHORTS`] index).
    pub cohort: usize,
    /// The diverged rates with bounds and finding codes.
    pub rows: Vec<VetoRow>,
}

/// What one shard hands back to the fold.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Per-cohort aggregates over this shard's sessions.
    pub cohorts: Vec<CohortAggregate>,
    /// Vetoed units, in session order.
    pub vetoes: Vec<VetoRecord>,
    /// Total simulated cycles this shard executed (the scheduler's
    /// virtual replay cost of the shard).
    pub cycles: u64,
    /// First session failure, if any (`(index, seed, error)`).
    pub error: Option<(u64, u64, String)>,
}

impl FleetPlan {
    /// Number of shards the session range splits into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.opts
            .sessions
            .div_ceil(self.opts.shard_size.max(1))
            .try_into()
            .expect("shard count fits usize")
    }

    /// Derives the spec of session `index`.
    #[must_use]
    pub fn vehicle(&self, index: u64) -> VehicleSpec {
        derive::vehicle(
            self.opts.seed,
            index,
            self.opts.fault_rate,
            self.opts.miscalibrate,
        )
    }

    /// Runs one shard: its sessions in index order, folded locally into
    /// per-cohort aggregates. Shards are independent — they share only
    /// the read-only plan — so any number can run concurrently.
    #[must_use]
    pub fn run_shard(&self, shard: usize) -> ShardOutcome {
        let size = self.opts.shard_size.max(1);
        let lo = shard as u64 * size;
        let hi = (lo + size).min(self.opts.sessions);
        let mut out = ShardOutcome {
            cohorts: vec![CohortAggregate::default(); self.cohorts.len()],
            vetoes: Vec::new(),
            cycles: 0,
            error: None,
        };
        for index in lo..hi {
            let spec = self.vehicle(index);
            match session::run_session(&self.cohorts[spec.cohort], &self.rogue, &spec, &self.opts) {
                Ok(sample) => {
                    out.cycles += sample.cycles;
                    if sample.vetoed {
                        out.vetoes.push(VetoRecord {
                            index,
                            seed: spec.seed,
                            cohort: spec.cohort,
                            rows: sample.veto_rows.clone(),
                        });
                    }
                    out.cohorts[spec.cohort].fold_session(&sample);
                }
                Err(e) => {
                    out.error = Some((index, spec.seed, e.to_string()));
                    break;
                }
            }
        }
        out
    }
}

/// The folded fleet report. Render with [`report::render_text`] /
/// [`report::render_json`].
pub struct FleetReport {
    /// The options the fleet ran with.
    pub opts: FleetOptions,
    /// Units the miscalibration derivation planted.
    pub planted: u64,
    /// Per-cohort aggregates, indexed like [`cohort::COHORTS`].
    pub cohorts: Vec<CohortAggregate>,
    /// Every vetoed unit, in session order.
    pub vetoes: Vec<VetoRecord>,
    /// Simulated cycles per shard, in shard order (the deterministic
    /// schedule view: feed to `export_schedule_obs`).
    pub shard_cycles: Vec<u64>,
}

impl FleetReport {
    /// Total sessions folded in.
    #[must_use]
    pub fn total_sessions(&self) -> u64 {
        self.cohorts.iter().map(|c| c.sessions).sum()
    }

    /// Total simulated cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cohorts.iter().map(|c| c.cycles).sum()
    }

    /// No unit was vetoed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.vetoes.is_empty()
    }

    /// Virtual single-link replay queue-wait histogram over the shards
    /// (simulated cycles a shard waits behind earlier shards).
    #[must_use]
    pub fn queue_wait_hist(&self) -> audo_obs::Histogram {
        let mut h = audo_obs::Histogram::default();
        let mut now = 0u64;
        for &c in &self.shard_cycles {
            h.record(now);
            now = now.saturating_add(c);
        }
        h
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn to_text(&self) -> String {
        report::render_text(self)
    }

    /// Renders the machine-readable JSON report (byte-identical for any
    /// worker count).
    #[must_use]
    pub fn to_json(&self) -> String {
        report::render_json(self)
    }
}

/// Folds shard outcomes (in shard order) into the fleet report.
///
/// # Errors
///
/// Returns the first session failure as a rendered message carrying the
/// unit's index and seed.
pub fn fold(plan: &FleetPlan, shards: &[ShardOutcome]) -> Result<FleetReport, String> {
    let mut cohorts = vec![CohortAggregate::default(); plan.cohorts.len()];
    let mut vetoes = Vec::new();
    let mut shard_cycles = Vec::with_capacity(shards.len());
    for s in shards {
        if let Some((index, seed, e)) = &s.error {
            return Err(format!("session {index} (seed {seed:#018x}) failed: {e}"));
        }
        for (agg, shard_agg) in cohorts.iter_mut().zip(&s.cohorts) {
            agg.merge(shard_agg);
        }
        vetoes.extend(s.vetoes.iter().cloned());
        shard_cycles.push(s.cycles);
    }
    let planted = match plan.opts.miscalibrate {
        Some(n) => (0..plan.opts.sessions)
            .filter(|&i| derive::is_miscalibrated(derive::vehicle_seed(plan.opts.seed, i), n))
            .count() as u64,
        None => 0,
    };
    Ok(FleetReport {
        opts: plan.opts.clone(),
        planted,
        cohorts,
        vetoes,
        shard_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_the_session_space() {
        let p = FleetOptions {
            sessions: 70,
            shard_size: 32,
            ..FleetOptions::default()
        };
        // 70 sessions at shard size 32: shards of 32, 32, 6.
        let plan_lite = FleetPlan {
            cohorts: Vec::new(),
            rogue: cohort::build_rogue(),
            opts: p,
        };
        assert_eq!(plan_lite.shard_count(), 3);
        let z = FleetPlan {
            opts: FleetOptions {
                sessions: 0,
                ..FleetOptions::default()
            },
            ..plan_lite
        };
        assert_eq!(z.shard_count(), 0);
    }
}
