//! The multi-master system crossbar (LMB-class bus).
//!
//! Masters (TriCore data port, PCP, DMA, the Cerberus tool master) contend
//! for slaves (SRAM, data flash, the flash data port, EMEM, the peripheral
//! bridge). Contention is the paper's `bus contentions` event source: "the
//! on-chip multi-master system buses … can also be traced independently
//! from the cores".

use audo_common::{AccessKind, Addr, BusTransaction, Cycle, EventSink, PerfEvent, SourceId};

/// Crossbar slave ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slave {
    /// System SRAM.
    Sram,
    /// Program-flash data port (through the PMU).
    PflashData,
    /// Data flash (EEPROM emulation).
    Dflash,
    /// Emulation memory bridge (Back Bone Bus).
    Emem,
    /// Peripheral bridge.
    Periph,
}

const N_SLAVES: usize = 5;

fn slave_index(s: Slave) -> usize {
    match s {
        Slave::Sram => 0,
        Slave::PflashData => 1,
        Slave::Dflash => 2,
        Slave::Emem => 3,
        Slave::Periph => 4,
    }
}

/// The crossbar: per-slave occupancy tracking plus observation taps.
#[derive(Debug, Clone)]
pub struct Xbar {
    busy_until: [Cycle; N_SLAVES],
    grants: u64,
    contended: u64,
}

impl Default for Xbar {
    fn default() -> Xbar {
        Xbar::new()
    }
}

impl Xbar {
    /// Creates an idle crossbar.
    #[must_use]
    pub fn new() -> Xbar {
        Xbar {
            busy_until: [Cycle::ZERO; N_SLAVES],
            grants: 0,
            contended: 0,
        }
    }

    /// Requests `slave` at `now`, occupying it for `occupancy` cycles.
    ///
    /// Returns the grant (start) cycle. Emits [`PerfEvent::BusGrant`] /
    /// [`PerfEvent::BusContention`] and records the transaction in
    /// `bus_obs` for the MCDS bus observation block.
    // reason: the grant request mirrors the FPI bus signal group; folding
    // the signals into a struct would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub fn grant(
        &mut self,
        now: Cycle,
        master: SourceId,
        slave: Slave,
        addr: Addr,
        kind: AccessKind,
        size: u8,
        occupancy: u64,
        sink: &mut EventSink,
        bus_obs: &mut Vec<BusTransaction>,
    ) -> Cycle {
        let idx = slave_index(slave);
        let start = self.busy_until[idx].max(now);
        let waited = start.saturating_sub(now);
        if waited > 0 {
            self.contended += 1;
            sink.emit(
                now,
                SourceId::BUS,
                PerfEvent::BusContention {
                    master,
                    waited: waited.min(255) as u8,
                },
            );
        }
        self.busy_until[idx] = start + occupancy.max(1);
        self.grants += 1;
        sink.emit(now, SourceId::BUS, PerfEvent::BusGrant { master });
        bus_obs.push(BusTransaction {
            cycle: start,
            master,
            addr,
            kind,
            size,
        });
        start
    }

    /// Lifetime `(grants, contended grants)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.grants, self.contended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn go(
        x: &mut Xbar,
        now: u64,
        master: SourceId,
        slave: Slave,
        occ: u64,
        sink: &mut EventSink,
        obs: &mut Vec<BusTransaction>,
    ) -> Cycle {
        x.grant(
            Cycle(now),
            master,
            slave,
            Addr(0x9000_0000),
            AccessKind::Read,
            4,
            occ,
            sink,
            obs,
        )
    }

    #[test]
    fn independent_slaves_do_not_contend() {
        let mut x = Xbar::new();
        let mut sink = EventSink::new();
        let mut obs = Vec::new();
        let a = go(
            &mut x,
            0,
            SourceId::TRICORE,
            Slave::Sram,
            2,
            &mut sink,
            &mut obs,
        );
        let b = go(
            &mut x,
            0,
            SourceId::DMA,
            Slave::Periph,
            2,
            &mut sink,
            &mut obs,
        );
        assert_eq!(a, Cycle(0));
        assert_eq!(b, Cycle(0));
        assert_eq!(x.stats(), (2, 0));
    }

    #[test]
    fn same_slave_serializes_and_counts_contention() {
        let mut x = Xbar::new();
        let mut sink = EventSink::new();
        let mut obs = Vec::new();
        let a = go(
            &mut x,
            0,
            SourceId::TRICORE,
            Slave::Sram,
            3,
            &mut sink,
            &mut obs,
        );
        let b = go(
            &mut x,
            1,
            SourceId::DMA,
            Slave::Sram,
            3,
            &mut sink,
            &mut obs,
        );
        assert_eq!(a, Cycle(0));
        assert_eq!(b, Cycle(3), "waits for the first grant's occupancy");
        assert_eq!(x.stats(), (2, 1));
        let contentions: Vec<_> = sink
            .records()
            .iter()
            .filter_map(|e| match e.event {
                PerfEvent::BusContention { master, waited } => Some((master, waited)),
                _ => None,
            })
            .collect();
        assert_eq!(contentions, vec![(SourceId::DMA, 2)]);
    }

    #[test]
    fn transactions_are_observable() {
        let mut x = Xbar::new();
        let mut sink = EventSink::new();
        let mut obs = Vec::new();
        go(
            &mut x,
            5,
            SourceId::PCP,
            Slave::Emem,
            1,
            &mut sink,
            &mut obs,
        );
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].master, SourceId::PCP);
        assert_eq!(obs[0].cycle, Cycle(5));
    }
}
