//! Program-flash timing: wait states, read/prefetch buffers, and code/data
//! port arbitration.
//!
//! The paper (§4) singles the CPU→flash path out as "the main lever to
//! increase the CPU system performance for the real application" and lists
//! its complexity drivers: caches, pre-fetch buffers *for*, and arbitration
//! *between*, the code and data ports of the flash. This module models
//! exactly those mechanisms:
//!
//! * a single flash bank that needs [`FlashConfig::wait_states`] cycles per
//!   line read and can serve one read at a time,
//! * [`FlashConfig::read_buffers`] line buffers with LRU replacement,
//! * optional sequential next-line prefetch launched when the bank is idle,
//! * a configurable arbitration policy between the code and data ports.

use audo_common::events::FlashPort;
use audo_common::{Addr, Cycle, EventSink, PerfEvent, SourceId};

use crate::config::{FlashConfig, PortArbitration};

#[derive(Debug, Clone, Copy, Default)]
struct LineBuf {
    tag: u32,
    valid: bool,
    lru: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    tag: u32,
    ready_at: Cycle,
    /// Launched by the prefetcher; abortable by a demand miss.
    speculative: bool,
}

/// Timing model of the embedded program flash (the PMU).
#[derive(Debug, Clone)]
pub struct FlashTiming {
    cfg: FlashConfig,
    bufs: Vec<LineBuf>,
    in_flight: Option<InFlight>,
    bank_busy_until: Cycle,
    last_data_activity: Cycle,
    last_code_activity: Cycle,
    last_winner: Option<FlashPort>,
    tick: u64,
    // Ground-truth counters.
    buffer_hits: u64,
    buffer_misses: u64,
    prefetches: u64,
}

impl FlashTiming {
    /// Creates the timing model.
    #[must_use]
    pub fn new(cfg: FlashConfig) -> FlashTiming {
        let n = cfg.read_buffers.max(1);
        FlashTiming {
            cfg,
            bufs: vec![LineBuf::default(); n],
            in_flight: None,
            bank_busy_until: Cycle::ZERO,
            last_data_activity: Cycle::ZERO,
            last_code_activity: Cycle::ZERO,
            last_winner: None,
            tick: 0,
            buffer_hits: 0,
            buffer_misses: 0,
            prefetches: 0,
        }
    }

    fn tag_of(&self, addr: Addr) -> u32 {
        addr.0 / self.cfg.line_bytes
    }

    fn find_buf(&mut self, tag: u32) -> Option<usize> {
        self.bufs.iter().position(|b| b.valid && b.tag == tag)
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.bufs[idx].lru = self.tick;
    }

    fn install(&mut self, tag: u32) {
        self.tick += 1;
        let tick = self.tick;
        let victim = self
            .bufs
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| if b.valid { b.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one buffer");
        self.bufs[victim] = LineBuf {
            tag,
            valid: true,
            lru: tick,
        };
    }

    /// Completes a finished in-flight fill (call once per access/cycle).
    fn retire_fill(&mut self, now: Cycle) {
        if let Some(f) = self.in_flight {
            if f.ready_at <= now {
                self.install(f.tag);
                self.in_flight = None;
            }
        }
    }

    /// Extra start delay the arbitration policy imposes on `port`.
    ///
    /// The request/response interface cannot retroactively preempt a fill
    /// that already promised a completion time, so policies are modeled as
    /// a deferral of the *disfavored* port while the favored port was
    /// recently active (within one wait-state window): the favored port's
    /// next request then wins the bank. Directionally faithful; absolute
    /// magnitudes are approximate (documented model limit).
    fn arbitration_penalty(&self, now: Cycle, port: FlashPort) -> u64 {
        const DEFER: u64 = 2;
        match self.cfg.arbitration {
            PortArbitration::CodeFirst => {
                if port == FlashPort::Data
                    && now.saturating_sub(self.last_code_activity) < self.cfg.wait_states
                {
                    DEFER
                } else {
                    0
                }
            }
            PortArbitration::DataFirst => {
                if port == FlashPort::Code
                    && now.saturating_sub(self.last_data_activity) < self.cfg.wait_states
                {
                    DEFER
                } else {
                    0
                }
            }
            PortArbitration::RoundRobin => {
                if self.last_winner == Some(port) {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Requests the line containing `addr` on the given port at cycle `now`.
    ///
    /// Returns the cycle the requested data is available. Emits buffer
    /// hit/miss, prefetch and port-conflict events into `sink` (attributed
    /// to the PMU).
    pub fn access(
        &mut self,
        now: Cycle,
        addr: Addr,
        port: FlashPort,
        sink: &mut EventSink,
    ) -> Cycle {
        self.retire_fill(now);
        match port {
            FlashPort::Data => self.last_data_activity = now,
            FlashPort::Code => self.last_code_activity = now,
        }
        let tag = self.tag_of(addr);

        // Buffer hit: data already on the fast side.
        if let Some(idx) = self.find_buf(tag) {
            self.touch(idx);
            self.buffer_hits += 1;
            sink.emit(now, SourceId::PMU, PerfEvent::FlashBufferHit { port });
            self.maybe_prefetch(now, tag);
            self.last_winner = Some(port);
            return now;
        }

        // Hit on an in-flight (possibly speculative) fill: wait for it.
        if let Some(f) = self.in_flight {
            if f.tag == tag {
                self.buffer_hits += 1;
                sink.emit(now, SourceId::PMU, PerfEvent::FlashBufferHit { port });
                self.last_winner = Some(port);
                // The fill completes and installs; data flows through.
                return f.ready_at;
            }
        }

        // Miss: pay wait states behind whatever occupies the bank. A
        // speculative (prefetch) fill in flight is aborted immediately —
        // demand traffic always wins the bank.
        self.buffer_misses += 1;
        sink.emit(now, SourceId::PMU, PerfEvent::FlashBufferMiss { port });
        if self
            .in_flight
            .is_some_and(|f| f.speculative && f.ready_at > now)
        {
            self.in_flight = None;
            self.bank_busy_until = now;
        }
        let penalty = self.arbitration_penalty(now, port);
        let start = self.bank_busy_until.max(now) + penalty;
        let waited = start.saturating_sub(now);
        if waited > 0 && self.bank_busy_until > now {
            sink.emit(
                now,
                SourceId::PMU,
                PerfEvent::FlashPortConflict {
                    loser: port,
                    waited: waited.min(255) as u8,
                },
            );
        }
        // The bank serializes fills, so an earlier in-flight fill always
        // completes before this one starts; install it now rather than
        // losing it when we overwrite the in-flight slot.
        if let Some(old) = self.in_flight.take() {
            self.install(old.tag);
        }
        let ready = start + self.cfg.wait_states;
        self.bank_busy_until = ready;
        self.in_flight = Some(InFlight {
            tag,
            ready_at: ready,
            speculative: false,
        });
        self.last_winner = Some(port);
        ready
    }

    /// Launches a next-line prefetch now if the bank is idle.
    fn maybe_prefetch(&mut self, now: Cycle, tag: u32) {
        if !self.cfg.prefetch || self.in_flight.is_some() || self.bank_busy_until > now {
            return;
        }
        let next = tag + 1;
        if self.find_buf(next).is_some() {
            return;
        }
        let ready = now + self.cfg.wait_states;
        self.bank_busy_until = ready;
        self.in_flight = Some(InFlight {
            tag: next,
            ready_at: ready,
            speculative: true,
        });
        self.prefetches += 1;
    }

    /// Emits a [`PerfEvent::FlashPrefetch`] accounting event and runs the
    /// lazy prefetch engine; call once per cycle from the fabric.
    pub fn step(&mut self, now: Cycle, sink: &mut EventSink) {
        self.retire_fill(now);
        // Lazy sequential prefetch: if the bank is idle and the most
        // recently used buffer's successor line is absent, fetch it.
        if !self.cfg.prefetch || self.in_flight.is_some() || self.bank_busy_until > now {
            return;
        }
        let Some(mru) = self
            .bufs
            .iter()
            .filter(|b| b.valid)
            .max_by_key(|b| b.lru)
            .map(|b| b.tag)
        else {
            return;
        };
        let next = mru + 1;
        if self.find_buf(next).is_some() {
            return;
        }
        let ready = now + self.cfg.wait_states;
        self.bank_busy_until = ready;
        self.in_flight = Some(InFlight {
            tag: next,
            ready_at: ready,
            speculative: true,
        });
        self.prefetches += 1;
        sink.emit(now, SourceId::PMU, PerfEvent::FlashPrefetch);
    }

    /// Lifetime `(buffer_hits, buffer_misses, prefetches)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.buffer_hits, self.buffer_misses, self.prefetches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FlashConfig {
        FlashConfig {
            wait_states: 5,
            line_bytes: 32,
            read_buffers: 2,
            prefetch: false,
            arbitration: PortArbitration::CodeFirst,
        }
    }

    #[test]
    fn miss_pays_wait_states_hit_is_free() {
        let mut f = FlashTiming::new(cfg());
        let mut sink = EventSink::new();
        let r = f.access(Cycle(10), Addr(0x8000_0000), FlashPort::Code, &mut sink);
        assert_eq!(r, Cycle(15));
        // Same line once the fill completed: free.
        let r = f.access(Cycle(20), Addr(0x8000_001C), FlashPort::Code, &mut sink);
        assert_eq!(r, Cycle(20));
        assert_eq!(f.stats().0, 1);
        assert_eq!(f.stats().1, 1);
    }

    #[test]
    fn back_to_back_misses_serialize_on_the_bank() {
        let mut f = FlashTiming::new(cfg());
        let mut sink = EventSink::new();
        let r1 = f.access(Cycle(0), Addr(0x0000), FlashPort::Code, &mut sink);
        let r2 = f.access(Cycle(1), Addr(0x0100), FlashPort::Data, &mut sink);
        assert_eq!(r1, Cycle(5));
        // Waits for the bank (5) plus the CodeFirst deferral of the data
        // port while code is active (+2).
        assert_eq!(r2, Cycle(12), "second miss waits for the bank + deferral");
        let conflicts = sink
            .records()
            .iter()
            .filter(|e| matches!(e.event, PerfEvent::FlashPortConflict { .. }))
            .count();
        assert_eq!(conflicts, 1);
    }

    #[test]
    fn lru_buffer_replacement() {
        let mut f = FlashTiming::new(cfg());
        let mut sink = EventSink::new();
        // Fill lines A and B (2 buffers).
        f.access(Cycle(0), Addr(0x000), FlashPort::Code, &mut sink);
        f.access(Cycle(10), Addr(0x100), FlashPort::Code, &mut sink);
        // Touch A so B becomes LRU.
        f.access(Cycle(20), Addr(0x004), FlashPort::Code, &mut sink);
        // Fill C: evicts B.
        f.access(Cycle(30), Addr(0x200), FlashPort::Code, &mut sink);
        let r = f.access(Cycle(40), Addr(0x000), FlashPort::Code, &mut sink);
        assert_eq!(r, Cycle(40), "A still buffered");
        let r = f.access(Cycle(50), Addr(0x100), FlashPort::Code, &mut sink);
        assert_eq!(r, Cycle(55), "B was evicted");
    }

    #[test]
    fn prefetch_hides_sequential_latency() {
        let mut pf_cfg = cfg();
        pf_cfg.prefetch = true;
        let mut f = FlashTiming::new(pf_cfg);
        let mut sink = EventSink::new();
        // Demand-miss line 0.
        let r0 = f.access(Cycle(0), Addr(0x000), FlashPort::Code, &mut sink);
        assert_eq!(r0, Cycle(5));
        // Give the prefetcher idle cycles to run.
        for c in 6..20 {
            f.step(Cycle(c), &mut sink);
        }
        // Line 1 should now be buffered (prefetched).
        let r1 = f.access(Cycle(20), Addr(0x020), FlashPort::Code, &mut sink);
        assert_eq!(r1, Cycle(20), "sequential line served from prefetch buffer");
        assert!(f.stats().2 >= 1, "prefetch counted");
    }

    #[test]
    fn round_robin_penalizes_repeat_winner() {
        let mut rr = cfg();
        rr.arbitration = PortArbitration::RoundRobin;
        let mut f = FlashTiming::new(rr);
        let mut sink = EventSink::new();
        let r1 = f.access(Cycle(0), Addr(0x000), FlashPort::Code, &mut sink);
        // Next code miss after the bank idles: +1 penalty for repeating.
        let r2 = f.access(r1 + 10, Addr(0x200), FlashPort::Code, &mut sink);
        assert_eq!(r2, Cycle(5 + 10 + 1 + 5));
    }

    #[test]
    fn data_first_penalizes_code_near_data_activity() {
        let mut df = cfg();
        df.arbitration = PortArbitration::DataFirst;
        let mut f = FlashTiming::new(df);
        let mut sink = EventSink::new();
        f.access(Cycle(100), Addr(0x000), FlashPort::Data, &mut sink);
        // Code fetch right after data activity is deferred on top of
        // waiting for the bank.
        let r = f.access(Cycle(101), Addr(0x400), FlashPort::Code, &mut sink);
        assert_eq!(r, Cycle(105 + 2 + 5));
    }

    #[test]
    fn in_flight_fill_serves_second_requester() {
        let mut f = FlashTiming::new(cfg());
        let mut sink = EventSink::new();
        let r1 = f.access(Cycle(0), Addr(0x000), FlashPort::Code, &mut sink);
        // Data port asks for the same line while the fill is in flight.
        let r2 = f.access(Cycle(2), Addr(0x010), FlashPort::Data, &mut sink);
        assert_eq!(r1, r2, "both wait for the same fill");
        assert_eq!(f.stats(), (1, 1, 0));
    }
}
