//! SoC configuration and the fixed memory map.
//!
//! The map follows the AUDO convention: program flash lives in segment `0x8`
//! with an uncached alias in segment `0xA`; scratchpads are core-local;
//! peripheral registers live in segment `0xF`; the emulation memory (EMEM)
//! of the Emulation Device occupies segment `0xE`.

use audo_common::{Addr, ByteSize, Freq};
use audo_pcp::PcpConfig;
use audo_tricore::CoreConfig;

/// Program flash base (cached view).
pub const PFLASH_BASE: Addr = Addr(0x8000_0000);
/// Uncached alias segment of program flash.
pub const PFLASH_UNCACHED_SEG: u8 = 0xA;
/// Data flash (EEPROM emulation) base.
pub const DFLASH_BASE: Addr = Addr(0x8F00_0000);
/// System SRAM (LMU-class) base.
pub const SRAM_BASE: Addr = Addr(0x9000_0000);
/// Program scratchpad base.
pub const PSPR_BASE: Addr = Addr(0xC000_0000);
/// Data scratchpad base.
pub const DSPR_BASE: Addr = Addr(0xD000_0000);
/// Emulation memory base.
pub const EMEM_BASE: Addr = Addr(0xE000_0000);
/// Peripheral segment base.
pub const PERIPH_BASE: Addr = Addr(0xF000_0000);

/// System timer MMIO base.
pub const STM_BASE: Addr = Addr(0xF000_0000);
/// ADC MMIO base.
pub const ADC_BASE: Addr = Addr(0xF000_1000);
/// DMA MMIO base.
pub const DMA_BASE: Addr = Addr(0xF000_2000);
/// CAN-receive MMIO base.
pub const CAN_BASE: Addr = Addr(0xF000_3000);
/// Crank-wheel (engine position) MMIO base.
pub const CRANK_BASE: Addr = Addr(0xF000_4000);
/// Overlay control (OVC) MMIO base.
pub const OVC_BASE: Addr = Addr(0xF000_5000);
/// Service request control (interrupt router) MMIO base.
pub const SRC_BASE: Addr = Addr(0xF000_6000);

/// Memory regions of the AUDO-class map.
///
/// This is the *configured* map: region boundaries depend on the memory
/// sizes in [`SocConfig`], so classification is a method on the config
/// ([`SocConfig::region_of`]) rather than a pure address predicate. The
/// fabric re-exports this type and routes bus traffic with the same
/// classification, which keeps static analysis (`audo-analyze`) and the
/// dynamic bus model in exact agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Data scratchpad (core-local, zero wait states).
    Dspr,
    /// Program scratchpad.
    Pspr,
    /// System SRAM via the crossbar.
    Sram,
    /// Program flash, cached view (segment `0x8`).
    PflashCached,
    /// Program flash, uncached alias (segment `0xA`).
    PflashUncached,
    /// Data flash (EEPROM emulation).
    Dflash,
    /// Emulation memory.
    Emem,
    /// Peripheral registers.
    Periph,
    /// Nothing mapped.
    Unmapped,
}

impl Region {
    /// Short lower-case name, stable across releases (used in findings
    /// JSON and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Region::Dspr => "dspr",
            Region::Pspr => "pspr",
            Region::Sram => "sram",
            Region::PflashCached => "pflash",
            Region::PflashUncached => "pflash-uncached",
            Region::Dflash => "dflash",
            Region::Emem => "emem",
            Region::Periph => "periph",
            Region::Unmapped => "unmapped",
        }
    }

    /// Both views of the program flash array.
    #[must_use]
    pub fn is_pflash(self) -> bool {
        matches!(self, Region::PflashCached | Region::PflashUncached)
    }

    /// Whether plain CPU stores to this region are legal on the modelled
    /// device. Program flash has no write port on the bus (programming
    /// goes through a command sequence the model does not implement), and
    /// unmapped addresses trap.
    #[must_use]
    pub fn cpu_writable(self) -> bool {
        !self.is_pflash() && self != Region::Unmapped
    }
}

/// Cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity.
    pub size: ByteSize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// `false` disables the cache entirely (all lookups miss, no fills).
    pub enabled: bool,
}

impl CacheConfig {
    /// A disabled cache.
    #[must_use]
    pub fn disabled() -> CacheConfig {
        CacheConfig {
            size: ByteSize::kib(1),
            ways: 1,
            line: 32,
            enabled: false,
        }
    }
}

/// Flash code/data port arbitration policy (§4 of the paper names this as
/// one of the levers on the CPU→flash path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortArbitration {
    /// Code fetches win ties; data pays.
    CodeFirst,
    /// Data accesses reserve the bank; code pays a penalty when data was
    /// recently active.
    DataFirst,
    /// Alternate: a port that was just served yields one cycle.
    RoundRobin,
}

/// Program-flash timing configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashConfig {
    /// Wait states (CPU cycles) per line read from the flash array.
    pub wait_states: u64,
    /// Line width of one array read, in bytes.
    pub line_bytes: u32,
    /// Number of read buffers (each holds one line).
    pub read_buffers: usize,
    /// Enable sequential next-line prefetch into a free buffer.
    pub prefetch: bool,
    /// Code/data port arbitration.
    pub arbitration: PortArbitration,
}

impl Default for FlashConfig {
    fn default() -> FlashConfig {
        FlashConfig {
            wait_states: 5,
            line_bytes: 32,
            read_buffers: 2,
            prefetch: true,
            arbitration: PortArbitration::CodeFirst,
        }
    }
}

/// Complete SoC configuration.
///
/// The defaults model a TC1797-class device at 150 MHz. Architecture-sweep
/// experiments (E6/E7) clone this and vary one knob at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocConfig {
    /// CPU pipeline timing.
    pub cpu: CoreConfig,
    /// PCP timing.
    pub pcp: PcpConfig,
    /// CPU clock (the simulation's base clock).
    pub cpu_clock: Freq,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Program flash timing.
    pub flash: FlashConfig,
    /// Program flash size.
    pub pflash_size: ByteSize,
    /// Data flash size.
    pub dflash_size: ByteSize,
    /// System SRAM size.
    pub sram_size: ByteSize,
    /// Program scratchpad size.
    pub pspr_size: ByteSize,
    /// Data scratchpad size.
    pub dspr_size: ByteSize,
    /// Emulation memory size (256 or 512 KiB on real EDs).
    pub emem_size: ByteSize,
    /// SRAM access latency via the crossbar (cycles).
    pub sram_latency: u64,
    /// Data-flash read latency (cycles).
    pub dflash_read_latency: u64,
    /// Data-flash program (write) busy time (cycles) — EEPROM emulation.
    pub dflash_write_busy: u64,
    /// EMEM access latency via the Back Bone Bus bridge (cycles).
    pub emem_latency: u64,
    /// Peripheral-bridge access latency (cycles).
    pub periph_latency: u64,
    /// Overlay page size in bytes (power of two).
    pub overlay_page: u32,
    /// Number of overlay page-map entries.
    pub overlay_entries: usize,
}

impl Default for SocConfig {
    fn default() -> SocConfig {
        SocConfig {
            cpu: CoreConfig::default(),
            pcp: PcpConfig::default(),
            cpu_clock: Freq::mhz(150),
            icache: CacheConfig {
                size: ByteSize::kib(16),
                ways: 2,
                line: 32,
                enabled: true,
            },
            dcache: CacheConfig {
                size: ByteSize::kib(4),
                ways: 2,
                line: 32,
                enabled: true,
            },
            flash: FlashConfig::default(),
            pflash_size: ByteSize::mib(4),
            dflash_size: ByteSize::kib(64),
            sram_size: ByteSize::kib(256),
            pspr_size: ByteSize::kib(48),
            dspr_size: ByteSize::kib(128),
            emem_size: ByteSize::kib(512),
            sram_latency: 2,
            dflash_read_latency: 20,
            dflash_write_busy: 120,
            emem_latency: 3,
            periph_latency: 4,
            overlay_page: 8 * 1024,
            overlay_entries: 16,
        }
    }
}

impl SocConfig {
    /// The TC1797-class preset (the default): 180 MHz-class flagship scaled
    /// to 150 MHz nominal, 4 MiB flash, 16 KiB I-cache, 512 KiB EMEM.
    #[must_use]
    pub fn tc1797() -> SocConfig {
        SocConfig::default()
    }

    /// The TC1767-class preset: the paper's mid-range sibling — smaller
    /// flash and memories, 256 KiB EMEM, a single flash read buffer less.
    #[must_use]
    pub fn tc1767() -> SocConfig {
        SocConfig {
            cpu_clock: Freq::mhz(133),
            icache: CacheConfig {
                size: ByteSize::kib(8),
                ways: 2,
                line: 32,
                enabled: true,
            },
            dcache: CacheConfig::disabled(),
            pflash_size: ByteSize::mib(2),
            sram_size: ByteSize::kib(128),
            pspr_size: ByteSize::kib(24),
            dspr_size: ByteSize::kib(68),
            emem_size: ByteSize::kib(256),
            ..SocConfig::default()
        }
    }

    /// Classifies an address against the configured memory map.
    ///
    /// The same classification the fabric uses to route bus traffic; see
    /// [`Region`].
    #[must_use]
    pub fn region_of(&self, addr: Addr) -> Region {
        if addr.in_range(DSPR_BASE, self.dspr_size.bytes() as u32) {
            Region::Dspr
        } else if addr.in_range(PSPR_BASE, self.pspr_size.bytes() as u32) {
            Region::Pspr
        } else if addr.in_range(SRAM_BASE, self.sram_size.bytes() as u32) {
            Region::Sram
        } else if addr.in_range(PFLASH_BASE, self.pflash_size.bytes() as u32) {
            Region::PflashCached
        } else if addr.segment() == PFLASH_UNCACHED_SEG
            && addr
                .with_segment(0x8)
                .in_range(PFLASH_BASE, self.pflash_size.bytes() as u32)
        {
            Region::PflashUncached
        } else if addr.in_range(DFLASH_BASE, self.dflash_size.bytes() as u32) {
            Region::Dflash
        } else if addr.in_range(EMEM_BASE, self.emem_size.bytes() as u32) {
            Region::Emem
        } else if addr.segment() == 0xF {
            Region::Periph
        } else {
            Region::Unmapped
        }
    }

    /// Scales flash wait states with CPU frequency, the way a fixed-speed
    /// flash array behaves under a faster clock: the array needs constant
    /// *time*, so a faster CPU sees more wait states.
    ///
    /// `reference` is the frequency at which [`FlashConfig::wait_states`]
    /// was specified.
    pub fn rescale_flash_for_clock(&mut self, reference: Freq) {
        let ws = self.flash.wait_states as f64 * self.cpu_clock.0 as f64 / reference.0 as f64;
        self.flash.wait_states = ws.round().max(1.0) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_tc1797_class() {
        let c = SocConfig::default();
        assert_eq!(c.cpu_clock.as_mhz(), 150.0);
        assert_eq!(c.icache.size, ByteSize::kib(16));
        assert_eq!(c.pflash_size, ByteSize::mib(4));
        assert_eq!(c.flash.read_buffers, 2);
    }

    #[test]
    fn flash_rescaling_tracks_frequency() {
        let mut c = SocConfig {
            cpu_clock: Freq::mhz(300),
            ..SocConfig::default()
        };
        c.rescale_flash_for_clock(Freq::mhz(150));
        assert_eq!(c.flash.wait_states, 10, "2x clock = 2x wait states");
        let mut c2 = SocConfig {
            cpu_clock: Freq::mhz(75),
            ..SocConfig::default()
        };
        c2.rescale_flash_for_clock(Freq::mhz(150));
        assert_eq!(c2.flash.wait_states, 3, "5/2 rounds to 3");
    }

    #[test]
    fn tc1767_is_the_smaller_sibling() {
        let hi = SocConfig::tc1797();
        let lo = SocConfig::tc1767();
        assert!(lo.pflash_size < hi.pflash_size);
        assert!(lo.emem_size < hi.emem_size);
        assert!(lo.icache.size < hi.icache.size);
        assert!(!lo.dcache.enabled, "TC1767-class: no data cache");
    }

    #[test]
    fn memory_map_segments_are_distinct() {
        let bases = [
            PFLASH_BASE,
            DFLASH_BASE,
            SRAM_BASE,
            PSPR_BASE,
            DSPR_BASE,
            EMEM_BASE,
            PERIPH_BASE,
        ];
        for (i, a) in bases.iter().enumerate() {
            for b in &bases[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
