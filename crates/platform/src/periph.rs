//! Peripheral models: system timer, ADC, CAN receiver, crank-wheel sensor.
//!
//! Together these generate the *hard real-time stimulus* the paper's §4
//! emphasises: "most [automotive target systems] are hard real-time systems,
//! where the processing activities are triggered by interrupts or at least
//! are dependent on real-time data like converted analog inputs". Every
//! peripheral raises service request nodes through the interrupt router;
//! all are deterministic (seeded xorshift for jitter) so experiment runs
//! are exactly reproducible.

use audo_common::{Cycle, EventSink};

use crate::irq::{srn, IrqRouter};

/// Tiny deterministic xorshift32 generator for peripheral jitter/noise.
#[derive(Debug, Clone, Copy)]
pub struct XorShift32(u32);

impl XorShift32 {
    /// Creates a generator; `seed` must be non-zero (0 is mapped to 1).
    #[must_use]
    pub fn new(seed: u32) -> XorShift32 {
        XorShift32(if seed == 0 { 1 } else { seed })
    }

    /// Next pseudo-random 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    /// Uniform value in `0..bound` (`bound` may be 0 → always 0).
    pub fn below(&mut self, bound: u32) -> u32 {
        if bound == 0 {
            0
        } else {
            self.next_u32() % bound
        }
    }
}

// ----------------------------------------------------------------------
// STM — system timer
// ----------------------------------------------------------------------

/// Free-running 64-bit system timer with two auto-reload compare channels.
///
/// Compare matches raise [`srn::STM0`]/[`srn::STM1`]; the compare register
/// then advances by its reload value, producing the OS tick periods
/// (1 ms / 10 ms / 100 ms tasks) of a classic automotive schedule.
#[derive(Debug, Clone, Default)]
pub struct Stm {
    /// Current counter value (equals the cycle count).
    pub tim: u64,
    /// Compare values (against the low 32 counter bits).
    pub cmp: [u32; 2],
    /// Auto-reload increments.
    pub reload: [u32; 2],
    /// Per-channel interrupt enable.
    pub irq_enable: [bool; 2],
}

impl Stm {
    /// Advances the timer one cycle and raises compare interrupts.
    pub fn step(&mut self, now: Cycle, irq: &mut IrqRouter, sink: &mut EventSink) {
        self.tim = now.0;
        let lo = self.tim as u32;
        for ch in 0..2 {
            if self.irq_enable[ch] && lo == self.cmp[ch] {
                irq.raise(if ch == 0 { srn::STM0 } else { srn::STM1 }, now, sink);
                self.cmp[ch] = self.cmp[ch].wrapping_add(self.reload[ch]);
            }
        }
    }

    /// MMIO read at word offset.
    #[must_use]
    pub fn mmio_read(&self, offset: u32) -> u32 {
        match offset {
            0x00 => self.tim as u32,
            0x04 => (self.tim >> 32) as u32,
            0x08 => self.cmp[0],
            0x0C => self.cmp[1],
            0x10 => self.reload[0],
            0x14 => self.reload[1],
            0x18 => u32::from(self.irq_enable[0]) | (u32::from(self.irq_enable[1]) << 1),
            _ => 0,
        }
    }

    /// MMIO write at word offset.
    pub fn mmio_write(&mut self, offset: u32, value: u32) {
        match offset {
            0x08 => self.cmp[0] = value,
            0x0C => self.cmp[1] = value,
            0x10 => self.reload[0] = value,
            0x14 => self.reload[1] = value,
            0x18 => {
                self.irq_enable[0] = value & 1 != 0;
                self.irq_enable[1] = value & 2 != 0;
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// ADC
// ----------------------------------------------------------------------

/// Multi-channel ADC with periodic conversions and a result FIFO.
///
/// Results are a deterministic triangle wave plus seeded noise, per channel,
/// so "converted analog inputs" vary over time without any real analog
/// front end. Each completed conversion raises [`srn::ADC`] — typically
/// routed to a DMA channel that drains the FIFO into a DSPR buffer.
#[derive(Debug, Clone)]
pub struct Adc {
    /// Conversion sequence enabled.
    pub enabled: bool,
    /// Cycles per conversion.
    pub period: u32,
    /// Number of scanned channels.
    pub channels: u8,
    fifo: std::collections::VecDeque<u32>,
    next_fire: u64,
    chan_cursor: u8,
    rng: XorShift32,
    /// Sticky overrun flag (FIFO overflow).
    pub overrun: bool,
    conversions: u64,
}

/// ADC result FIFO depth.
pub const ADC_FIFO_DEPTH: usize = 8;

impl Adc {
    /// Creates a disabled ADC with the given noise seed.
    #[must_use]
    pub fn new(seed: u32) -> Adc {
        Adc {
            enabled: false,
            period: 1000,
            channels: 4,
            fifo: std::collections::VecDeque::new(),
            next_fire: 0,
            chan_cursor: 0,
            rng: XorShift32::new(seed),
            overrun: false,
            conversions: 0,
        }
    }

    fn sample(&mut self, now: u64, channel: u8) -> u32 {
        // 12-bit triangle wave (per-channel phase) with ±16 LSB noise.
        let phase = (now / 64 + u64::from(channel) * 512) % 8192;
        let tri = if phase < 4096 { phase } else { 8191 - phase } as u32;
        let noise = self.rng.below(33).wrapping_sub(16);
        (tri.wrapping_add(noise)) & 0xFFF
    }

    /// Advances one cycle; fires a conversion when the period elapses.
    pub fn step(&mut self, now: Cycle, irq: &mut IrqRouter, sink: &mut EventSink) {
        if !self.enabled {
            return;
        }
        if now.0 >= self.next_fire {
            self.next_fire = now.0 + u64::from(self.period.max(1));
            let ch = self.chan_cursor;
            self.chan_cursor = (self.chan_cursor + 1) % self.channels.max(1);
            let value = self.sample(now.0, ch);
            if self.fifo.len() >= ADC_FIFO_DEPTH {
                self.overrun = true;
                self.fifo.pop_front();
            }
            self.fifo.push_back(value | (u32::from(ch) << 16));
            self.conversions += 1;
            irq.raise(srn::ADC, now, sink);
        }
    }

    /// MMIO read (popping the FIFO at the RESULT offset).
    pub fn mmio_read(&mut self, offset: u32) -> u32 {
        match offset {
            0x00 => u32::from(self.enabled),
            0x04 => self.period,
            0x08 => u32::from(self.channels),
            0x0C => self.fifo.pop_front().unwrap_or(0),
            0x10 => self.fifo.len() as u32 | (u32::from(self.overrun) << 8),
            _ => 0,
        }
    }

    /// MMIO write.
    pub fn mmio_write(&mut self, offset: u32, value: u32, now: Cycle) {
        match offset {
            0x00 => {
                self.enabled = value & 1 != 0;
                if self.enabled {
                    self.next_fire = now.0 + u64::from(self.period.max(1));
                }
            }
            0x04 => self.period = value.max(1),
            0x08 => self.channels = (value & 0xFF).clamp(1, 16) as u8,
            0x10 => self.overrun = false,
            _ => {}
        }
    }

    /// Replaces the noise generator seed (models a different analog
    /// environment between otherwise identical runs).
    pub fn reseed(&mut self, seed: u32) {
        self.rng = XorShift32::new(seed);
    }

    /// Total conversions completed.
    #[must_use]
    pub fn conversions(&self) -> u64 {
        self.conversions
    }
}

// ----------------------------------------------------------------------
// CAN receiver
// ----------------------------------------------------------------------

/// A CAN-style message source: periodic (with jitter) receive events that
/// fill the message registers and raise [`srn::CAN`].
#[derive(Debug, Clone)]
pub struct CanRx {
    /// Reception enabled.
    pub enabled: bool,
    /// Mean cycles between messages.
    pub period: u32,
    /// Max uniform jitter (cycles) added/subtracted per message.
    pub jitter: u32,
    /// Last message id.
    pub msg_id: u32,
    /// Last message payload.
    pub msg_data: [u32; 2],
    /// Messages received.
    pub count: u32,
    next_fire: u64,
    rng: XorShift32,
}

impl CanRx {
    /// Creates a disabled receiver with the given jitter seed.
    #[must_use]
    pub fn new(seed: u32) -> CanRx {
        CanRx {
            enabled: false,
            period: 15_000,
            jitter: 2_000,
            msg_id: 0,
            msg_data: [0; 2],
            count: 0,
            next_fire: 0,
            rng: XorShift32::new(seed),
        }
    }

    /// Replaces the jitter generator seed (models a different bus
    /// environment between otherwise identical runs).
    pub fn reseed(&mut self, seed: u32) {
        self.rng = XorShift32::new(seed);
    }

    /// Advances one cycle; delivers a message when due.
    pub fn step(&mut self, now: Cycle, irq: &mut IrqRouter, sink: &mut EventSink) {
        if !self.enabled {
            return;
        }
        if now.0 >= self.next_fire {
            let j = self.rng.below(2 * self.jitter + 1) as i64 - i64::from(self.jitter);
            let gap = (i64::from(self.period.max(1)) + j).max(1) as u64;
            self.next_fire = now.0 + gap;
            self.count = self.count.wrapping_add(1);
            self.msg_id = 0x100 + (self.count % 8);
            self.msg_data[0] = self.rng.next_u32();
            self.msg_data[1] = self.count;
            irq.raise(srn::CAN, now, sink);
        }
    }

    /// MMIO read.
    #[must_use]
    pub fn mmio_read(&self, offset: u32) -> u32 {
        match offset {
            0x00 => u32::from(self.enabled),
            0x04 => self.period,
            0x08 => self.jitter,
            0x0C => self.msg_id,
            0x10 => self.msg_data[0],
            0x14 => self.msg_data[1],
            0x18 => self.count,
            _ => 0,
        }
    }

    /// MMIO write.
    pub fn mmio_write(&mut self, offset: u32, value: u32, now: Cycle) {
        match offset {
            0x00 => {
                self.enabled = value & 1 != 0;
                if self.enabled {
                    self.next_fire = now.0 + u64::from(self.period.max(1));
                }
            }
            0x04 => self.period = value.max(1),
            0x08 => self.jitter = value,
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// Crank wheel
// ----------------------------------------------------------------------

/// Crank-wheel (engine position) sensor: one tooth event per tooth, one
/// TDC event per revolution.
///
/// Tooth events raise [`srn::CRANK`]; they arrive at the crank-synchronous
/// rate that makes engine-control software *speed-dependent* — the central
/// reason the paper insists rates must be observed dynamically along the
/// time axis.
#[derive(Debug, Clone)]
pub struct Crank {
    /// Rotation enabled.
    pub enabled: bool,
    /// Engine speed in RPM.
    pub rpm: u32,
    /// Teeth per revolution.
    pub teeth: u32,
    /// Total tooth count since enable.
    pub tooth_count: u32,
    cpu_hz: u64,
    next_tooth: u64,
}

impl Crank {
    /// Creates a stopped crank model for a CPU at `cpu_hz`.
    #[must_use]
    pub fn new(cpu_hz: u64) -> Crank {
        Crank {
            enabled: false,
            rpm: 3000,
            teeth: 60,
            tooth_count: 0,
            cpu_hz,
            next_tooth: 0,
        }
    }

    /// Cycles between teeth at the current RPM.
    #[must_use]
    pub fn tooth_period(&self) -> u64 {
        let rpm = u64::from(self.rpm.max(1));
        let teeth = u64::from(self.teeth.max(1));
        (self.cpu_hz * 60 / (rpm * teeth)).max(1)
    }

    /// Advances one cycle; raises tooth/TDC events when due.
    pub fn step(&mut self, now: Cycle, irq: &mut IrqRouter, sink: &mut EventSink) {
        if !self.enabled {
            return;
        }
        if now.0 >= self.next_tooth {
            self.next_tooth = now.0 + self.tooth_period();
            self.tooth_count = self.tooth_count.wrapping_add(1);
            irq.raise(srn::CRANK, now, sink);
            if self.tooth_count.is_multiple_of(self.teeth.max(1)) {
                irq.raise(srn::TDC, now, sink);
            }
        }
    }

    /// MMIO read.
    #[must_use]
    pub fn mmio_read(&self, offset: u32) -> u32 {
        match offset {
            0x00 => u32::from(self.enabled),
            0x04 => self.rpm,
            0x08 => self.teeth,
            0x0C => self.tooth_count,
            0x10 => self.tooth_count % self.teeth.max(1),
            _ => 0,
        }
    }

    /// MMIO write.
    pub fn mmio_write(&mut self, offset: u32, value: u32, now: Cycle) {
        match offset {
            0x00 => {
                self.enabled = value & 1 != 0;
                if self.enabled {
                    self.next_tooth = now.0 + self.tooth_period();
                }
            }
            0x04 => self.rpm = value.clamp(100, 20_000),
            0x08 => self.teeth = value.clamp(1, 256),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irq::{Service, SrnConfig};

    fn router_all_cpu() -> IrqRouter {
        let mut r = IrqRouter::new();
        for i in 0..8 {
            r.configure(
                i,
                SrnConfig {
                    prio: i + 1,
                    enabled: true,
                    service: Service::Cpu,
                },
            );
        }
        r
    }

    #[test]
    fn stm_periodic_compare_fires_repeatedly() {
        let mut stm = Stm::default();
        stm.cmp[0] = 100;
        stm.reload[0] = 100;
        stm.irq_enable[0] = true;
        let mut irq = router_all_cpu();
        let mut sink = EventSink::new();
        let mut fires = 0;
        for c in 0..1000u64 {
            stm.step(Cycle(c), &mut irq, &mut sink);
            if irq.cpu_pending().is_some() {
                fires += 1;
                irq.acknowledge_cpu(irq.cpu_pending().unwrap());
            }
        }
        assert_eq!(fires, 9, "fires at 100, 200, ..., 900");
    }

    #[test]
    fn adc_produces_bounded_samples_and_overrun() {
        let mut adc = Adc::new(7);
        adc.mmio_write(0x04, 10, Cycle(0));
        adc.mmio_write(0x00, 1, Cycle(0));
        let mut irq = router_all_cpu();
        let mut sink = EventSink::new();
        for c in 0..500u64 {
            adc.step(Cycle(c), &mut irq, &mut sink);
            irq.dispatch();
            if let Some(p) = irq.cpu_pending() {
                irq.acknowledge_cpu(p);
            }
        }
        assert!(adc.conversions() >= 40);
        assert!(adc.overrun, "nobody drained the FIFO");
        let r = adc.mmio_read(0x0C);
        assert_eq!(r & 0xF000, 0, "sample is 12-bit");
        assert!((r >> 16) < 4, "channel tag in range");
    }

    #[test]
    fn adc_samples_are_deterministic() {
        let mk = || {
            let mut adc = Adc::new(42);
            adc.mmio_write(0x04, 25, Cycle(0));
            adc.mmio_write(0x00, 1, Cycle(0));
            let mut irq = router_all_cpu();
            let mut sink = EventSink::new();
            let mut vals = Vec::new();
            for c in 0..200u64 {
                adc.step(Cycle(c), &mut irq, &mut sink);
                if let Some(p) = irq.cpu_pending() {
                    irq.acknowledge_cpu(p);
                    vals.push(adc.mmio_read(0x0C));
                }
            }
            vals
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn can_messages_jitter_but_arrive() {
        let mut can = CanRx::new(3);
        can.mmio_write(0x04, 50, Cycle(0));
        can.mmio_write(0x08, 10, Cycle(0));
        can.mmio_write(0x00, 1, Cycle(0));
        let mut irq = router_all_cpu();
        let mut sink = EventSink::new();
        for c in 0..5000u64 {
            can.step(Cycle(c), &mut irq, &mut sink);
            if let Some(p) = irq.cpu_pending() {
                irq.acknowledge_cpu(p);
            }
        }
        let n = can.mmio_read(0x18);
        assert!((80..=120).contains(&n), "~100 messages expected, got {n}");
    }

    #[test]
    fn crank_tooth_rate_follows_rpm() {
        let mut crank = Crank::new(150_000_000);
        crank.mmio_write(0x04, 6000, Cycle(0));
        crank.mmio_write(0x00, 1, Cycle(0));
        // 6000 rpm, 60 teeth -> 100 rev/s -> 6000 teeth/s -> 25k cycles/tooth.
        assert_eq!(crank.tooth_period(), 25_000);
        let mut irq = router_all_cpu();
        let mut sink = EventSink::new();
        for c in 0..250_000u64 {
            crank.step(Cycle(c), &mut irq, &mut sink);
            if let Some(p) = irq.cpu_pending() {
                irq.acknowledge_cpu(p);
            }
        }
        assert_eq!(crank.tooth_count, 9, "teeth at 25k, 50k, ..., 225k");
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift32::new(1);
        let mut b = XorShift32::new(1);
        for _ in 0..100 {
            let x = a.next_u32();
            assert_eq!(x, b.next_u32());
            assert_ne!(x, 0);
        }
        assert_eq!(XorShift32::new(0).next_u32(), XorShift32::new(1).next_u32());
    }
}
