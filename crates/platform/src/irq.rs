//! The interrupt router: service request nodes (SRNs) with priority and
//! destination routing.
//!
//! As on AUDO-class devices, every peripheral event raises a *service
//! request node*, and each SRN is programmed with a priority and a service
//! provider: the TriCore CPU, a PCP channel, or a DMA channel. That routing
//! flexibility is exactly what enables the HW/SW-partitioning experiments:
//! the same ADC event can interrupt the CPU, start a PCP program, or kick a
//! DMA transfer, without the peripheral knowing the difference.

use audo_common::{Cycle, EventSink, PerfEvent, SourceId};

/// Number of service request nodes.
pub const N_SRN: usize = 32;

/// Well-known SRN assignments.
pub mod srn {
    /// System timer compare 0.
    pub const STM0: u8 = 0;
    /// System timer compare 1.
    pub const STM1: u8 = 1;
    /// ADC conversion complete.
    pub const ADC: u8 = 2;
    /// CAN message received.
    pub const CAN: u8 = 3;
    /// Crank-wheel tooth event.
    pub const CRANK: u8 = 4;
    /// Crank-wheel full-revolution (TDC) event.
    pub const TDC: u8 = 5;
    /// DMA channel `n` done (8 channels).
    pub const DMA_DONE0: u8 = 8;
    /// First software SRN (raised by `SRQ` on the PCP or by MMIO).
    pub const SOFT0: u8 = 16;
}

/// Who services a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// Interrupt the TriCore CPU at the SRN's priority.
    Cpu,
    /// Trigger a PCP channel.
    Pcp { channel: u8 },
    /// Trigger a DMA channel.
    Dma { channel: u8 },
}

/// One service request node's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrnConfig {
    /// Arbitration priority (1..=255; higher wins; 0 never dispatches).
    pub prio: u8,
    /// Enable flag.
    pub enabled: bool,
    /// Routing destination.
    pub service: Service,
}

impl Default for SrnConfig {
    fn default() -> SrnConfig {
        SrnConfig {
            prio: 0,
            enabled: false,
            service: Service::Cpu,
        }
    }
}

/// Dispatch produced by one router resolution step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dispatch {
    /// PCP channels to trigger.
    pub pcp_triggers: Vec<u8>,
    /// DMA channels to trigger.
    pub dma_triggers: Vec<u8>,
}

/// The interrupt router.
#[derive(Debug, Clone)]
pub struct IrqRouter {
    cfg: [SrnConfig; N_SRN],
    raised: [bool; N_SRN],
    raised_count: u64,
}

impl Default for IrqRouter {
    fn default() -> IrqRouter {
        IrqRouter::new()
    }
}

impl IrqRouter {
    /// Creates a router with all SRNs disabled.
    #[must_use]
    pub fn new() -> IrqRouter {
        IrqRouter {
            cfg: [SrnConfig::default(); N_SRN],
            raised: [false; N_SRN],
            raised_count: 0,
        }
    }

    /// Programs one SRN.
    ///
    /// # Panics
    ///
    /// Panics if `srn` is out of range.
    pub fn configure(&mut self, srn: u8, cfg: SrnConfig) {
        self.cfg[srn as usize] = cfg;
    }

    /// Returns one SRN's configuration.
    #[must_use]
    pub fn config(&self, srn: u8) -> SrnConfig {
        self.cfg[srn as usize]
    }

    /// Raises a service request (idempotent while pending).
    pub fn raise(&mut self, srn: u8, now: Cycle, sink: &mut EventSink) {
        let c = self.cfg[srn as usize];
        if !c.enabled {
            return;
        }
        if !self.raised[srn as usize] {
            self.raised[srn as usize] = true;
            self.raised_count += 1;
            sink.emit(
                now,
                SourceId::IRQ,
                PerfEvent::IrqRaised { srn, prio: c.prio },
            );
        }
    }

    /// Resolves non-CPU routings: pending SRNs destined for PCP/DMA are
    /// consumed and returned as triggers. Call once per cycle.
    pub fn dispatch(&mut self) -> Dispatch {
        let mut out = Dispatch::default();
        for i in 0..N_SRN {
            if !self.raised[i] {
                continue;
            }
            match self.cfg[i].service {
                Service::Cpu => {}
                Service::Pcp { channel } => {
                    self.raised[i] = false;
                    out.pcp_triggers.push(channel);
                }
                Service::Dma { channel } => {
                    self.raised[i] = false;
                    out.dma_triggers.push(channel);
                }
            }
        }
        out
    }

    /// The highest-priority pending CPU interrupt, if any.
    #[must_use]
    pub fn cpu_pending(&self) -> Option<u8> {
        self.iter_cpu_pending().map(|(_, prio)| prio).max()
    }

    /// Acknowledges (clears) the pending CPU request of priority `prio`.
    /// If several share the priority, the lowest-numbered SRN wins.
    pub fn acknowledge_cpu(&mut self, prio: u8) {
        if let Some((idx, _)) = self
            .iter_cpu_pending()
            .filter(|&(_, p)| p == prio)
            .min_by_key(|&(i, _)| i)
        {
            self.raised[idx] = false;
        }
    }

    fn iter_cpu_pending(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.raised.iter().enumerate().filter_map(|(i, &r)| {
            let c = self.cfg[i];
            (r && c.prio > 0 && matches!(c.service, Service::Cpu)).then_some((i, c.prio))
        })
    }

    /// Lifetime count of raised (enabled) requests.
    #[must_use]
    pub fn raised_total(&self) -> u64 {
        self.raised_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> EventSink {
        EventSink::new()
    }

    #[test]
    fn disabled_srn_ignores_raise() {
        let mut r = IrqRouter::new();
        let mut s = sink();
        r.raise(3, Cycle(0), &mut s);
        assert_eq!(r.cpu_pending(), None);
        assert_eq!(r.raised_total(), 0);
    }

    #[test]
    fn highest_priority_wins() {
        let mut r = IrqRouter::new();
        let mut s = sink();
        r.configure(
            0,
            SrnConfig {
                prio: 5,
                enabled: true,
                service: Service::Cpu,
            },
        );
        r.configure(
            1,
            SrnConfig {
                prio: 9,
                enabled: true,
                service: Service::Cpu,
            },
        );
        r.raise(0, Cycle(0), &mut s);
        r.raise(1, Cycle(0), &mut s);
        assert_eq!(r.cpu_pending(), Some(9));
        r.acknowledge_cpu(9);
        assert_eq!(r.cpu_pending(), Some(5));
        r.acknowledge_cpu(5);
        assert_eq!(r.cpu_pending(), None);
    }

    #[test]
    fn raise_is_idempotent_while_pending() {
        let mut r = IrqRouter::new();
        let mut s = sink();
        r.configure(
            0,
            SrnConfig {
                prio: 1,
                enabled: true,
                service: Service::Cpu,
            },
        );
        r.raise(0, Cycle(0), &mut s);
        r.raise(0, Cycle(1), &mut s);
        assert_eq!(r.raised_total(), 1);
        r.acknowledge_cpu(1);
        r.raise(0, Cycle(2), &mut s);
        assert_eq!(r.raised_total(), 2);
    }

    #[test]
    fn pcp_and_dma_routing_dispatches() {
        let mut r = IrqRouter::new();
        let mut s = sink();
        r.configure(
            2,
            SrnConfig {
                prio: 3,
                enabled: true,
                service: Service::Pcp { channel: 4 },
            },
        );
        r.configure(
            3,
            SrnConfig {
                prio: 3,
                enabled: true,
                service: Service::Dma { channel: 1 },
            },
        );
        r.raise(2, Cycle(0), &mut s);
        r.raise(3, Cycle(0), &mut s);
        let d = r.dispatch();
        assert_eq!(d.pcp_triggers, vec![4]);
        assert_eq!(d.dma_triggers, vec![1]);
        assert_eq!(
            r.cpu_pending(),
            None,
            "non-CPU requests never reach the CPU"
        );
        assert_eq!(r.dispatch(), Dispatch::default(), "consumed");
    }

    #[test]
    fn events_report_raises() {
        let mut r = IrqRouter::new();
        let mut s = sink();
        r.configure(
            7,
            SrnConfig {
                prio: 2,
                enabled: true,
                service: Service::Cpu,
            },
        );
        r.raise(7, Cycle(42), &mut s);
        assert!(matches!(
            s.records()[0].event,
            PerfEvent::IrqRaised { srn: 7, prio: 2 }
        ));
    }
}
