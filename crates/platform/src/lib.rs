//! AUDO-class SoC fabric and full-chip simulator.
//!
//! This crate assembles the product-chip side of the Emulation Device block
//! diagram in Mayer & Hellwig (DATE 2008, Fig. 4): the TriCore-class CPU
//! (`audo-tricore`), the PCP co-processor (`audo-pcp`), the multi-master
//! crossbar, the embedded program flash with read/prefetch buffers and
//! code/data port arbitration, data flash, SRAM and scratchpads, the DMA
//! controller, the interrupt router with routable service request nodes,
//! automotive peripherals (system timer, ADC, CAN receiver, crank-wheel
//! sensor) and the calibration overlay into one cycle-stepped [`soc::Soc`].
//!
//! Every block emits [`audo_common::PerfEvent`]s as it runs; the `audo-ed`
//! crate attaches the MCDS to that stream.
//!
//! # Example
//!
//! ```
//! use audo_platform::config::SocConfig;
//! use audo_platform::soc::Soc;
//! use audo_tricore::asm::assemble;
//!
//! let image = assemble("
//!     .org 0x80000000
//! _start:
//!     movi d0, 6
//!     movi d1, 7
//!     mul  d2, d0, d1
//!     halt
//! ")?;
//! let mut soc = Soc::new(SocConfig::default());
//! soc.load_image(&image)?;
//! soc.run_to_halt(100_000)?;
//! assert_eq!(soc.tricore.arch().d[2], 42);
//! # Ok::<(), audo_common::SimError>(())
//! ```

pub mod cache;
pub mod config;
pub mod dma;
pub mod fabric;
pub mod flash;
pub mod irq;
pub mod periph;
pub mod soc;
pub mod xbar;

pub use config::SocConfig;
pub use fabric::Fabric;
pub use soc::{CycleObservation, Soc};
