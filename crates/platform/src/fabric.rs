//! The SoC fabric: functional storage, caches, flash timing, crossbar,
//! interrupt router, DMA engine, peripherals and the calibration overlay —
//! everything between the cores and the bits.
//!
//! Design note: the fabric keeps a **single functional copy** of all memory
//! contents ([`FlatMem`]) and layers *timing* (caches, buffers, bus
//! occupancy) on top. Timing models decide *when* data arrives; the storage
//! decides *what* arrives. This keeps multi-master semantics (CPU, PCP,
//! DMA) trivially coherent while producing the event streams the MCDS
//! observes.

use audo_common::events::{CacheId, FlashPort, MemRegion};
use audo_common::{
    AccessKind, Addr, BusTransaction, Cycle, EventSink, PerfEvent, SimError, SourceId,
};
use audo_tricore::arch::ArchMem;
use audo_tricore::bus::{CoreBus, FetchSlot, ReadSlot, FETCH_BYTES};
use audo_tricore::mem::FlatMem;

use crate::cache::Cache;
use crate::config::{
    SocConfig, ADC_BASE, CAN_BASE, CRANK_BASE, DFLASH_BASE, DMA_BASE, DSPR_BASE, EMEM_BASE,
    OVC_BASE, PFLASH_BASE, PFLASH_UNCACHED_SEG, PSPR_BASE, SRAM_BASE, SRC_BASE, STM_BASE,
};
use crate::dma::DmaState;
use crate::flash::FlashTiming;
use crate::irq::{IrqRouter, Service, SrnConfig};
use crate::periph::{Adc, CanRx, Crank, Stm};
use crate::xbar::{Slave, Xbar};

pub use crate::config::Region;

/// One calibration-overlay page-map entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OvcEntry {
    /// Redirection active.
    pub enabled: bool,
    /// Flash page index (page = [`SocConfig::overlay_page`] bytes).
    pub flash_page: u32,
    /// EMEM page index the page is redirected to.
    pub emem_page: u32,
}

/// The overlay control unit: redirects data accesses of mapped flash pages
/// into EMEM, which is how calibration tuning works on the real ED.
#[derive(Debug, Clone)]
pub struct Overlay {
    page_shift: u32,
    entries: Vec<OvcEntry>,
}

impl Overlay {
    fn new(page_bytes: u32, n: usize) -> Overlay {
        assert!(page_bytes.is_power_of_two());
        Overlay {
            page_shift: page_bytes.trailing_zeros(),
            entries: vec![OvcEntry::default(); n],
        }
    }

    /// Maps flash page containing `flash_off` → EMEM offset, if overlaid.
    #[must_use]
    pub fn translate(&self, flash_off: u32) -> Option<u32> {
        let page = flash_off >> self.page_shift;
        let within = flash_off & ((1 << self.page_shift) - 1);
        self.entries
            .iter()
            .find(|e| e.enabled && e.flash_page == page)
            .map(|e| (e.emem_page << self.page_shift) | within)
    }

    /// Programs entry `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_entry(&mut self, idx: usize, entry: OvcEntry) {
        self.entries[idx] = entry;
    }

    /// Reads entry `idx`.
    #[must_use]
    pub fn entry(&self, idx: usize) -> OvcEntry {
        self.entries[idx]
    }

    /// Number of page-map entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries exist (never the case for real configs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn mmio_read(&self, offset: u32) -> u32 {
        let (idx, reg) = ((offset / 8) as usize, offset % 8);
        let Some(e) = self.entries.get(idx) else {
            return 0;
        };
        match reg {
            0 => e.flash_page | (u32::from(e.enabled) << 31),
            4 => e.emem_page,
            _ => 0,
        }
    }

    fn mmio_write(&mut self, offset: u32, value: u32) {
        let (idx, reg) = ((offset / 8) as usize, offset % 8);
        let Some(e) = self.entries.get_mut(idx) else {
            return;
        };
        match reg {
            0 => {
                e.flash_page = value & 0x7FFF_FFFF;
                e.enabled = value & 0x8000_0000 != 0;
            }
            4 => e.emem_page = value,
            _ => {}
        }
    }
}

/// Everything the product chip's interconnect contains.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// The configuration the fabric was built from.
    pub cfg: SocConfig,
    storage: FlatMem,
    /// Instruction cache.
    pub icache: Cache,
    /// Data cache.
    pub dcache: Cache,
    /// Program-flash timing (PMU).
    pub flash: FlashTiming,
    /// The crossbar.
    pub xbar: Xbar,
    /// Interrupt router.
    pub irq: IrqRouter,
    /// DMA controller.
    pub dma: DmaState,
    /// System timer.
    pub stm: Stm,
    /// ADC.
    pub adc: Adc,
    /// CAN receiver.
    pub can: CanRx,
    /// Crank-wheel sensor.
    pub crank: Crank,
    /// Calibration overlay.
    pub overlay: Overlay,
    /// Event sink for fabric-side events (caches, flash, bus, IRQ, DMA).
    pub sink: EventSink,
    /// Bus transactions observed this cycle (MCDS bus observation).
    pub bus_obs: Vec<BusTransaction>,
    dma_beats: u64,
}

impl Fabric {
    /// Builds the fabric (allocating all memories zero-initialised).
    #[must_use]
    pub fn new(cfg: SocConfig) -> Fabric {
        let mut storage = FlatMem::new();
        storage.add_region(PFLASH_BASE, cfg.pflash_size.bytes() as u32);
        storage.add_region(DFLASH_BASE, cfg.dflash_size.bytes() as u32);
        storage.add_region(SRAM_BASE, cfg.sram_size.bytes() as u32);
        storage.add_region(PSPR_BASE, cfg.pspr_size.bytes() as u32);
        storage.add_region(DSPR_BASE, cfg.dspr_size.bytes() as u32);
        storage.add_region(EMEM_BASE, cfg.emem_size.bytes() as u32);
        let cpu_hz = cfg.cpu_clock.0;
        Fabric {
            icache: Cache::new(&cfg.icache),
            dcache: Cache::new(&cfg.dcache),
            flash: FlashTiming::new(cfg.flash.clone()),
            xbar: Xbar::new(),
            irq: IrqRouter::new(),
            dma: DmaState::new(),
            stm: Stm::default(),
            adc: Adc::new(0xA5A5_0001),
            can: CanRx::new(0x5A5A_0002),
            crank: Crank::new(cpu_hz),
            overlay: Overlay::new(cfg.overlay_page, cfg.overlay_entries),
            sink: EventSink::new(),
            bus_obs: Vec::new(),
            dma_beats: 0,
            storage,
            cfg,
        }
    }

    /// Classifies an address (delegates to [`SocConfig::region_of`]).
    #[must_use]
    pub fn region_of(&self, addr: Addr) -> Region {
        self.cfg.region_of(addr)
    }

    // ------------------------------------------------------------------
    // Functional backdoors (no timing, no events)
    // ------------------------------------------------------------------

    /// Functional read without timing or events (loader/tool backdoor).
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned addresses.
    pub fn peek(&mut self, addr: Addr, size: u8) -> Result<u32, SimError> {
        let a = self.canonical(addr);
        self.storage.read(a, size)
    }

    /// Functional write without timing or events (loader/tool backdoor).
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned addresses.
    pub fn poke(&mut self, addr: Addr, size: u8, value: u32) -> Result<(), SimError> {
        let a = self.canonical(addr);
        self.storage.write(a, size, value)
    }

    /// Reads a byte range via the backdoor.
    ///
    /// # Errors
    ///
    /// Fails if any byte is unmapped.
    pub fn peek_bytes(&self, addr: Addr, len: usize) -> Result<Vec<u8>, SimError> {
        let a = if addr.segment() == PFLASH_UNCACHED_SEG {
            addr.with_segment(0x8)
        } else {
            addr
        };
        self.storage.read_bytes(a, len)
    }

    fn canonical(&self, addr: Addr) -> Addr {
        if addr.segment() == PFLASH_UNCACHED_SEG {
            addr.with_segment(0x8)
        } else {
            addr
        }
    }

    // ------------------------------------------------------------------
    // The data path
    // ------------------------------------------------------------------

    /// Performs a timed data access on behalf of `master`.
    ///
    /// Returns `(value, done)`: for reads `done` is data arrival, for writes
    /// it is store acceptance.
    ///
    /// # Errors
    ///
    /// Fails on unmapped/misaligned addresses and writes to (non-overlaid)
    /// program flash.
    pub fn data_access(
        &mut self,
        now: Cycle,
        master: SourceId,
        addr: Addr,
        size: u8,
        kind: AccessKind,
        value: Option<u32>,
    ) -> Result<(u32, Cycle), SimError> {
        let payload = value;
        let (v, done) = self.data_access_inner(now, master, addr, size, kind, value)?;
        // Addressed observation for the MCDS data-trace qualifiers.
        self.sink.emit(
            now,
            master,
            PerfEvent::DataValue {
                addr,
                value: payload.unwrap_or(v),
                kind,
                size,
            },
        );
        Ok((v, done))
    }

    fn data_access_inner(
        &mut self,
        now: Cycle,
        master: SourceId,
        addr: Addr,
        size: u8,
        kind: AccessKind,
        value: Option<u32>,
    ) -> Result<(u32, Cycle), SimError> {
        let region = self.region_of(addr);
        let is_write = value.is_some();
        match region {
            Region::Dspr => {
                self.sink.emit(
                    now,
                    master,
                    PerfEvent::DataAccess {
                        region: MemRegion::Dspr,
                        kind,
                    },
                );
                let v = self.rw(addr, size, value)?;
                Ok((v, now))
            }
            Region::Pspr => {
                self.sink.emit(
                    now,
                    master,
                    PerfEvent::DataAccess {
                        region: MemRegion::Pspr,
                        kind,
                    },
                );
                let v = self.rw(addr, size, value)?;
                Ok((v, now + 1))
            }
            Region::Sram => {
                self.sink.emit(
                    now,
                    master,
                    PerfEvent::DataAccess {
                        region: MemRegion::Sram,
                        kind,
                    },
                );
                let start = self.xbar.grant(
                    now,
                    master,
                    Slave::Sram,
                    addr,
                    kind,
                    size,
                    1,
                    &mut self.sink,
                    &mut self.bus_obs,
                );
                let v = self.rw(addr, size, value)?;
                let done = if is_write {
                    start
                } else {
                    start + self.cfg.sram_latency
                };
                Ok((v, done))
            }
            Region::PflashCached | Region::PflashUncached => {
                let flash_addr = self.canonical(addr);
                let flash_off = flash_addr.0 - PFLASH_BASE.0;
                // Calibration overlay: redirect mapped pages into EMEM.
                if let Some(emem_off) = self.overlay.translate(flash_off) {
                    self.sink.emit(
                        now,
                        master,
                        PerfEvent::DataAccess {
                            region: MemRegion::Emem,
                            kind,
                        },
                    );
                    let eaddr = EMEM_BASE.offset(emem_off);
                    let start = self.xbar.grant(
                        now,
                        master,
                        Slave::Emem,
                        eaddr,
                        kind,
                        size,
                        1,
                        &mut self.sink,
                        &mut self.bus_obs,
                    );
                    let v = self.rw(eaddr, size, value)?;
                    let done = if is_write {
                        start
                    } else {
                        start + self.cfg.emem_latency
                    };
                    return Ok((v, done));
                }
                if is_write {
                    return Err(SimError::ProgramFault {
                        message: format!("data write to program flash at {addr}"),
                    });
                }
                self.sink.emit(
                    now,
                    master,
                    PerfEvent::DataAccess {
                        region: MemRegion::PFlash,
                        kind,
                    },
                );
                // Cached view goes through the D-cache.
                if region == Region::PflashCached && self.dcache.lookup(flash_addr) {
                    self.sink.emit(
                        now,
                        master,
                        PerfEvent::CacheHit {
                            cache: CacheId::Data,
                        },
                    );
                    let v = self.rw(flash_addr, size, None)?;
                    return Ok((v, now));
                }
                if region == Region::PflashCached {
                    self.sink.emit(
                        now,
                        master,
                        PerfEvent::CacheMiss {
                            cache: CacheId::Data,
                        },
                    );
                }
                let start = self.xbar.grant(
                    now,
                    master,
                    Slave::PflashData,
                    flash_addr,
                    kind,
                    size,
                    1,
                    &mut self.sink,
                    &mut self.bus_obs,
                );
                let ready = self
                    .flash
                    .access(start, flash_addr, FlashPort::Data, &mut self.sink);
                if region == Region::PflashCached {
                    self.dcache.fill(flash_addr);
                }
                let v = self.rw(flash_addr, size, None)?;
                Ok((v, ready))
            }
            Region::Dflash => {
                self.sink.emit(
                    now,
                    master,
                    PerfEvent::DataAccess {
                        region: MemRegion::DFlash,
                        kind,
                    },
                );
                let occupancy = if is_write {
                    self.cfg.dflash_write_busy
                } else {
                    self.cfg.dflash_read_latency
                };
                let start = self.xbar.grant(
                    now,
                    master,
                    Slave::Dflash,
                    addr,
                    kind,
                    size,
                    occupancy,
                    &mut self.sink,
                    &mut self.bus_obs,
                );
                let v = self.rw(addr, size, value)?;
                let done = if is_write {
                    start
                } else {
                    start + self.cfg.dflash_read_latency
                };
                Ok((v, done))
            }
            Region::Emem => {
                self.sink.emit(
                    now,
                    master,
                    PerfEvent::DataAccess {
                        region: MemRegion::Emem,
                        kind,
                    },
                );
                let start = self.xbar.grant(
                    now,
                    master,
                    Slave::Emem,
                    addr,
                    kind,
                    size,
                    1,
                    &mut self.sink,
                    &mut self.bus_obs,
                );
                let v = self.rw(addr, size, value)?;
                let done = if is_write {
                    start
                } else {
                    start + self.cfg.emem_latency
                };
                Ok((v, done))
            }
            Region::Periph => {
                self.sink.emit(
                    now,
                    master,
                    PerfEvent::DataAccess {
                        region: MemRegion::Periph,
                        kind,
                    },
                );
                let start = self.xbar.grant(
                    now,
                    master,
                    Slave::Periph,
                    addr,
                    kind,
                    size,
                    1,
                    &mut self.sink,
                    &mut self.bus_obs,
                );
                let done = start + self.cfg.periph_latency;
                let v = match value {
                    Some(v) => {
                        self.mmio_write(now, addr, v);
                        0
                    }
                    None => self.mmio_read(addr),
                };
                Ok((v, done))
            }
            Region::Unmapped => Err(SimError::UnmappedAddress { addr }),
        }
    }

    fn rw(&mut self, addr: Addr, size: u8, value: Option<u32>) -> Result<u32, SimError> {
        match value {
            Some(v) => {
                self.storage.write(addr, size, v)?;
                Ok(0)
            }
            None => self.storage.read(addr, size),
        }
    }

    // ------------------------------------------------------------------
    // MMIO dispatch
    // ------------------------------------------------------------------

    fn mmio_read(&mut self, addr: Addr) -> u32 {
        let off = addr.0 & 0xFFF;
        match addr.align_down(0x1000) {
            a if a == STM_BASE => self.stm.mmio_read(off),
            a if a == ADC_BASE => self.adc.mmio_read(off),
            a if a == DMA_BASE => self.dma.mmio_read(off),
            a if a == CAN_BASE => self.can.mmio_read(off),
            a if a == CRANK_BASE => self.crank.mmio_read(off),
            a if a == OVC_BASE => self.overlay.mmio_read(off),
            a if a == SRC_BASE => {
                let srn = (off / 4) as u8;
                if usize::from(srn) >= crate::irq::N_SRN {
                    return 0;
                }
                let c = self.irq.config(srn);
                let (svc, chan) = match c.service {
                    Service::Cpu => (0u32, 0u32),
                    Service::Pcp { channel } => (1, u32::from(channel)),
                    Service::Dma { channel } => (2, u32::from(channel)),
                };
                u32::from(c.prio) | (u32::from(c.enabled) << 8) | (svc << 9) | (chan << 11)
            }
            _ => 0,
        }
    }

    fn mmio_write(&mut self, now: Cycle, addr: Addr, value: u32) {
        let off = addr.0 & 0xFFF;
        match addr.align_down(0x1000) {
            a if a == STM_BASE => self.stm.mmio_write(off, value),
            a if a == ADC_BASE => self.adc.mmio_write(off, value, now),
            a if a == DMA_BASE => self.dma.mmio_write(off, value),
            a if a == CAN_BASE => self.can.mmio_write(off, value, now),
            a if a == CRANK_BASE => self.crank.mmio_write(off, value, now),
            a if a == OVC_BASE => self.overlay.mmio_write(off, value),
            a if a == SRC_BASE => {
                let srn = (off / 4) as u8;
                if usize::from(srn) >= crate::irq::N_SRN {
                    return;
                }
                let service = match (value >> 9) & 3 {
                    1 => Service::Pcp {
                        channel: ((value >> 11) & 0xFF) as u8,
                    },
                    2 => Service::Dma {
                        channel: ((value >> 11) & 0xFF) as u8,
                    },
                    _ => Service::Cpu,
                };
                self.irq.configure(
                    srn,
                    SrnConfig {
                        prio: (value & 0xFF) as u8,
                        enabled: value & (1 << 8) != 0,
                        service,
                    },
                );
                if value & (1 << 31) != 0 {
                    // Software SETR.
                    let sink = &mut self.sink;
                    self.irq.raise(srn, now, sink);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Per-cycle engines
    // ------------------------------------------------------------------

    /// Advances peripherals, the flash prefetcher, interrupt dispatch and
    /// the DMA engine by one cycle. Returns PCP channels to trigger.
    ///
    /// # Errors
    ///
    /// Propagates DMA access faults (bad channel programming).
    pub fn step(&mut self, now: Cycle) -> Result<Vec<u8>, SimError> {
        self.stm.step(now, &mut self.irq, &mut self.sink);
        self.adc.step(now, &mut self.irq, &mut self.sink);
        self.can.step(now, &mut self.irq, &mut self.sink);
        self.crank.step(now, &mut self.irq, &mut self.sink);
        self.flash.step(now, &mut self.sink);
        let disp = self.irq.dispatch();
        for ch in &disp.dma_triggers {
            self.dma.request(*ch);
        }
        self.step_dma(now)?;
        Ok(disp.pcp_triggers)
    }

    fn step_dma(&mut self, now: Cycle) -> Result<(), SimError> {
        if now.0 < self.dma.busy_until {
            return Ok(());
        }
        let Some(chi) = self.dma.next_ready() else {
            return Ok(());
        };
        let (src, dst) = (self.dma.ch[chi].src, self.dma.ch[chi].dst);
        let (v, ready) =
            self.data_access(now, SourceId::DMA, Addr(src), 4, AccessKind::Read, None)?;
        let (_, accepted) = self.data_access(
            ready,
            SourceId::DMA,
            Addr(dst),
            4,
            AccessKind::Write,
            Some(v),
        )?;
        self.dma.busy_until = ready.max(accepted).0 + 1;
        self.dma_beats += 1;
        self.sink.emit(
            now,
            SourceId::DMA,
            PerfEvent::DmaBeat { channel: chi as u8 },
        );
        let ch = &mut self.dma.ch[chi];
        ch.src = ch.src.wrapping_add(ch.src_inc as u32);
        ch.dst = ch.dst.wrapping_add(ch.dst_inc as u32);
        ch.pending -= 1;
        ch.count -= 1;
        ch.beats_done += 1;
        if ch.count == 0 {
            let done_srn = ch.done_srn;
            let circular = ch.circular;
            if circular {
                ch.reload();
            } else {
                ch.enabled = false;
                ch.pending = 0;
            }
            self.sink.emit(
                now,
                SourceId::DMA,
                PerfEvent::DmaDone { channel: chi as u8 },
            );
            if let Some(srn) = done_srn {
                let sink = &mut self.sink;
                self.irq.raise(srn, now, sink);
            }
        }
        Ok(())
    }

    /// Total DMA beats moved.
    #[must_use]
    pub fn dma_beats(&self) -> u64 {
        self.dma_beats
    }
}

// ----------------------------------------------------------------------
// Bus-facing trait implementations
// ----------------------------------------------------------------------

impl CoreBus for Fabric {
    fn fetch(&mut self, now: Cycle, addr: Addr) -> Result<FetchSlot, SimError> {
        let base = addr.align_down(FETCH_BYTES);
        let region = self.region_of(base);
        let ready = match region {
            Region::Pspr => now + 1,
            Region::PflashCached => {
                if self.icache.lookup(base) {
                    self.sink.emit(
                        now,
                        SourceId::TRICORE,
                        PerfEvent::CacheHit {
                            cache: CacheId::Instruction,
                        },
                    );
                    now + 1
                } else {
                    self.sink.emit(
                        now,
                        SourceId::TRICORE,
                        PerfEvent::CacheMiss {
                            cache: CacheId::Instruction,
                        },
                    );
                    self.sink
                        .emit(now, SourceId::TRICORE, PerfEvent::FlashCodeFetch);
                    let ready = self
                        .flash
                        .access(now, base, FlashPort::Code, &mut self.sink);
                    self.icache.fill(base);
                    ready + 1
                }
            }
            Region::PflashUncached => {
                self.sink
                    .emit(now, SourceId::TRICORE, PerfEvent::FlashCodeFetch);
                let a = self.canonical(base);
                self.flash.access(now, a, FlashPort::Code, &mut self.sink) + 1
            }
            // Executing from data memories is architecturally allowed but
            // slow (through the crossbar).
            Region::Sram | Region::Dspr | Region::Emem => now + self.cfg.sram_latency + 1,
            _ => return Err(SimError::UnmappedAddress { addr: base }),
        };
        let a = self.canonical(base);
        let mut bytes = [0u8; FETCH_BYTES as usize];
        self.storage.read_into(a, &mut bytes)?;
        Ok(FetchSlot {
            bytes,
            ready_at: ready,
        })
    }

    fn read(&mut self, now: Cycle, addr: Addr, size: u8) -> Result<ReadSlot, SimError> {
        let (value, ready_at) =
            self.data_access(now, SourceId::TRICORE, addr, size, AccessKind::Read, None)?;
        Ok(ReadSlot { value, ready_at })
    }

    fn write(&mut self, now: Cycle, addr: Addr, size: u8, value: u32) -> Result<Cycle, SimError> {
        let (_, accepted) = self.data_access(
            now,
            SourceId::TRICORE,
            addr,
            size,
            AccessKind::Write,
            Some(value),
        )?;
        Ok(accepted)
    }

    fn code_region(&self, addr: Addr) -> Option<(u32, u64)> {
        // Must mirror `fetch` exactly: fetched bytes come from `storage` at
        // the canonical address (the uncached flash segment aliases the
        // cached one), so the stamp is that region's write generation.
        self.storage.region_stamp(self.canonical(addr))
    }
}

/// View of the fabric as the PCP's bus master port.
#[derive(Debug)]
pub struct PcpPort<'a>(pub &'a mut Fabric);

impl audo_pcp::PcpBus for PcpPort<'_> {
    fn read(&mut self, now: Cycle, addr: Addr) -> Result<(u32, Cycle), SimError> {
        self.0
            .data_access(now, SourceId::PCP, addr, 4, AccessKind::Read, None)
    }

    fn write(&mut self, now: Cycle, addr: Addr, value: u32) -> Result<Cycle, SimError> {
        let (_, accepted) =
            self.0
                .data_access(now, SourceId::PCP, addr, 4, AccessKind::Write, Some(value))?;
        Ok(accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(SocConfig::default())
    }

    #[test]
    fn region_classification() {
        let f = fabric();
        assert_eq!(f.region_of(Addr(0xD000_0000)), Region::Dspr);
        assert_eq!(f.region_of(Addr(0xC000_0000)), Region::Pspr);
        assert_eq!(f.region_of(Addr(0x9000_0000)), Region::Sram);
        assert_eq!(f.region_of(Addr(0x8000_1234)), Region::PflashCached);
        assert_eq!(f.region_of(Addr(0xA000_1234)), Region::PflashUncached);
        assert_eq!(f.region_of(Addr(0x8F00_0000)), Region::Dflash);
        assert_eq!(f.region_of(Addr(0xE000_0000)), Region::Emem);
        assert_eq!(f.region_of(Addr(0xF000_0000)), Region::Periph);
        assert_eq!(f.region_of(Addr(0x1234_5678)), Region::Unmapped);
    }

    #[test]
    fn uncached_alias_reads_same_bytes() {
        let mut f = fabric();
        f.poke(Addr(0x8000_0100), 4, 0xCAFE_F00D).unwrap();
        let (v, _) = f
            .data_access(
                Cycle(0),
                SourceId::TRICORE,
                Addr(0xA000_0100),
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        assert_eq!(v, 0xCAFE_F00D);
    }

    #[test]
    fn dspr_is_fast_sram_pays_latency_flash_pays_wait_states() {
        let mut f = fabric();
        let (_, t_dspr) = f
            .data_access(
                Cycle(10),
                SourceId::TRICORE,
                Addr(0xD000_0000),
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        let (_, t_sram) = f
            .data_access(
                Cycle(10),
                SourceId::TRICORE,
                Addr(0x9000_0000),
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        let (_, t_flash) = f
            .data_access(
                Cycle(10),
                SourceId::TRICORE,
                Addr(0xA000_0000),
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        assert_eq!(t_dspr, Cycle(10));
        assert_eq!(t_sram, Cycle(12));
        assert_eq!(t_flash, Cycle(15), "5 wait states");
    }

    #[test]
    fn dcache_caches_flash_data() {
        let mut f = fabric();
        let a = Addr(0x8000_2000);
        let (_, t1) = f
            .data_access(Cycle(0), SourceId::TRICORE, a, 4, AccessKind::Read, None)
            .unwrap();
        assert!(t1 > Cycle(0), "first access misses");
        let (_, t2) = f
            .data_access(Cycle(100), SourceId::TRICORE, a, 4, AccessKind::Read, None)
            .unwrap();
        assert_eq!(t2, Cycle(100), "second access hits the D-cache");
        let hits: usize = f
            .sink
            .records()
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    PerfEvent::CacheHit {
                        cache: CacheId::Data
                    }
                )
            })
            .count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn flash_write_is_a_fault_unless_overlaid() {
        let mut f = fabric();
        let e = f
            .data_access(
                Cycle(0),
                SourceId::TRICORE,
                Addr(0x8000_0000),
                4,
                AccessKind::Write,
                Some(1),
            )
            .unwrap_err();
        assert!(matches!(e, SimError::ProgramFault { .. }));
    }

    #[test]
    fn overlay_redirects_reads_and_writes_to_emem() {
        let mut f = fabric();
        // Map flash page 3 to EMEM page 0.
        f.overlay.set_entry(
            0,
            OvcEntry {
                enabled: true,
                flash_page: 3,
                emem_page: 0,
            },
        );
        let page = f.cfg.overlay_page;
        let flash_addr = Addr(PFLASH_BASE.0 + 3 * page + 0x10);
        // Write through the overlay...
        f.data_access(
            Cycle(0),
            SourceId::TRICORE,
            flash_addr,
            4,
            AccessKind::Write,
            Some(77),
        )
        .unwrap();
        // ...lands in EMEM...
        assert_eq!(f.peek(EMEM_BASE.offset(0x10), 4).unwrap(), 77);
        // ...and reads back through the flash address.
        let (v, _) = f
            .data_access(
                Cycle(1),
                SourceId::TRICORE,
                flash_addr,
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        assert_eq!(v, 77);
        // The underlying flash bytes are untouched.
        assert_eq!(f.peek(flash_addr, 4).unwrap(), 0);
    }

    #[test]
    fn mmio_stm_counts_cycles() {
        let mut f = fabric();
        for c in 0..100u64 {
            f.step(Cycle(c)).unwrap();
        }
        let (v, _) = f
            .data_access(
                Cycle(100),
                SourceId::TRICORE,
                STM_BASE,
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        assert_eq!(v, 99, "STM tracks the cycle counter");
    }

    #[test]
    fn src_mmio_roundtrip_and_software_raise() {
        let mut f = fabric();
        let src20 = Addr(SRC_BASE.0 + 20 * 4);
        // prio 5, enabled, dest PCP channel 3.
        let cfg_word = 5 | (1 << 8) | (1 << 9) | (3 << 11);
        f.data_access(
            Cycle(0),
            SourceId::TRICORE,
            src20,
            4,
            AccessKind::Write,
            Some(cfg_word),
        )
        .unwrap();
        let (v, _) = f
            .data_access(
                Cycle(1),
                SourceId::TRICORE,
                src20,
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        assert_eq!(v, cfg_word);
        // SETR raises it; dispatch triggers PCP channel 3.
        f.data_access(
            Cycle(2),
            SourceId::TRICORE,
            src20,
            4,
            AccessKind::Write,
            Some(cfg_word | (1 << 31)),
        )
        .unwrap();
        let triggers = f.step(Cycle(3)).unwrap();
        assert_eq!(triggers, vec![3]);
    }

    #[test]
    fn dma_moves_a_block_and_raises_done() {
        let mut f = fabric();
        for i in 0..4u32 {
            f.poke(Addr(0x9000_0000 + i * 4), 4, 100 + i).unwrap();
        }
        // Configure SRN 8 (DMA done) to CPU prio 1.
        f.irq.configure(
            8,
            SrnConfig {
                prio: 1,
                enabled: true,
                service: Service::Cpu,
            },
        );
        // Program channel 0: SRAM -> DSPR, 4 words.
        f.dma.mmio_write(0x00, 0x9000_0000);
        f.dma.mmio_write(0x04, 0xD000_0100);
        f.dma.mmio_write(0x08, 4);
        f.dma.mmio_write(0x10, 4);
        f.dma.mmio_write(0x14, 4);
        f.dma.mmio_write(0x0C, 1 | ((8 + 1) << 8));
        f.dma.mmio_write(0x18, 4); // software-trigger 4 beats
        for c in 0..100u64 {
            f.step(Cycle(c)).unwrap();
        }
        for i in 0..4u32 {
            assert_eq!(f.peek(Addr(0xD000_0100 + i * 4), 4).unwrap(), 100 + i);
        }
        assert_eq!(f.irq.cpu_pending(), Some(1), "done SRN raised");
        assert_eq!(f.dma_beats(), 4);
        assert!(!f.dma.ch[0].enabled, "non-circular channel disables itself");
    }

    #[test]
    fn fetch_from_pspr_and_flash() {
        let mut f = fabric();
        use audo_tricore::bus::CoreBus;
        f.poke(Addr(0xC000_0000), 4, 0x1234_5678).unwrap();
        let slot = f.fetch(Cycle(0), Addr(0xC000_0000)).unwrap();
        assert_eq!(slot.ready_at, Cycle(1));
        assert_eq!(&slot.bytes[..4], &0x1234_5678u32.to_le_bytes());
        // Flash fetch: first miss pays wait states, second hits the I-cache.
        let s1 = f.fetch(Cycle(10), Addr(0x8000_0000)).unwrap();
        assert!(s1.ready_at > Cycle(11));
        let s2 = f.fetch(Cycle(30), Addr(0x8000_0000)).unwrap();
        assert_eq!(s2.ready_at, Cycle(31), "I-cache hit");
    }

    #[test]
    fn adc_to_dma_chain_fills_buffer() {
        let mut f = fabric();
        // ADC fires every 50 cycles; SRN 2 routed to DMA channel 1.
        f.adc.mmio_write(0x04, 50, Cycle(0));
        f.adc.mmio_write(0x00, 1, Cycle(0));
        f.irq.configure(
            2,
            SrnConfig {
                prio: 1,
                enabled: true,
                service: Service::Dma { channel: 1 },
            },
        );
        // DMA ch1: read ADC RESULT register, write DSPR buffer, 8 results, circular source.
        f.dma.mmio_write(0x20, ADC_BASE.0 + 0x0C);
        f.dma.mmio_write(0x24, 0xD000_0200);
        f.dma.mmio_write(0x28, 8);
        f.dma.mmio_write(0x30, 0); // src fixed
        f.dma.mmio_write(0x34, 4); // dst increments
        f.dma.mmio_write(0x2C, 1);
        for c in 0..600u64 {
            f.step(Cycle(c)).unwrap();
        }
        // 8 conversions moved into DSPR.
        let mut nonzero = 0;
        for i in 0..8u32 {
            if f.peek(Addr(0xD000_0200 + i * 4), 4).unwrap() != 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero >= 6, "ADC samples landed in memory ({nonzero}/8)");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(SocConfig::default())
    }

    #[test]
    fn dflash_writes_are_slow_and_serialize() {
        // EEPROM emulation: a write occupies the data flash for the
        // programming time; a following read must wait.
        let mut f = fabric();
        let (_, t_w) = f
            .data_access(
                Cycle(0),
                SourceId::TRICORE,
                DFLASH_BASE,
                4,
                AccessKind::Write,
                Some(7),
            )
            .unwrap();
        assert_eq!(t_w, Cycle(0), "the store itself is fire-and-forget");
        let (v, t_r) = f
            .data_access(
                Cycle(5),
                SourceId::TRICORE,
                DFLASH_BASE,
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        assert_eq!(v, 7, "functional value visible");
        let busy = f.cfg.dflash_write_busy;
        assert!(
            t_r.0 >= busy,
            "read must wait out the {busy}-cycle programming window, got {t_r}"
        );
    }

    #[test]
    fn sram_contention_between_cpu_and_dma_is_counted() {
        let mut f = fabric();
        let a = Addr(0x9000_0000);
        // Two masters hit the SRAM in the same cycle: the second waits.
        let (_, t1) = f
            .data_access(Cycle(0), SourceId::TRICORE, a, 4, AccessKind::Read, None)
            .unwrap();
        let (_, t2) = f
            .data_access(
                Cycle(0),
                SourceId::DMA,
                a.offset(4),
                4,
                AccessKind::Read,
                None,
            )
            .unwrap();
        assert!(t2 > t1, "second master serialized ({t1} then {t2})");
        let contended = f
            .sink
            .records()
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    PerfEvent::BusContention {
                        master: SourceId::DMA,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(contended, 1);
    }

    #[test]
    fn ovc_programming_via_mmio_enables_redirection() {
        // The target (or a monitor) can program the overlay through MMIO,
        // not just through the Rust API.
        let mut f = fabric();
        let page = f.cfg.overlay_page;
        // Entry 2: flash page 5 -> EMEM page 1, enabled.
        let e2 = Addr(crate::config::OVC_BASE.0 + 2 * 8);
        f.data_access(
            Cycle(0),
            SourceId::TRICORE,
            e2,
            4,
            AccessKind::Write,
            Some(5 | 0x8000_0000),
        )
        .unwrap();
        f.data_access(
            Cycle(1),
            SourceId::TRICORE,
            e2.offset(4),
            4,
            AccessKind::Write,
            Some(1),
        )
        .unwrap();
        assert_eq!(f.overlay.translate(5 * page + 12), Some(page + 12));
        // Read back through MMIO.
        let (v, _) = f
            .data_access(Cycle(2), SourceId::TRICORE, e2, 4, AccessKind::Read, None)
            .unwrap();
        assert_eq!(v, 5 | 0x8000_0000);
    }

    #[test]
    fn executing_from_sram_is_allowed_but_slow() {
        use audo_tricore::bus::CoreBus;
        let mut f = fabric();
        let slot = f.fetch(Cycle(0), Addr(0x9000_0000)).unwrap();
        assert!(slot.ready_at > Cycle(1), "SRAM fetch pays crossbar latency");
        let err = f.fetch(Cycle(0), Addr(0x1234_0000)).unwrap_err();
        assert!(matches!(err, SimError::UnmappedAddress { .. }));
    }

    #[test]
    fn pcp_port_accesses_are_attributed_to_the_pcp() {
        use audo_pcp::PcpBus;
        let mut f = fabric();
        {
            let mut port = PcpPort(&mut f);
            port.write(Cycle(0), Addr(0x9000_0010), 99).unwrap();
            let (v, _) = port.read(Cycle(1), Addr(0x9000_0010)).unwrap();
            assert_eq!(v, 99);
        }
        let pcp_events = f
            .sink
            .records()
            .iter()
            .filter(|e| {
                e.source == SourceId::PCP && matches!(e.event, PerfEvent::DataAccess { .. })
            })
            .count();
        assert_eq!(pcp_events, 2, "read + write attributed to the PCP master");
    }
}
