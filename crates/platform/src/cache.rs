//! Timing-only set-associative cache model.
//!
//! The SoC keeps a single functional copy of all memory contents, so caches
//! here track only *presence* (tags + true-LRU), not data. This makes the
//! model trivially coherent with DMA and PCP traffic while still producing
//! the exact hit/miss event streams the profiling methodology measures.
//! Semantically this corresponds to a write-through, no-write-allocate
//! data cache — which is what AUDO-class devices use for safety reasons.

use audo_common::Addr;

use crate::config::CacheConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    lru: u64,
}

/// A set-associative, true-LRU, timing-only cache.
///
/// # Examples
///
/// ```
/// use audo_common::{Addr, ByteSize};
/// use audo_platform::cache::Cache;
/// use audo_platform::config::CacheConfig;
///
/// let mut c = Cache::new(&CacheConfig {
///     size: ByteSize::kib(1),
///     ways: 2,
///     line: 32,
///     enabled: true,
/// });
/// assert!(!c.lookup(Addr(0x1000)));
/// c.fill(Addr(0x1000));
/// assert!(c.lookup(Addr(0x1010)), "same line hits");
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    line_shift: u32,
    set_mask: u32,
    enabled: bool,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// `ways × line`-sized sets, or non-power-of-two line/set count).
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Cache {
        assert!(
            cfg.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways >= 1);
        let lines_total = (cfg.size.bytes() / u64::from(cfg.line)) as usize;
        assert!(lines_total >= cfg.ways, "cache smaller than one set");
        let n_sets = lines_total / cfg.ways;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![vec![Line::default(); cfg.ways]; n_sets],
            line_shift: cfg.line.trailing_zeros(),
            set_mask: (n_sets - 1) as u32,
            enabled: cfg.enabled,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, addr: Addr) -> (usize, u32) {
        let line = addr.0 >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Looks up `addr`, updating LRU on hit. Returns `true` on hit.
    pub fn lookup(&mut self, addr: Addr) -> bool {
        if !self.enabled {
            return false;
        }
        self.tick += 1;
        let (set, tag) = self.index(addr);
        for l in &mut self.sets[set] {
            if l.valid && l.tag == tag {
                l.lru = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Installs the line containing `addr`, evicting the LRU way.
    pub fn fill(&mut self, addr: Addr) {
        if !self.enabled {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let way = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one way");
        self.sets[set][way] = Line {
            tag,
            valid: true,
            lru: tick,
        };
    }

    /// Invalidates everything.
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for l in set {
                l.valid = false;
            }
        }
    }

    /// Lifetime (hits, misses) counters — simulator-internal ground truth.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_common::ByteSize;

    fn small() -> Cache {
        // 4 sets × 2 ways × 32 B = 256 B.
        Cache::new(&CacheConfig {
            size: ByteSize(256),
            ways: 2,
            line: 32,
            enabled: true,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.lookup(Addr(0x8000_0000)));
        c.fill(Addr(0x8000_0000));
        assert!(c.lookup(Addr(0x8000_0000)));
        assert!(c.lookup(Addr(0x8000_001F)), "whole line present");
        assert!(!c.lookup(Addr(0x8000_0020)), "next line absent");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 lines × 32 B).
        let a = Addr(0x0000);
        let b = Addr(0x0080); // 4 lines later -> same set 0
        let d = Addr(0x0100);
        c.fill(a);
        c.fill(b);
        assert!(c.lookup(a));
        // Fill a third line: evicts b (LRU since a was just touched).
        c.fill(d);
        assert!(c.lookup(a), "recently used survives");
        assert!(!c.lookup(b), "LRU way evicted");
        assert!(c.lookup(d));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = Cache::new(&CacheConfig::disabled());
        c.fill(Addr(0x100));
        assert!(!c.lookup(Addr(0x100)));
        assert_eq!(c.stats(), (0, 0), "disabled cache counts nothing");
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = small();
        c.fill(Addr(0));
        c.invalidate_all();
        assert!(!c.lookup(Addr(0)));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = small();
        c.lookup(Addr(0)); // miss
        c.fill(Addr(0));
        c.lookup(Addr(0)); // hit
        c.lookup(Addr(4)); // hit (same line)
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for i in 0..4u32 {
            c.fill(Addr(i * 32));
        }
        for i in 0..4u32 {
            assert!(c.lookup(Addr(i * 32)), "line {i} in its own set");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(&CacheConfig {
            size: ByteSize(96),
            ways: 1,
            line: 32,
            enabled: true,
        });
    }
}
