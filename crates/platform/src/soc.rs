//! Full-SoC composition: TriCore + PCP + fabric, stepped cycle by cycle.
//!
//! [`Soc::step`] advances the whole product chip one CPU clock and returns
//! everything an Emulation Extension Chip could observe that cycle: the
//! performance events and the bus transactions. The ED crate feeds these
//! into the MCDS; a production part simply drops them.

use audo_common::{Addr, BusTransaction, Cycle, EventRecord, EventSink, SimError, SourceId};
use audo_pcp::Pcp;
use audo_tricore::arch::{init_csa_list, ArchMem};
use audo_tricore::pipeline::Core;
use audo_tricore::Image;

use crate::config::SocConfig;
use crate::fabric::{Fabric, PcpPort};

/// Number of CSA frames [`Soc::load_image`] links into the free list
/// (top 3 KiB of the DSPR). Public: the static CSA-depth analyzer uses
/// the same number as its default overflow budget.
pub const CSA_AREAS: u32 = 48;

/// Observation of one SoC cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleObservation {
    /// The cycle that was executed.
    pub cycle: Cycle,
    /// Performance events from all blocks.
    pub events: Vec<EventRecord>,
    /// Bus transactions granted this cycle.
    pub bus: Vec<BusTransaction>,
    /// Instructions the TriCore retired this cycle.
    pub tricore_retired: u8,
    /// The TriCore has executed `HALT`.
    pub halted: bool,
}

/// The simulated product chip.
#[derive(Debug)]
pub struct Soc {
    /// The TriCore-class main CPU.
    pub tricore: Core,
    /// The PCP co-processor.
    pub pcp: Pcp,
    /// Interconnect, memories and peripherals.
    pub fabric: Fabric,
    /// Interrupts the TriCore accepted (device-side ground truth; the
    /// fleet veto needs it to loosen per-block cycle envelopes soundly).
    pub irqs_taken: u64,
    core_sink: EventSink,
    clock: Cycle,
}

impl Soc {
    /// Builds a SoC from a configuration (reset PC = flash base; load an
    /// image to set the real entry).
    #[must_use]
    pub fn new(cfg: SocConfig) -> Soc {
        let cpu_cfg = cfg.cpu.clone();
        let pcp_cfg = cfg.pcp.clone();
        let fabric = Fabric::new(cfg);
        Soc {
            tricore: Core::new(cpu_cfg, crate::config::PFLASH_BASE, SourceId::TRICORE),
            pcp: Pcp::new(pcp_cfg),
            fabric,
            irqs_taken: 0,
            core_sink: EventSink::new(),
            clock: Cycle::ZERO,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.clock
    }

    /// Enables or disables event observation (a production SoC without the
    /// Emulation Extension Chip runs with observation off).
    pub fn set_observation(&mut self, enabled: bool) {
        self.core_sink.set_enabled(enabled);
        self.fabric.sink.set_enabled(enabled);
    }

    /// Samples the SoC's hardware counters into an observability registry.
    ///
    /// All values are the simulator-internal ground-truth counters the
    /// blocks maintain anyway (cache hits/misses, flash buffer activity,
    /// crossbar grants and contention, DMA beats, retired instructions on
    /// both cores), so sampling costs nothing during the run itself. The
    /// registry's time stamp is advanced to the SoC clock.
    pub fn export_obs(&self, reg: &mut audo_obs::Registry) {
        reg.stamp(self.clock.0);
        reg.sample("soc.cycles", self.clock.0);
        reg.sample(
            "soc.tricore.instructions_retired",
            self.tricore.retired_total(),
        );
        reg.sample("soc.pcp.instructions_retired", self.pcp.retired_total());
        let (hits, misses) = self.fabric.icache.stats();
        reg.sample("soc.icache.hits", hits);
        reg.sample("soc.icache.misses", misses);
        let (hits, misses) = self.fabric.dcache.stats();
        reg.sample("soc.dcache.hits", hits);
        reg.sample("soc.dcache.misses", misses);
        let (buf_hits, buf_misses, prefetches) = self.fabric.flash.stats();
        reg.sample("soc.flash.buffer_hits", buf_hits);
        reg.sample("soc.flash.buffer_misses", buf_misses);
        reg.sample("soc.flash.prefetches", prefetches);
        let (grants, contended) = self.fabric.xbar.stats();
        reg.sample("soc.xbar.grants", grants);
        reg.sample("soc.xbar.contended_grants", contended);
        reg.sample("soc.dma.beats", self.fabric.dma_beats());
        // Pipeline cycle decomposition: every cycle is either a retire
        // cycle or a stall cycle charged to exactly one cause, so these
        // counters explain the IPC gauge below.
        let p = self.tricore.stats();
        for reason in audo_common::events::StallReason::ALL {
            reg.sample(
                &format!("soc.tricore.stall.{}", reason.key()),
                p.stalls(reason),
            );
        }
        reg.sample("soc.tricore.retire_cycles", p.retire_cycles);
        reg.sample(
            "soc.tricore.csa_depth_peak",
            u64::from(self.tricore.arch().csa_depth_peak),
        );
        reg.sample("soc.tricore.irqs_taken", self.irqs_taken);
        reg.sample("soc.tricore.flushes", p.flushes);
        reg.sample("soc.tricore.mispredicts", p.mispredicts);
        reg.sample("soc.tricore.loop_buffer.replays", p.loop_buffer_replays);
        reg.sample(
            "soc.tricore.loop_buffer.invalidations",
            p.loop_buffer_invalidations,
        );
        reg.sample("soc.tricore.predecode.hits", p.predecode.hits);
        reg.sample("soc.tricore.predecode.misses", p.predecode.misses);
        reg.sample(
            "soc.tricore.predecode.invalidations",
            p.predecode.invalidations,
        );
        if self.clock.0 > 0 {
            let cycles = self.clock.0 as f64;
            reg.gauge(
                "soc.tricore.ipc",
                self.tricore.retired_total() as f64 / cycles,
            );
            reg.gauge(
                "soc.tricore.retire_fraction",
                p.retire_cycles as f64 / cycles,
            );
            reg.gauge(
                "soc.tricore.stall_fraction",
                p.stall_total() as f64 / cycles,
            );
        }
    }

    /// Loads a program image, initialises the CSA free list at the top of
    /// the DSPR, points the stack below it, and redirects the CPU to the
    /// image entry.
    ///
    /// # Errors
    ///
    /// Fails if the image does not fit the mapped memories.
    pub fn load_image(&mut self, image: &Image) -> Result<(), SimError> {
        struct Backdoor<'a>(&'a mut Fabric);
        impl ArchMem for Backdoor<'_> {
            fn read(&mut self, addr: Addr, size: u8) -> Result<u32, SimError> {
                self.0.peek(addr, size)
            }
            fn write(&mut self, addr: Addr, size: u8, value: u32) -> Result<(), SimError> {
                self.0.poke(addr, size, value)
            }
        }
        let dspr_top = crate::config::DSPR_BASE.0 + self.fabric.cfg.dspr_size.bytes() as u32;
        let csa_base = Addr(dspr_top - CSA_AREAS * 64);
        let mut bd = Backdoor(&mut self.fabric);
        image.load_into(&mut bd)?;
        let fcx = init_csa_list(&mut bd, csa_base, CSA_AREAS)?;
        let arch = self.tricore.arch_mut();
        arch.fcx = fcx;
        arch.a[10] = csa_base.0; // stack grows down from below the CSA list
        self.tricore.redirect(image.entry());
        Ok(())
    }

    /// Advances the SoC by one cycle.
    ///
    /// # Errors
    ///
    /// Propagates fatal faults from any master.
    pub fn step(&mut self) -> Result<CycleObservation, SimError> {
        let now = self.clock;
        // Peripherals, DMA, interrupt dispatch.
        let pcp_triggers = self.fabric.step(now)?;
        for ch in pcp_triggers {
            self.pcp.trigger(ch);
        }
        // PCP.
        let pcp_out = {
            let mut port = PcpPort(&mut self.fabric);
            self.pcp.step(now, &mut port, &mut self.core_sink)?
        };
        if let Some(srn) = pcp_out.raised_srn {
            let fabric = &mut self.fabric;
            let sink = &mut fabric.sink;
            fabric.irq.raise(srn, now, sink);
        }
        // TriCore.
        let irq = self.fabric.irq.cpu_pending();
        let out = self
            .tricore
            .step(now, &mut self.fabric, irq, &mut self.core_sink)?;
        if let Some(prio) = out.irq_taken {
            self.fabric.irq.acknowledge_cpu(prio);
            self.irqs_taken += 1;
        }
        self.clock += 1;

        let mut events = self.fabric.sink.drain();
        events.append(&mut self.core_sink.drain());
        Ok(CycleObservation {
            cycle: now,
            events,
            bus: std::mem::take(&mut self.fabric.bus_obs),
            tricore_retired: out.retired,
            halted: out.halted,
        })
    }

    /// Runs until `HALT` or `max_cycles`, feeding every observation to
    /// `on_cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LimitExceeded`] at the cycle limit, or any fault.
    pub fn run<F: FnMut(&CycleObservation)>(
        &mut self,
        max_cycles: u64,
        mut on_cycle: F,
    ) -> Result<u64, SimError> {
        let start = self.clock;
        loop {
            if self.clock.saturating_sub(start) >= max_cycles {
                return Err(SimError::LimitExceeded {
                    what: "cycles",
                    limit: max_cycles,
                });
            }
            let obs = self.step()?;
            let halted = obs.halted;
            on_cycle(&obs);
            if halted {
                return Ok(self.clock - start);
            }
        }
    }

    /// Runs to `HALT` discarding observations (fast path for tests).
    ///
    /// # Errors
    ///
    /// See [`Soc::run`].
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<u64, SimError> {
        self.run(max_cycles, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_common::PerfEvent;
    use audo_tricore::asm::assemble;

    fn soc_with(src: &str) -> Soc {
        let image = assemble(src).expect("assembles");
        let mut soc = Soc::new(SocConfig::default());
        soc.load_image(&image).expect("loads");
        soc
    }

    #[test]
    fn flash_resident_program_runs_to_halt() {
        let mut soc = soc_with(
            "
            .org 0x80000000
        _start:
            movi d0, 0
            movi d1, 100
        head:
            addi d0, d0, 1
            jne d0, d1, head
            halt
        ",
        );
        let cycles = soc.run_to_halt(100_000).unwrap();
        assert_eq!(soc.tricore.arch().d[0], 100);
        // ~300 retired instructions; flash + loop overhead keeps IPC sane.
        let ipc = soc.tricore.retired_total() as f64 / cycles as f64;
        assert!(
            ipc > 0.2 && ipc < 3.0,
            "IPC {ipc:.2} out of plausible range"
        );
    }

    #[test]
    fn scratchpad_code_is_faster_than_flash_code() {
        let body = "
        _start:
            movi d0, 0
            movi d1, 200
        head:
            addi d0, d0, 1
            jne d0, d1, head
            halt
        ";
        let mut flash = soc_with(&format!(".org 0x80000000\n{body}"));
        let mut pspr = soc_with(&format!(".org 0xC0000000\n{body}"));
        let t_flash = flash.run_to_halt(1_000_000).unwrap();
        let t_pspr = pspr.run_to_halt(1_000_000).unwrap();
        assert!(
            t_pspr <= t_flash,
            "scratchpad ({t_pspr}) must not be slower than flash ({t_flash})"
        );
    }

    #[test]
    fn observation_includes_cache_and_retire_events() {
        let mut soc = soc_with(
            "
            .org 0x80000000
        _start:
            movi d0, 50
        head:
            addi d0, d0, -1
            jnz d0, head
            halt
        ",
        );
        let mut retired = 0u64;
        let mut icache_events = 0u64;
        soc.run(100_000, |obs| {
            for e in &obs.events {
                match e.event {
                    PerfEvent::InstrRetired { count } => retired += u64::from(count),
                    PerfEvent::CacheHit { .. } | PerfEvent::CacheMiss { .. } => icache_events += 1,
                    _ => {}
                }
            }
        })
        .unwrap();
        assert_eq!(retired, soc.tricore.retired_total());
        assert!(
            icache_events > 0,
            "flash-resident code must exercise the I-cache"
        );
    }

    #[test]
    fn stm_interrupt_drives_handler() {
        let mut soc = soc_with(
            "
            .org 0x80000000
        _start:
            li d0, 0x80001000       ; BIV
            mtcr biv, d0
            ; STM compare0 at 500, reload 500
            la a2, 0xF0000000
            li d1, 500
            st.w d1, [a2+0x08]
            st.w d1, [a2+0x10]
            movi d2, 1
            st.w d2, [a2+0x18]      ; enable cmp0
            ; SRC 0: prio 4, enable, CPU
            la a3, 0xF0006000
            li d3, 0x104
            st.w d3, [a3]
            enable
            movi d5, 0
        spin:
            addi d5, d5, 1
            li d6, 100000
            jne d5, d6, spin
            halt

            ; priority-4 vector at BIV + 128
            .org 0x80001000 + 128
            addi d7, d7, 1          ; count interrupts
            rfe
        ",
        );
        soc.run_to_halt(2_000_000).unwrap();
        let handler_runs = soc.tricore.arch().d[7];
        assert!(
            handler_runs >= 3,
            "expected several STM ticks, got {handler_runs}"
        );
    }

    #[test]
    fn pcp_offload_roundtrip_via_srn() {
        // TriCore software-raises SRN 20 (routed to PCP ch 2); the PCP
        // program increments a word in SRAM and raises SRN 21 back to the
        // CPU (prio 6).
        use audo_pcp::isa::{PReg, PcpInstr, ProgramBuilder};
        let mut soc = soc_with(
            "
            .org 0x80000000
        _start:
            li d0, 0x80001000
            mtcr biv, d0
            ; SRC 20: enabled, dest PCP ch 2
            la a2, 0xF0006000 + 20*4
            li d1, 0x1301           ; prio 1, enable, svc=pcp, channel 2
            st.w d1, [a2]
            ; SRC 21: prio 6, enabled, CPU
            la a3, 0xF0006000 + 21*4
            li d2, 0x106
            st.w d2, [a3]
            enable
            ; trigger the PCP via SETR
            li d3, 0x80001301
            st.w d3, [a2]
        wait_loop:
            jz d7, wait_loop        ; d7 set by the ISR
            halt

            .org 0x80001000 + 6*32  ; prio 6 vector
            movi d7, 1
            rfe
        ",
        );
        let mut b = ProgramBuilder::new();
        b.push(PcpInstr::Ldi {
            r1: PReg(1),
            imm: 0,
        });
        b.push(PcpInstr::Ldih {
            r1: PReg(1),
            imm: 0x9000,
        });
        b.push(PcpInstr::Ld {
            r1: PReg(0),
            r2: PReg(1),
            off: 0,
        });
        b.push(PcpInstr::Addi {
            r1: PReg(0),
            imm: 1,
        });
        b.push(PcpInstr::St {
            r1: PReg(0),
            r2: PReg(1),
            off: 0,
        });
        b.push(PcpInstr::Srq { srn: 21 });
        b.push(PcpInstr::Exit);
        soc.pcp.load_program(0, &b.finish(0));
        soc.pcp.setup_channel(2, 0);
        soc.run_to_halt(1_000_000).unwrap();
        assert_eq!(
            soc.fabric.peek(Addr(0x9000_0000), 4).unwrap(),
            1,
            "PCP incremented SRAM"
        );
        assert_eq!(
            soc.tricore.arch().d[7],
            1,
            "CPU got the completion interrupt"
        );
    }

    #[test]
    fn production_mode_observation_off_still_runs() {
        let mut soc = soc_with(".org 0x80000000\n_start: movi d0, 7\n halt\n");
        soc.set_observation(false);
        let mut total_events = 0;
        soc.run(100_000, |obs| total_events += obs.events.len())
            .unwrap();
        assert_eq!(total_events, 0);
        assert_eq!(soc.tricore.arch().d[0], 7);
    }
}

#[cfg(test)]
mod preemption_tests {
    use super::*;
    use audo_platform_test_helpers::*;

    mod audo_platform_test_helpers {
        pub use audo_tricore::asm::assemble;
    }

    /// A higher-priority interrupt must preempt a running lower-priority
    /// handler once that handler re-enables interrupts (TriCore-style
    /// nesting), and both must resume correctly through their CSA frames.
    ///
    /// Handlers communicate through DSPR memory: `D8..D14` are upper-context
    /// registers, so anything a handler leaves there is (correctly)
    /// restored away by `RFE`.
    #[test]
    fn nested_interrupt_preemption() {
        let src = "
            .equ NEST, 0xD0000300    ; [+0] fast count, [+4] preempt snapshot,
                                     ; [+8] slow-active flag, [+12] slow done
            .org 0x80000000
        _start:
            li d0, 0x80001000
            mtcr biv, d0
            ; STM cmp0 at 20000 (prio 3, slow task), cmp1 at 20300 (prio 7),
            ; both far beyond the flash-resident setup prologue
            la a2, 0xF0000000
            li d1, 20000
            st.w d1, [a2+0x08]
            li d1, 0
            st.w d1, [a2+0x10]       ; reload 0: effectively one-shot
            li d1, 20300
            st.w d1, [a2+0x0C]
            li d1, 0
            st.w d1, [a2+0x14]
            movi d2, 3
            st.w d2, [a2+0x18]       ; enable both compares
            la a3, 0xF0006000
            li d3, 0x103             ; SRN0 -> CPU prio 3
            st.w d3, [a3]
            li d3, 0x107             ; SRN1 -> CPU prio 7
            st.w d3, [a3+4]
            enable
        spin:
            addi d5, d5, 1
            li d6, 30000
            jne d5, d6, spin
            halt

            ; prio 3 vector
            .org 0x80001000 + 3*32
            j slow_handler
            ; prio 7 vector: fast handler
            .org 0x80001000 + 7*32
            j fast_handler

            .org 0x80001800
        slow_handler:
            la a12, NEST
            movi d8, 1
            st.w d8, [a12+8]         ; mark slow handler active
            enable                   ; allow nesting (like TriCore BISR)
            li d11, 1000             ; burn time so prio 7 arrives mid-handler
        slow_burn:
            addi d11, d11, -1
            jnz d11, slow_burn
            movi d8, 0
            st.w d8, [a12+8]
            ld.w d9, [a12+12]
            addi d9, d9, 1
            st.w d9, [a12+12]        ; count slow completions
            rfe

        fast_handler:
            la a12, NEST
            ld.w d9, [a12+0]
            addi d9, d9, 1
            st.w d9, [a12+0]         ; count fast activations
            ld.w d10, [a12+8]
            st.w d10, [a12+4]        ; snapshot: was the slow handler active?
            rfe
        ";
        let image = assemble(src).unwrap();
        let mut soc = Soc::new(SocConfig::default());
        soc.load_image(&image).unwrap();
        soc.run_to_halt(1_000_000).unwrap();
        let nest = 0xD000_0300u32;
        let word = |soc: &mut Soc, off: u32| soc.fabric.peek(Addr(nest + off), 4).unwrap();
        assert_eq!(
            word(&mut soc, 12),
            1,
            "slow handler completed despite preemption"
        );
        assert_eq!(word(&mut soc, 0), 1, "fast handler ran once");
        assert_eq!(
            word(&mut soc, 4),
            1,
            "fast handler preempted the slow one mid-flight"
        );
        let a = soc.tricore.arch();
        assert_eq!(a.icr_ccpn, 0, "priority fully unwound");
        assert!(a.d[5] >= 30000, "main loop resumed and finished");
    }
}
