//! DMA controller state: 8 channels with word-granular transfers, optional
//! circular reload, and done-interrupt routing.
//!
//! The movement engine lives in the fabric (it needs the crossbar); this
//! module holds channel state and the MMIO register interface. DMA matters
//! to the methodology because "significant activity (e.g. DMA channels)
//! occurs without any of the data passing through a processor core" — the
//! bus observation blocks are the only way to see it.

/// Number of DMA channels.
pub const DMA_CHANNELS: usize = 8;

/// One DMA channel's programming and live state.
#[derive(Debug, Clone, Copy, Default)]
pub struct DmaChannel {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Remaining transfer count (words).
    pub count: u32,
    /// Source increment per beat (bytes, signed).
    pub src_inc: i32,
    /// Destination increment per beat (bytes, signed).
    pub dst_inc: i32,
    /// Channel enabled.
    pub enabled: bool,
    /// Reload `src`/`dst`/`count` when the block completes.
    pub circular: bool,
    /// SRN to raise on completion (`None` = silent).
    pub done_srn: Option<u8>,
    /// Outstanding hardware/software requests (beats to move).
    pub pending: u32,
    reload_src: u32,
    reload_dst: u32,
    reload_count: u32,
    /// Beats moved over the channel's lifetime.
    pub beats_done: u64,
}

impl DmaChannel {
    /// Latches current programming as the circular reload values.
    pub fn latch_reload(&mut self) {
        self.reload_src = self.src;
        self.reload_dst = self.dst;
        self.reload_count = self.count;
    }

    /// Applies the circular reload.
    pub fn reload(&mut self) {
        self.src = self.reload_src;
        self.dst = self.reload_dst;
        self.count = self.reload_count;
    }
}

/// The DMA controller's channel bank.
#[derive(Debug, Clone, Default)]
pub struct DmaState {
    /// The channels.
    pub ch: [DmaChannel; DMA_CHANNELS],
    /// Engine busy until this cycle (single move engine).
    pub busy_until: u64,
}

impl DmaState {
    /// Creates an idle controller.
    #[must_use]
    pub fn new() -> DmaState {
        DmaState::default()
    }

    /// Registers a transfer request (one beat) on `channel`.
    pub fn request(&mut self, channel: u8) {
        let c = &mut self.ch[channel as usize % DMA_CHANNELS];
        if c.enabled {
            c.pending = c.pending.saturating_add(1);
        }
    }

    /// Picks the next channel with work (lowest number wins).
    #[must_use]
    pub fn next_ready(&self) -> Option<usize> {
        self.ch
            .iter()
            .position(|c| c.enabled && c.pending > 0 && c.count > 0)
    }

    /// MMIO read. Register stride is 0x20 per channel.
    #[must_use]
    pub fn mmio_read(&self, offset: u32) -> u32 {
        let (ch, reg) = (offset / 0x20, offset % 0x20);
        let Some(c) = self.ch.get(ch as usize) else {
            return 0;
        };
        match reg {
            0x00 => c.src,
            0x04 => c.dst,
            0x08 => c.count,
            0x0C => {
                u32::from(c.enabled)
                    | (u32::from(c.circular) << 1)
                    | (c.done_srn.map_or(0, |s| u32::from(s) + 1) << 8)
            }
            0x10 => c.src_inc as u32,
            0x14 => c.dst_inc as u32,
            0x18 => c.pending,
            _ => 0,
        }
    }

    /// MMIO write.
    pub fn mmio_write(&mut self, offset: u32, value: u32) {
        let (chi, reg) = (offset / 0x20, offset % 0x20);
        let Some(c) = self.ch.get_mut(chi as usize) else {
            return;
        };
        match reg {
            0x00 => c.src = value,
            0x04 => c.dst = value,
            0x08 => c.count = value,
            0x0C => {
                c.enabled = value & 1 != 0;
                c.circular = value & 2 != 0;
                let srn_field = (value >> 8) & 0xFF;
                c.done_srn = if srn_field == 0 {
                    None
                } else {
                    Some((srn_field - 1) as u8)
                };
                if c.enabled {
                    c.latch_reload();
                }
            }
            0x10 => c.src_inc = value as i32,
            0x14 => c.dst_inc = value as i32,
            0x18 if c.enabled => {
                c.pending = c.pending.saturating_add(value.max(1));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmio_roundtrip() {
        let mut d = DmaState::new();
        d.mmio_write(0x20, 0x9000_0000); // ch1 src
        d.mmio_write(0x24, 0xD000_0000); // ch1 dst
        d.mmio_write(0x28, 16); // count
        d.mmio_write(0x30, 4); // src inc
        d.mmio_write(0x34, 4); // dst inc
        d.mmio_write(0x2C, 1 | 2 | ((9 + 1) << 8)); // enable, circular, srn 9
        assert_eq!(d.mmio_read(0x20), 0x9000_0000);
        assert_eq!(d.mmio_read(0x28), 16);
        let ctrl = d.mmio_read(0x2C);
        assert_eq!(ctrl & 3, 3);
        assert_eq!((ctrl >> 8) & 0xFF, 10);
        assert_eq!(d.ch[1].done_srn, Some(9));
    }

    #[test]
    fn requests_only_accumulate_when_enabled() {
        let mut d = DmaState::new();
        d.request(0);
        assert_eq!(d.ch[0].pending, 0);
        d.mmio_write(0x08, 4);
        d.mmio_write(0x0C, 1);
        d.request(0);
        d.request(0);
        assert_eq!(d.ch[0].pending, 2);
        assert_eq!(d.next_ready(), Some(0));
    }

    #[test]
    fn lowest_channel_wins() {
        let mut d = DmaState::new();
        for chi in [2u32, 5] {
            d.mmio_write(chi * 0x20 + 0x08, 1);
            d.mmio_write(chi * 0x20 + 0x0C, 1);
            d.request(chi as u8);
        }
        assert_eq!(d.next_ready(), Some(2));
    }

    #[test]
    fn circular_reload_restores_programming() {
        let mut d = DmaState::new();
        d.mmio_write(0x00, 100);
        d.mmio_write(0x04, 200);
        d.mmio_write(0x08, 8);
        d.mmio_write(0x0C, 3); // enable + circular (latches reload)
        d.ch[0].src = 999;
        d.ch[0].count = 0;
        d.ch[0].reload();
        assert_eq!(d.ch[0].src, 100);
        assert_eq!(d.ch[0].count, 8);
    }
}
