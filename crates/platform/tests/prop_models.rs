//! Property tests for the platform's timing models: the cache against a
//! reference LRU implementation, and flash-timing invariants.

use audo_common::{Addr, ByteSize, Cycle, EventSink};
use audo_platform::cache::Cache;
use audo_platform::config::{CacheConfig, FlashConfig, PortArbitration};
use audo_platform::flash::FlashTiming;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Straightforward reference model: per-set LRU queues of tags.
struct OracleCache {
    sets: Vec<VecDeque<u32>>,
    ways: usize,
    line_shift: u32,
    set_bits: u32,
}

impl OracleCache {
    fn new(size: u64, ways: usize, line: u32) -> OracleCache {
        let n_sets = (size / u64::from(line)) as usize / ways;
        OracleCache {
            sets: (0..n_sets).map(|_| VecDeque::new()).collect(),
            ways,
            line_shift: line.trailing_zeros(),
            set_bits: (n_sets as u32).trailing_zeros(),
        }
    }

    fn index(&self, addr: u32) -> (usize, u32) {
        let line = addr >> self.line_shift;
        (
            (line as usize) & (self.sets.len() - 1),
            line >> self.set_bits,
        )
    }

    fn lookup(&mut self, addr: u32) -> bool {
        let (set, tag) = self.index(addr);
        if let Some(pos) = self.sets[set].iter().position(|&t| t == tag) {
            let t = self.sets[set].remove(pos).expect("present");
            self.sets[set].push_back(t); // most recently used at the back
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u32) {
        let (set, tag) = self.index(addr);
        if self.sets[set].len() >= self.ways {
            self.sets[set].pop_front();
        }
        self.sets[set].push_back(tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// The timing cache and the oracle agree on every hit/miss decision for
    /// arbitrary access sequences (miss → fill, like the fabric does).
    #[test]
    fn cache_matches_lru_oracle(
        addrs in proptest::collection::vec(0u32..0x2000, 1..300),
        ways in 1usize..5,
    ) {
        // 1 KiB, variable associativity, 32-byte lines. Skip geometries
        // where sets would not be a power of two.
        let n_sets = (1024 / 32) / ways;
        prop_assume!(n_sets.is_power_of_two());
        let mut dut = Cache::new(&CacheConfig {
            size: ByteSize(1024),
            ways,
            line: 32,
            enabled: true,
        });
        let mut oracle = OracleCache::new(1024, ways, 32);
        for (i, &a) in addrs.iter().enumerate() {
            let hit_dut = dut.lookup(Addr(a));
            let hit_oracle = oracle.lookup(a);
            prop_assert_eq!(hit_dut, hit_oracle, "access #{} to {:#x}", i, a);
            if !hit_dut {
                dut.fill(Addr(a));
                oracle.fill(a);
            }
        }
        let (hits, misses) = dut.stats();
        prop_assert_eq!(hits + misses, addrs.len() as u64);
    }

    /// Flash timing invariants: responses never travel back in time, hits
    /// are free, misses cost at least the wait states, and the hit/miss
    /// counters account for every access.
    #[test]
    fn flash_timing_invariants(
        addrs in proptest::collection::vec(0u32..0x800, 1..200),
        gaps in proptest::collection::vec(0u64..12, 1..200),
        buffers in 1usize..5,
        prefetch in any::<bool>(),
    ) {
        let ws = 5u64;
        let mut flash = FlashTiming::new(FlashConfig {
            wait_states: ws,
            line_bytes: 32,
            read_buffers: buffers,
            prefetch,
            arbitration: PortArbitration::CodeFirst,
        });
        let mut sink = EventSink::disabled();
        let mut now = Cycle(0);
        for (i, &a) in addrs.iter().enumerate() {
            now += gaps.get(i).copied().unwrap_or(1);
            let (h0, m0, _) = flash.stats();
            let ready = flash.access(now, Addr(a), audo_common::events::FlashPort::Code, &mut sink);
            let (h1, m1, _) = flash.stats();
            prop_assert!(ready >= now, "time went backwards");
            prop_assert_eq!(h1 + m1, h0 + m0 + 1, "every access is a hit or a miss");
            if m1 > m0 {
                prop_assert!(ready.0 >= now.0 + ws, "miss must pay wait states");
            }
            if prefetch {
                flash.step(now, &mut sink);
            }
        }
        let (hits, misses, _) = flash.stats();
        prop_assert_eq!(hits + misses, addrs.len() as u64);
    }

    /// Repeating the same line back-to-back always hits after the fill
    /// completes, at any buffer count.
    #[test]
    fn flash_same_line_rehit(addr in 0u32..0x1000, buffers in 1usize..4) {
        let mut flash = FlashTiming::new(FlashConfig {
            wait_states: 5,
            line_bytes: 32,
            read_buffers: buffers,
            prefetch: false,
            arbitration: PortArbitration::CodeFirst,
        });
        let mut sink = EventSink::disabled();
        let r1 = flash.access(Cycle(0), Addr(addr), audo_common::events::FlashPort::Code, &mut sink);
        let r2 = flash.access(r1 + 1, Addr(addr), audo_common::events::FlashPort::Code, &mut sink);
        prop_assert_eq!(r2, r1 + 1, "second access to the same line is free");
    }
}
