//! Model of the **MCDS** (Multi-Core Debug Solution): the configurable
//! trigger, trace-qualification and trace-compression block of the
//! Emulation Extension Chip (Mayer & Hellwig, DATE 2008, §3 and Fig. 5).
//!
//! The MCDS consumes the per-cycle observation stream of the simulated SoC
//! (events + bus transactions) and produces a compressed trace byte stream:
//!
//! * [`select`] — programmable event selectors (cache hits/misses, bus
//!   contention, flash buffer activity, stalls, …),
//! * [`trigger`] — comparators, counters, boolean combiners and trigger
//!   state machines ("trigger on events not happening in a defined time
//!   window" is expressible),
//! * [`rates`] — on-chip rate measurement with cycle or
//!   per-executed-instruction bases and cascaded multi-resolution groups
//!   (the Enhanced System Profiling primitive),
//! * [`msg`] — the compressed, cycle-timestamped message protocol,
//! * [`mcds`] — the assembled block with finite, configurable resources.
//!
//! This crate is host/silicon agnostic: it depends only on `audo-common`.
//! The `audo-ed` crate wires it to the simulated SoC and the emulation
//! memory; the `audo-profiler` crate programs it and decodes its output.

#![warn(missing_docs)]

pub mod mcds;
pub mod msg;
pub mod rates;
pub mod select;
pub mod trigger;

pub use mcds::{DataQualifier, Mcds, McdsBuilder, McdsResources};
pub use msg::{decode_stream, Encoder, TraceMessage};
pub use rates::{Basis, RateProbe};
pub use select::{EventClass, EventSelector};
pub use trigger::{Action, Comparator, Cond, StateMachine, TraceUnit, Transition};
