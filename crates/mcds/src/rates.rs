//! On-chip rate measurement: the core of the Enhanced System Profiling
//! method.
//!
//! §5 of the paper defines the scheme this module implements:
//!
//! * the **IPC rate** is measured with two counters — instructions executed
//!   and a cycle-based resolution basis; "every x clock cycles, the number
//!   of executed instructions is saved as a trace message",
//! * **all other event rates** are measured *per executed instruction*,
//!   because "an instruction cache miss in clock cycle x is not a meaningful
//!   information" — 4 misses per 100 executed instructions is,
//! * probes can be grouped and **cascaded**: a high-resolution group is only
//!   armed while a trigger condition (e.g. low-resolution IPC below a
//!   threshold) holds, trading tool bandwidth for detail exactly where it
//!   is needed.

use audo_common::{EventRecord, SourceId};

use crate::select::EventSelector;

/// The resolution basis of a rate probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Basis {
    /// Sample every `n` clock cycles (used for IPC).
    Cycles(u32),
    /// Sample every `n` instructions retired by `source` (used for event
    /// rates, per §5).
    Instructions {
        /// Whose retirement stream forms the basis.
        source: SourceId,
        /// Window length in instructions.
        n: u32,
    },
}

impl Basis {
    /// The nominal window length.
    #[must_use]
    pub fn window(&self) -> u32 {
        match *self {
            Basis::Cycles(n) => n,
            Basis::Instructions { n, .. } => n,
        }
    }
}

/// Configuration of one rate probe.
///
/// A probe pairs an event selector (the numerator) with a [`Basis`] (the
/// denominator). §5's worked example — "4 instruction cache misses during
/// the last 100 executed instructions respond to an instruction cache hit
/// rate of 96%" — is one probe with an instruction basis:
///
/// ```
/// use audo_common::{Cycle, EventRecord, PerfEvent, SourceId};
/// use audo_common::events::CacheId;
/// use audo_mcds::{Basis, EventClass, EventSelector, Mcds, RateProbe, TraceMessage};
///
/// let mut mcds = Mcds::builder()
///     .probe(RateProbe {
///         event: EventSelector::of(EventClass::IcacheMiss),
///         // Event rates are measured per executed instruction, not per
///         // cycle — "an instruction cache miss in clock cycle x is not a
///         // meaningful information".
///         basis: Basis::Instructions { source: SourceId::TRICORE, n: 100 },
///         group: None,
///     })
///     .build()?;
///
/// // 50 cycles retiring 2 instructions each; 4 misses along the way.
/// let mut out = Vec::new();
/// for c in 0..50u64 {
///     let mut ev = vec![EventRecord {
///         cycle: Cycle(c),
///         source: SourceId::TRICORE,
///         event: PerfEvent::InstrRetired { count: 2 },
///     }];
///     if c % 25 == 0 {
///         let miss = PerfEvent::CacheMiss { cache: CacheId::Instruction };
///         ev.push(EventRecord { cycle: Cycle(c), source: SourceId::TRICORE, event: miss });
///         ev.push(EventRecord { cycle: Cycle(c), source: SourceId::TRICORE, event: miss });
///     }
///     mcds.observe(Cycle(c), &ev, &[], &mut out);
/// }
///
/// // One trace message per completed window: 4 misses / 100 instructions,
/// // i.e. a 96% instruction-cache hit rate.
/// let msgs = audo_mcds::decode_stream(&out)?;
/// assert!(matches!(msgs[0].1, TraceMessage::Counter { num: 4, den: 100, .. }));
/// # Ok::<(), audo_common::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateProbe {
    /// What to count (the numerator).
    pub event: EventSelector,
    /// The resolution basis (the denominator).
    pub basis: Basis,
    /// Probe group for cascaded arming (`None` = always armed).
    pub group: Option<u8>,
}

/// Live state of one probe.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeState {
    num: u64,
    den: u64,
    /// Last completed window, for trigger conditions and inspection.
    pub last_window: Option<(u64, u64)>,
    /// Completed windows.
    pub samples: u64,
}

impl ProbeState {
    /// Resets the in-progress window (used when a group is disarmed).
    pub fn reset_window(&mut self) {
        self.num = 0;
        self.den = 0;
    }

    /// Accumulates one cycle's contribution; returns `Some((num, den))`
    /// when the window completed.
    pub fn accumulate(
        &mut self,
        cfg: &RateProbe,
        num_add: u64,
        den_add: u64,
    ) -> Option<(u64, u64)> {
        self.num += num_add;
        self.den += den_add;
        if self.den >= u64::from(cfg.basis.window()) && cfg.basis.window() > 0 {
            let window = (self.num, self.den);
            self.last_window = Some(window);
            self.samples += 1;
            self.num = 0;
            self.den = 0;
            Some(window)
        } else {
            None
        }
    }
}

/// Computes one cycle's (numerator, denominator) contributions for a probe.
#[must_use]
pub fn cycle_contribution(cfg: &RateProbe, events: &[EventRecord]) -> (u64, u64) {
    let num: u64 =
        events.iter().map(|e| cfg.event.weight(e)).sum::<u64>() + cfg.event.per_cycle_weight();
    let den = match cfg.basis {
        Basis::Cycles(_) => 1,
        Basis::Instructions { source, .. } => events
            .iter()
            .filter(|e| e.source == source)
            .map(|e| match e.event {
                audo_common::PerfEvent::InstrRetired { count } => u64::from(count),
                _ => 0,
            })
            .sum(),
    };
    (num, den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::EventClass;
    use audo_common::{Cycle, PerfEvent};

    fn retire(n: u8) -> EventRecord {
        EventRecord {
            cycle: Cycle(0),
            source: SourceId::TRICORE,
            event: PerfEvent::InstrRetired { count: n },
        }
    }

    fn miss() -> EventRecord {
        EventRecord {
            cycle: Cycle(0),
            source: SourceId::TRICORE,
            event: PerfEvent::CacheMiss {
                cache: audo_common::events::CacheId::Instruction,
            },
        }
    }

    #[test]
    fn ipc_probe_emits_every_n_cycles() {
        let cfg = RateProbe {
            event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
            basis: Basis::Cycles(10),
            group: None,
        };
        let mut st = ProbeState::default();
        let mut windows = Vec::new();
        for c in 0..35 {
            let events = if c % 2 == 0 { vec![retire(2)] } else { vec![] };
            let (n, d) = cycle_contribution(&cfg, &events);
            if let Some(w) = st.accumulate(&cfg, n, d) {
                windows.push(w);
            }
        }
        assert_eq!(
            windows,
            vec![(10, 10), (10, 10), (10, 10)],
            "IPC 1.0 per 10-cycle window"
        );
        assert_eq!(st.samples, 3);
    }

    #[test]
    fn instruction_basis_normalises_to_retires() {
        // "4 instruction cache misses during the last 100 executed
        // instructions respond to an instruction cache hit rate of 96%".
        let cfg = RateProbe {
            event: EventSelector::of(EventClass::IcacheMiss),
            basis: Basis::Instructions {
                source: SourceId::TRICORE,
                n: 100,
            },
            group: None,
        };
        let mut st = ProbeState::default();
        let mut window = None;
        // 50 cycles × 2 instructions, a miss every 25 cycles (4 total).
        for c in 0..50 {
            let mut events = vec![retire(2)];
            if c % 25 == 0 {
                events.push(miss());
                events.push(miss());
            }
            let (n, d) = cycle_contribution(&cfg, &events);
            if let Some(w) = st.accumulate(&cfg, n, d) {
                window = Some(w);
            }
        }
        let (num, den) = window.expect("one window");
        assert_eq!(den, 100);
        assert_eq!(num, 4);
        let hit_rate = 100.0 * (1.0 - num as f64 / den as f64);
        assert_eq!(hit_rate, 96.0);
    }

    #[test]
    fn window_den_may_overshoot_with_wide_retires() {
        let cfg = RateProbe {
            event: EventSelector::of(EventClass::IcacheMiss),
            basis: Basis::Instructions {
                source: SourceId::TRICORE,
                n: 10,
            },
            group: None,
        };
        let mut st = ProbeState::default();
        // 4 cycles × 3 retires = 12 ≥ 10: window reports den = 12 exactly.
        let mut w = None;
        for _ in 0..4 {
            let (n, d) = cycle_contribution(&cfg, &[retire(3)]);
            if let Some(win) = st.accumulate(&cfg, n, d) {
                w = Some(win);
            }
        }
        assert_eq!(w, Some((0, 12)));
    }

    #[test]
    fn stall_cycles_do_not_advance_instruction_basis() {
        let cfg = RateProbe {
            event: EventSelector::of(EventClass::IcacheMiss),
            basis: Basis::Instructions {
                source: SourceId::TRICORE,
                n: 10,
            },
            group: None,
        };
        // A cycle with only a stall event contributes nothing to the basis.
        let stall = EventRecord {
            cycle: Cycle(0),
            source: SourceId::TRICORE,
            event: PerfEvent::Stall {
                reason: audo_common::events::StallReason::Fetch,
            },
        };
        let (n, d) = cycle_contribution(&cfg, &[stall]);
        assert_eq!((n, d), (0, 0));
    }

    #[test]
    fn reset_window_discards_partials() {
        let cfg = RateProbe {
            event: EventSelector::of(EventClass::IcacheMiss),
            basis: Basis::Cycles(10),
            group: Some(1),
        };
        let mut st = ProbeState::default();
        st.accumulate(&cfg, 3, 5);
        st.reset_window();
        // After 10 fresh cycles the window holds only post-reset counts.
        let mut w = None;
        for _ in 0..10 {
            if let Some(win) = st.accumulate(&cfg, 0, 1) {
                w = Some(win);
            }
        }
        assert_eq!(w, Some((0, 10)));
    }
}
