//! The MCDS trigger unit: comparators, trigger counters, boolean event
//! combiners and trigger state machines.
//!
//! "Since the on-chip trace memory is limited, it is very important to be
//! able to trigger close to the point of interest. For this purpose MCDS
//! allows to define very complex conditions using Boolean expressions,
//! counters and state machines" (§3). This module is that machinery:
//! comparators turn raw observations into per-cycle facts, [`Cond`] trees
//! combine them, and a [`StateMachine`] sequences them into actions.

use audo_common::{AccessKind, Addr, BusTransaction, EventRecord, PerfEvent, SourceId};

use crate::select::EventSelector;

/// A hardware comparator: produces one boolean per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Comparator {
    /// A change-of-flow retired with its target in `[lo, hi]`.
    ///
    /// (Like the real MCDS, program-address matching observes the trace
    /// interface, i.e. discontinuity targets, not every sequential PC.)
    FlowTarget {
        /// Lowest matching address.
        lo: Addr,
        /// Highest matching address (inclusive).
        hi: Addr,
        /// Restrict to one core.
        source: Option<SourceId>,
    },
    /// A data access touched `[lo, hi]`.
    DataAddr {
        /// Lowest matching address.
        lo: Addr,
        /// Highest matching address (inclusive).
        hi: Addr,
        /// Restrict to reads or writes.
        kind: Option<AccessKind>,
        /// Restrict to one master.
        source: Option<SourceId>,
    },
    /// Any event matched by the selector occurred this cycle.
    Event(EventSelector),
    /// A `DEBUG` instruction with this code retired.
    DebugCode(u8),
}

impl Comparator {
    /// Evaluates the comparator against one cycle's observations.
    #[must_use]
    pub fn matches(&self, events: &[EventRecord], bus: &[BusTransaction]) -> bool {
        match *self {
            Comparator::FlowTarget { lo, hi, source } => events.iter().any(|e| {
                source.is_none_or(|s| e.source == s)
                    && matches!(e.event, PerfEvent::FlowChange { to, .. } if to >= lo && to <= hi)
            }),
            Comparator::DataAddr {
                lo,
                hi,
                kind,
                source,
            } => {
                let ev = events.iter().any(|e| {
                    source.is_none_or(|s| e.source == s)
                        && matches!(e.event, PerfEvent::DataValue { addr, kind: k, .. }
                            if addr >= lo && addr <= hi && kind.is_none_or(|want| want == k))
                });
                ev || bus.iter().any(|t| {
                    t.addr >= lo
                        && t.addr <= hi
                        && kind.is_none_or(|want| want == t.kind)
                        && source.is_none_or(|s| t.master == s)
                })
            }
            Comparator::Event(sel) => events.iter().any(|e| sel.weight(e) > 0),
            Comparator::DebugCode(code) => events
                .iter()
                .any(|e| matches!(e.event, PerfEvent::DebugMarker { code: c } if c == code)),
        }
    }
}

/// A boolean combiner over comparators, counters, probe rates and the
/// state-machine state.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Cond {
    /// Always true.
    True,
    /// Comparator `idx` matched this cycle.
    Comp(usize),
    /// Trigger counter `idx` has reached `value`.
    CounterAtLeast {
        /// Counter index.
        counter: usize,
        /// Threshold.
        value: u64,
    },
    /// Rate probe `probe`'s last completed window was strictly below
    /// `num` events per `den` basis units.
    RateBelow {
        /// Probe index.
        probe: u8,
        /// Numerator of the threshold fraction.
        num: u64,
        /// Denominator of the threshold fraction.
        den: u64,
    },
    /// Logical AND.
    And(Box<Cond>, Box<Cond>),
    /// Logical OR.
    Or(Box<Cond>, Box<Cond>),
    /// Logical NOT.
    Not(Box<Cond>),
}

impl Cond {
    /// `a AND b` helper.
    #[must_use]
    pub fn and(a: Cond, b: Cond) -> Cond {
        Cond::And(Box::new(a), Box::new(b))
    }

    /// `a OR b` helper.
    #[must_use]
    pub fn or(a: Cond, b: Cond) -> Cond {
        Cond::Or(Box::new(a), Box::new(b))
    }

    /// `NOT a` helper.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // reason: combinator DSL constructor taking an operand, not ops::Not on self
    pub fn not(a: Cond) -> Cond {
        Cond::Not(Box::new(a))
    }

    /// Evaluates against one cycle's trigger facts.
    #[must_use]
    pub fn eval(&self, facts: &TriggerFacts<'_>) -> bool {
        match self {
            Cond::True => true,
            Cond::Comp(i) => facts.comp_matches.get(*i).copied().unwrap_or(false),
            Cond::CounterAtLeast { counter, value } => {
                facts.counter_values.get(*counter).copied().unwrap_or(0) >= *value
            }
            Cond::RateBelow { probe, num, den } => {
                match facts.last_rates.get(usize::from(*probe)).copied().flatten() {
                    // rate < num/den  <=>  r_num * den < num * r_den
                    Some((r_num, r_den)) => r_num.saturating_mul(*den) < num.saturating_mul(r_den),
                    None => false,
                }
            }
            Cond::And(a, b) => a.eval(facts) && b.eval(facts),
            Cond::Or(a, b) => a.eval(facts) || b.eval(facts),
            Cond::Not(a) => !a.eval(facts),
        }
    }
}

/// One cycle's evaluated trigger inputs.
#[derive(Debug)]
pub struct TriggerFacts<'a> {
    /// Per-comparator match flags.
    pub comp_matches: &'a [bool],
    /// Current trigger-counter values.
    pub counter_values: &'a [u64],
    /// Per-probe last completed `(num, den)` window.
    pub last_rates: &'a [Option<(u64, u64)>],
}

/// Actions a state-machine transition can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Action {
    /// Enable a trace unit.
    TraceOn(TraceUnit),
    /// Disable a trace unit.
    TraceOff(TraceUnit),
    /// Emit a watchpoint message with this code.
    EmitWatchpoint(u8),
    /// Arm a probe group (cascaded high-resolution capture).
    ArmGroup(u8),
    /// Disarm a probe group.
    DisarmGroup(u8),
    /// Reset trigger counter `idx` to zero.
    ResetCounter(usize),
    /// Freeze all message production (post-trigger stop).
    StopCapture,
}

/// The trace units the trigger can gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceUnit {
    /// TriCore program-flow trace.
    ProgramTricore,
    /// Qualified data trace.
    Data,
    /// Bus-transaction trace.
    Bus,
    /// PCP channel-activity trace.
    Pcp,
}

/// One state-machine transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Source state.
    pub from: u8,
    /// Guard condition.
    pub cond: Cond,
    /// Destination state.
    pub to: u8,
    /// Actions fired when taken.
    pub actions: Vec<Action>,
}

/// The trigger state machine (state 0 at reset; first matching transition
/// per cycle wins).
#[derive(Debug, Clone, Default)]
pub struct StateMachine {
    /// Transition table.
    pub transitions: Vec<Transition>,
    state: u8,
}

impl StateMachine {
    /// Creates a machine from its transition table.
    #[must_use]
    pub fn new(transitions: Vec<Transition>) -> StateMachine {
        StateMachine {
            transitions,
            state: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Evaluates one cycle; returns the actions of the taken transition.
    pub fn step(&mut self, facts: &TriggerFacts<'_>) -> &[Action] {
        let state = self.state;
        for (i, t) in self.transitions.iter().enumerate() {
            if t.from == state && t.cond.eval(facts) {
                self.state = t.to;
                return &self.transitions[i].actions;
            }
        }
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_common::events::FlowKind;
    use audo_common::Cycle;

    fn flow_event(to: u32) -> EventRecord {
        EventRecord {
            cycle: Cycle(0),
            source: SourceId::TRICORE,
            event: PerfEvent::FlowChange {
                kind: FlowKind::Call,
                from: Addr(0x8000_0000),
                to: Addr(to),
            },
        }
    }

    #[test]
    fn flow_target_comparator() {
        let c = Comparator::FlowTarget {
            lo: Addr(0x1000),
            hi: Addr(0x1FFF),
            source: None,
        };
        assert!(c.matches(&[flow_event(0x1800)], &[]));
        assert!(!c.matches(&[flow_event(0x2800)], &[]));
        let c2 = Comparator::FlowTarget {
            lo: Addr(0x1000),
            hi: Addr(0x1FFF),
            source: Some(SourceId::PCP),
        };
        assert!(!c2.matches(&[flow_event(0x1800)], &[]), "source filter");
    }

    #[test]
    fn data_addr_comparator_sees_events_and_bus() {
        let c = Comparator::DataAddr {
            lo: Addr(0xD000_0000),
            hi: Addr(0xD000_00FF),
            kind: Some(AccessKind::Write),
            source: None,
        };
        let ev = EventRecord {
            cycle: Cycle(0),
            source: SourceId::TRICORE,
            event: PerfEvent::DataValue {
                addr: Addr(0xD000_0010),
                value: 1,
                kind: AccessKind::Write,
                size: 4,
            },
        };
        assert!(c.matches(&[ev], &[]));
        let read = EventRecord {
            cycle: Cycle(0),
            source: SourceId::TRICORE,
            event: PerfEvent::DataValue {
                addr: Addr(0xD000_0010),
                value: 1,
                kind: AccessKind::Read,
                size: 4,
            },
        };
        assert!(!c.matches(&[read], &[]), "kind filter");
        let bus = BusTransaction {
            cycle: Cycle(0),
            master: SourceId::DMA,
            addr: Addr(0xD000_0020),
            kind: AccessKind::Write,
            size: 4,
        };
        assert!(c.matches(&[], &[bus]), "bus observation also matches");
    }

    #[test]
    fn cond_algebra() {
        let facts = TriggerFacts {
            comp_matches: &[true, false],
            counter_values: &[5],
            last_rates: &[Some((200, 1000))],
        };
        assert!(Cond::Comp(0).eval(&facts));
        assert!(!Cond::Comp(1).eval(&facts));
        assert!(!Cond::Comp(9).eval(&facts), "out of range is false");
        assert!(Cond::and(Cond::Comp(0), Cond::not(Cond::Comp(1))).eval(&facts));
        assert!(Cond::or(Cond::Comp(1), Cond::True).eval(&facts));
        assert!(Cond::CounterAtLeast {
            counter: 0,
            value: 5
        }
        .eval(&facts));
        assert!(!Cond::CounterAtLeast {
            counter: 0,
            value: 6
        }
        .eval(&facts));
        // rate 200/1000 = 0.2 < 0.25
        assert!(Cond::RateBelow {
            probe: 0,
            num: 1,
            den: 4
        }
        .eval(&facts));
        assert!(!Cond::RateBelow {
            probe: 0,
            num: 1,
            den: 5
        }
        .eval(&facts));
        // No completed window yet: never below.
        let facts2 = TriggerFacts {
            comp_matches: &[],
            counter_values: &[],
            last_rates: &[None],
        };
        assert!(!Cond::RateBelow {
            probe: 0,
            num: 1,
            den: 2
        }
        .eval(&facts2));
    }

    #[test]
    fn state_machine_sequences() {
        // 0 --comp0--> 1 (trace on), 1 --comp1--> 0 (trace off)
        let mut sm = StateMachine::new(vec![
            Transition {
                from: 0,
                cond: Cond::Comp(0),
                to: 1,
                actions: vec![Action::TraceOn(TraceUnit::ProgramTricore)],
            },
            Transition {
                from: 1,
                cond: Cond::Comp(1),
                to: 0,
                actions: vec![Action::TraceOff(TraceUnit::ProgramTricore)],
            },
        ]);
        let f = |a: bool, b: bool| TriggerFacts {
            comp_matches: if a {
                &[true, false][..]
            } else if b {
                &[false, true][..]
            } else {
                &[false, false][..]
            },
            counter_values: &[],
            last_rates: &[],
        };
        let facts = f(false, false);
        assert!(sm.step(&facts).is_empty());
        assert_eq!(sm.state(), 0);
        let facts = f(true, false);
        assert_eq!(
            sm.step(&facts),
            &[Action::TraceOn(TraceUnit::ProgramTricore)]
        );
        assert_eq!(sm.state(), 1);
        // comp0 again in state 1: no transition from 1 with comp0.
        let facts = f(true, false);
        assert!(sm.step(&facts).is_empty());
        let facts = f(false, true);
        assert_eq!(
            sm.step(&facts),
            &[Action::TraceOff(TraceUnit::ProgramTricore)]
        );
        assert_eq!(sm.state(), 0);
    }
}
