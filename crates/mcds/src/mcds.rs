//! The assembled MCDS: observation in, trace bytes out.
//!
//! One [`Mcds`] instance corresponds to the Multi-Core Debug Solution block
//! on the Emulation Extension Chip (Fig. 5 of the paper): observation
//! adapters for the cores and buses feed comparators, counters, rate probes
//! and the trigger state machine; qualified trace streams are compressed
//! into messages. Resources are finite and configurable — programming more
//! probes or comparators than the silicon has fails, which is exactly the
//! trade-off ("number of measured parameters" vs. resolution) §5 describes.

use audo_common::{BusTransaction, Cycle, EventRecord, PerfEvent, SimError, SourceId};

use crate::msg::{Encoder, TraceMessage};
use crate::rates::{cycle_contribution, ProbeState, RateProbe};
use crate::select::EventSelector;
use crate::trigger::{Action, Comparator, StateMachine, TraceUnit, Transition, TriggerFacts};

/// Silicon resource capacities of one MCDS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McdsResources {
    /// Rate-probe counter pairs.
    pub rate_probes: usize,
    /// Trigger counters.
    pub counters: usize,
    /// Comparators.
    pub comparators: usize,
    /// State-machine transitions.
    pub transitions: usize,
}

impl Default for McdsResources {
    /// The AUDO FUTURE-class default: 8 probes, 8 counters, 8 comparators.
    fn default() -> McdsResources {
        McdsResources {
            rate_probes: 8,
            counters: 8,
            comparators: 8,
            transitions: 16,
        }
    }
}

/// Data-trace qualification window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataQualifier {
    /// Lowest traced address.
    pub lo: audo_common::Addr,
    /// Highest traced address (inclusive).
    pub hi: audo_common::Addr,
    /// Restrict to one master (`None` = all).
    pub source: Option<SourceId>,
    /// Restrict to reads or writes (`None` = both).
    pub kind: Option<audo_common::AccessKind>,
}

/// Builder for a programmed MCDS.
#[derive(Debug, Default)]
pub struct McdsBuilder {
    resources: Option<McdsResources>,
    probes: Vec<RateProbe>,
    counters: Vec<EventSelector>,
    comparators: Vec<Comparator>,
    transitions: Vec<Transition>,
    arm_rules: Vec<(crate::trigger::Cond, u8)>,
    ptrace_tricore: bool,
    pcp_trace: bool,
    bus_trace: bool,
    bus_master_filter: Option<SourceId>,
    data_qual: Option<DataQualifier>,
    sync_every: u32,
    timestamp_shift: u8,
}

impl McdsBuilder {
    /// Starts a fresh configuration.
    #[must_use]
    pub fn new() -> McdsBuilder {
        McdsBuilder {
            sync_every: 16,
            ..McdsBuilder::default()
        }
    }

    /// Overrides the silicon resource capacities.
    #[must_use]
    pub fn resources(mut self, r: McdsResources) -> McdsBuilder {
        self.resources = Some(r);
        self
    }

    /// Adds a rate probe; returns its index via the builder order.
    #[must_use]
    pub fn probe(mut self, p: RateProbe) -> McdsBuilder {
        self.probes.push(p);
        self
    }

    /// Adds a trigger counter.
    #[must_use]
    pub fn counter(mut self, sel: EventSelector) -> McdsBuilder {
        self.counters.push(sel);
        self
    }

    /// Adds a comparator.
    #[must_use]
    pub fn comparator(mut self, c: Comparator) -> McdsBuilder {
        self.comparators.push(c);
        self
    }

    /// Adds a state-machine transition.
    #[must_use]
    pub fn transition(mut self, t: Transition) -> McdsBuilder {
        self.transitions.push(t);
        self
    }

    /// Arms probe group `group` whenever `cond` holds (level-sensitive
    /// cascading, evaluated every cycle); the group is disarmed — and its
    /// in-progress windows discarded — whenever `cond` does not hold.
    ///
    /// Unlike state-machine [`Action::ArmGroup`], rules are independent of
    /// each other and of the state machine, so several cascades compose.
    ///
    /// This is the cascaded-measurement primitive of §5: a coarse,
    /// always-armed probe steers when a fine-grained group is allowed to
    /// burn trace bandwidth. Here a per-cycle stall probe (group 1) only
    /// samples while the coarse IPC probe reads below 1.0:
    ///
    /// ```
    /// use audo_common::{Cycle, EventRecord, PerfEvent, SourceId};
    /// use audo_common::events::StallReason;
    /// use audo_mcds::{Basis, Cond, EventClass, EventSelector, Mcds, RateProbe};
    ///
    /// let mut mcds = Mcds::builder()
    ///     .probe(RateProbe {
    ///         // Probe 0: coarse IPC over 10-cycle windows, always armed.
    ///         event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
    ///         basis: Basis::Cycles(10),
    ///         group: None,
    ///     })
    ///     .probe(RateProbe {
    ///         // Probe 1: fine stall rate, only while group 1 is armed.
    ///         event: EventSelector::of(EventClass::Stall(None)),
    ///         basis: Basis::Cycles(2),
    ///         group: Some(1),
    ///     })
    ///     .arm_group_when(Cond::RateBelow { probe: 0, num: 1, den: 1 }, 1)
    ///     .build()?;
    ///
    /// let mut out = Vec::new();
    /// // Cycles 0..40: IPC 2.0 — the fine probe stays disarmed.
    /// for c in 0..40u64 {
    ///     let ev = [EventRecord {
    ///         cycle: Cycle(c),
    ///         source: SourceId::TRICORE,
    ///         event: PerfEvent::InstrRetired { count: 2 },
    ///     }];
    ///     mcds.observe(Cycle(c), &ev, &[], &mut out);
    /// }
    /// assert_eq!(mcds.probe_window(1), None, "fine probe gated off");
    ///
    /// // Cycles 40..80: stalls only — coarse IPC hits 0, group 1 arms.
    /// for c in 40..80u64 {
    ///     let ev = [EventRecord {
    ///         cycle: Cycle(c),
    ///         source: SourceId::TRICORE,
    ///         event: PerfEvent::Stall { reason: StallReason::Data },
    ///     }];
    ///     mcds.observe(Cycle(c), &ev, &[], &mut out);
    /// }
    /// assert_eq!(mcds.probe_window(1), Some((2, 2)), "stalling every cycle");
    /// # Ok::<(), audo_common::SimError>(())
    /// ```
    #[must_use]
    pub fn arm_group_when(mut self, cond: crate::trigger::Cond, group: u8) -> McdsBuilder {
        self.arm_rules.push((cond, group));
        self
    }

    /// Enables TriCore program-flow trace from the start.
    #[must_use]
    pub fn program_trace(mut self) -> McdsBuilder {
        self.ptrace_tricore = true;
        self
    }

    /// Enables PCP channel-activity trace.
    #[must_use]
    pub fn pcp_trace(mut self) -> McdsBuilder {
        self.pcp_trace = true;
        self
    }

    /// Enables bus-transaction trace (optionally filtered to one master).
    #[must_use]
    pub fn bus_trace(mut self, master: Option<SourceId>) -> McdsBuilder {
        self.bus_trace = true;
        self.bus_master_filter = master;
        self
    }

    /// Enables qualified data trace.
    #[must_use]
    pub fn data_trace(mut self, q: DataQualifier) -> McdsBuilder {
        self.data_qual = Some(q);
        self
    }

    /// Sets the program-trace sync interval (absolute target every N flows).
    #[must_use]
    pub fn sync_every(mut self, n: u32) -> McdsBuilder {
        self.sync_every = n.max(1);
        self
    }

    /// Scalable time-stamping (§3): quantize message timestamps to
    /// `2^shift`-cycle granularity. Coarser stamps make most deltas zero
    /// (one byte) at the cost of intra-quantum ordering resolution;
    /// cross-message *order* is always preserved.
    #[must_use]
    pub fn timestamp_shift(mut self, shift: u8) -> McdsBuilder {
        self.timestamp_shift = shift.min(20);
        self
    }

    /// Validates resource usage and builds the MCDS.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ResourceExhausted`] when the configuration needs
    /// more probes/counters/comparators/transitions than the silicon has.
    pub fn build(self) -> Result<Mcds, SimError> {
        let res = self.resources.unwrap_or_default();
        let checks: [(&'static str, usize, usize); 4] = [
            ("rate probes", self.probes.len(), res.rate_probes),
            ("counters", self.counters.len(), res.counters),
            ("comparators", self.comparators.len(), res.comparators),
            (
                "state-machine transitions",
                self.transitions.len() + self.arm_rules.len(),
                res.transitions,
            ),
        ];
        for (name, used, avail) in checks {
            if used > avail {
                return Err(SimError::ResourceExhausted {
                    resource: name,
                    requested: used,
                    available: avail,
                });
            }
        }
        let n_probes = self.probes.len();
        Ok(Mcds {
            probes: self.probes,
            probe_state: vec![ProbeState::default(); n_probes],
            counters: self.counters.iter().map(|&sel| (sel, 0u64)).collect(),
            comparators: self.comparators,
            arm_rules: self.arm_rules,
            sm: StateMachine::new(self.transitions),
            ptrace_tricore: self.ptrace_tricore,
            pcp_trace: self.pcp_trace,
            bus_trace: self.bus_trace,
            bus_master_filter: self.bus_master_filter,
            data_qual: self.data_qual,
            data_gate: true,
            sync_every: self.sync_every,
            enc: Encoder::with_shift(self.timestamp_shift),
            armed_groups: 0,
            icnt: 0,
            flows_since_sync: 0,
            need_sync: true,
            stopped: false,
            watchpoints: Vec::new(),
        })
    }
}

/// A programmed, running MCDS instance.
#[derive(Debug)]
pub struct Mcds {
    probes: Vec<RateProbe>,
    probe_state: Vec<ProbeState>,
    counters: Vec<(EventSelector, u64)>,
    comparators: Vec<Comparator>,
    arm_rules: Vec<(crate::trigger::Cond, u8)>,
    sm: StateMachine,
    ptrace_tricore: bool,
    pcp_trace: bool,
    bus_trace: bool,
    bus_master_filter: Option<SourceId>,
    data_qual: Option<DataQualifier>,
    data_gate: bool,
    sync_every: u32,
    enc: Encoder,
    armed_groups: u32,
    icnt: u32,
    flows_since_sync: u32,
    need_sync: bool,
    stopped: bool,
    watchpoints: Vec<(Cycle, u8)>,
}

impl Mcds {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> McdsBuilder {
        McdsBuilder::new()
    }

    /// `true` once a `StopCapture` action froze the trace.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Watchpoints fired so far (cycle, code).
    #[must_use]
    pub fn watchpoints(&self) -> &[(Cycle, u8)] {
        &self.watchpoints
    }

    /// Messages emitted so far.
    #[must_use]
    pub fn message_count(&self) -> u64 {
        self.enc.message_count()
    }

    /// Current trigger state.
    #[must_use]
    pub fn trigger_state(&self) -> u8 {
        self.sm.state()
    }

    /// Last completed window of probe `idx`.
    #[must_use]
    pub fn probe_window(&self, idx: usize) -> Option<(u64, u64)> {
        self.probe_state.get(idx).and_then(|s| s.last_window)
    }

    fn group_armed(&self, group: Option<u8>) -> bool {
        match group {
            None => true,
            Some(g) => self.armed_groups & (1 << g) != 0,
        }
    }

    /// Feeds one cycle of observations; compressed messages are appended to
    /// `out`.
    pub fn observe(
        &mut self,
        cycle: Cycle,
        events: &[EventRecord],
        bus: &[BusTransaction],
        out: &mut Vec<u8>,
    ) {
        // 1. Comparators.
        let comp_matches: Vec<bool> = self
            .comparators
            .iter()
            .map(|c| c.matches(events, bus))
            .collect();

        // 2. Trigger counters.
        for (sel, value) in &mut self.counters {
            *value += events.iter().map(|e| sel.weight(e)).sum::<u64>() + sel.per_cycle_weight();
        }

        // 3. State machine.
        let last_rates: Vec<Option<(u64, u64)>> =
            self.probe_state.iter().map(|s| s.last_window).collect();
        let counter_values: Vec<u64> = self.counters.iter().map(|(_, v)| *v).collect();
        let actions: Vec<Action> = {
            let facts = TriggerFacts {
                comp_matches: &comp_matches,
                counter_values: &counter_values,
                last_rates: &last_rates,
            };
            self.sm.step(&facts).to_vec()
        };
        for a in actions {
            match a {
                Action::TraceOn(u) => self.set_trace(u, true),
                Action::TraceOff(u) => self.set_trace(u, false),
                Action::EmitWatchpoint(code) => {
                    self.watchpoints.push((cycle, code));
                    if !self.stopped {
                        self.enc
                            .emit(cycle, &TraceMessage::Watchpoint { code }, out);
                    }
                }
                Action::ArmGroup(g) => self.armed_groups |= 1 << g,
                Action::DisarmGroup(g) => {
                    self.armed_groups &= !(1 << g);
                    for (cfg, st) in self.probes.iter().zip(&mut self.probe_state) {
                        if cfg.group == Some(g) {
                            st.reset_window();
                        }
                    }
                }
                Action::ResetCounter(i) => {
                    if let Some(c) = self.counters.get_mut(i) {
                        c.1 = 0;
                    }
                }
                Action::StopCapture => self.stopped = true,
            }
        }

        // 3b. Level-sensitive arm rules (independent cascades).
        for i in 0..self.arm_rules.len() {
            let hold = {
                let facts = TriggerFacts {
                    comp_matches: &comp_matches,
                    counter_values: &counter_values,
                    last_rates: &last_rates,
                };
                self.arm_rules[i].0.eval(&facts)
            };
            let g = self.arm_rules[i].1;
            let was = self.armed_groups & (1 << g) != 0;
            if hold && !was {
                self.armed_groups |= 1 << g;
            } else if !hold && was {
                self.armed_groups &= !(1 << g);
                for (cfg, st) in self.probes.iter().zip(&mut self.probe_state) {
                    if cfg.group == Some(g) {
                        st.reset_window();
                    }
                }
            }
        }

        // 4. Rate probes (cascade-aware).
        for (idx, cfg) in self.probes.iter().enumerate() {
            if !self.group_armed(cfg.group) {
                continue;
            }
            let (n, d) = cycle_contribution(cfg, events);
            if let Some((num, den)) = self.probe_state[idx].accumulate(cfg, n, d) {
                if !self.stopped {
                    self.enc.emit(
                        cycle,
                        &TraceMessage::Counter {
                            probe: idx as u8,
                            num,
                            den,
                        },
                        out,
                    );
                }
            }
        }

        if self.stopped {
            return;
        }

        // 5. Program trace (TriCore).
        if self.ptrace_tricore {
            let retired: u32 = events
                .iter()
                .filter(|e| e.source == SourceId::TRICORE)
                .map(|e| match e.event {
                    PerfEvent::InstrRetired { count } => u32::from(count),
                    _ => 0,
                })
                .sum();
            self.icnt += retired;
            for e in events {
                if e.source != SourceId::TRICORE {
                    continue;
                }
                if let PerfEvent::FlowChange { kind, to, .. } = e.event {
                    use audo_common::events::FlowKind as FK;
                    let needs_target = matches!(
                        kind,
                        FK::Indirect | FK::Return | FK::Exception | FK::ExceptionReturn
                    );
                    // After a trace gap (lock-on), the instruction count is
                    // not walkable by the host: emit icnt = 0 so the decoder
                    // jumps straight to the target.
                    let lock_on = self.need_sync;
                    let sync_due = lock_on || self.flows_since_sync + 1 >= self.sync_every;
                    let msg = if needs_target || sync_due {
                        self.flows_since_sync = 0;
                        self.need_sync = false;
                        TraceMessage::FlowTarget {
                            source: SourceId::TRICORE,
                            kind,
                            icnt: if lock_on { 0 } else { self.icnt },
                            target: to,
                            sync: !needs_target || lock_on,
                        }
                    } else {
                        self.flows_since_sync += 1;
                        TraceMessage::FlowDirect {
                            source: SourceId::TRICORE,
                            icnt: self.icnt,
                        }
                    };
                    self.enc.emit(cycle, &msg, out);
                    self.icnt = 0;
                }
            }
        }

        // 6. PCP channel trace.
        if self.pcp_trace {
            for e in events {
                match e.event {
                    PerfEvent::PcpChannelStart { channel } => self.enc.emit(
                        cycle,
                        &TraceMessage::PcpChannel {
                            channel,
                            start: true,
                        },
                        out,
                    ),
                    PerfEvent::PcpChannelExit { channel } => self.enc.emit(
                        cycle,
                        &TraceMessage::PcpChannel {
                            channel,
                            start: false,
                        },
                        out,
                    ),
                    _ => {}
                }
            }
        }

        // 7. Qualified data trace.
        if let (true, Some(q)) = (self.data_gate, self.data_qual) {
            for e in events {
                if let PerfEvent::DataValue {
                    addr,
                    value,
                    kind,
                    size,
                } = e.event
                {
                    let matches = addr >= q.lo
                        && addr <= q.hi
                        && q.source.is_none_or(|s| e.source == s)
                        && q.kind.is_none_or(|k| k == kind);
                    if matches {
                        self.enc.emit(
                            cycle,
                            &TraceMessage::Data {
                                source: e.source,
                                kind,
                                size,
                                addr,
                                value,
                            },
                            out,
                        );
                    }
                }
            }
        }

        // 8. Bus trace.
        if self.bus_trace {
            for t in bus {
                if self.bus_master_filter.is_none_or(|m| t.master == m) {
                    self.enc.emit(
                        cycle,
                        &TraceMessage::Bus {
                            master: t.master,
                            kind: t.kind,
                            size: t.size,
                            addr: t.addr,
                        },
                        out,
                    );
                }
            }
        }
    }

    fn set_trace(&mut self, unit: TraceUnit, on: bool) {
        match unit {
            TraceUnit::ProgramTricore => {
                if on && !self.ptrace_tricore {
                    self.icnt = 0;
                    self.need_sync = true;
                }
                self.ptrace_tricore = on;
            }
            TraceUnit::Data => self.data_gate = on,
            TraceUnit::Bus => self.bus_trace = on,
            TraceUnit::Pcp => self.pcp_trace = on,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::decode_stream;
    use crate::rates::Basis;
    use crate::select::EventClass;
    use crate::trigger::Cond;
    use audo_common::events::FlowKind;
    use audo_common::Addr;

    fn retire(cycle: u64, n: u8) -> EventRecord {
        EventRecord {
            cycle: Cycle(cycle),
            source: SourceId::TRICORE,
            event: PerfEvent::InstrRetired { count: n },
        }
    }

    fn flow(cycle: u64, kind: FlowKind, to: u32) -> EventRecord {
        EventRecord {
            cycle: Cycle(cycle),
            source: SourceId::TRICORE,
            event: PerfEvent::FlowChange {
                kind,
                from: Addr(0x8000_0000),
                to: Addr(to),
            },
        }
    }

    #[test]
    fn resource_limits_enforced() {
        let mut b = Mcds::builder().resources(McdsResources {
            rate_probes: 1,
            counters: 8,
            comparators: 8,
            transitions: 16,
        });
        for _ in 0..2 {
            b = b.probe(RateProbe {
                event: EventSelector::of(EventClass::InstrRetired),
                basis: Basis::Cycles(100),
                group: None,
            });
        }
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            SimError::ResourceExhausted {
                resource: "rate probes",
                ..
            }
        ));
    }

    #[test]
    fn ipc_probe_stream_decodes() {
        let mut mcds = Mcds::builder()
            .probe(RateProbe {
                event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
                basis: Basis::Cycles(10),
                group: None,
            })
            .build()
            .unwrap();
        let mut out = Vec::new();
        for c in 0..30u64 {
            let events = [retire(c, 2)];
            mcds.observe(Cycle(c), &events, &[], &mut out);
        }
        let msgs = decode_stream(&out).unwrap();
        let counters: Vec<_> = msgs
            .iter()
            .filter_map(|(_, m)| match m {
                TraceMessage::Counter { probe, num, den } => Some((*probe, *num, *den)),
                _ => None,
            })
            .collect();
        assert_eq!(
            counters,
            vec![(0, 20, 10), (0, 20, 10), (0, 20, 10)],
            "IPC 2.0"
        );
    }

    #[test]
    fn cascaded_group_armed_by_low_ipc() {
        // Probe 0: coarse IPC (10-cycle windows). Probe 1: fine-grain
        // stall-rate probe in group 1, armed while probe 0's IPC < 1.0.
        let mut mcds = Mcds::builder()
            .probe(RateProbe {
                event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
                basis: Basis::Cycles(10),
                group: None,
            })
            .probe(RateProbe {
                event: EventSelector::of(EventClass::Stall(None)),
                basis: Basis::Cycles(2),
                group: Some(1),
            })
            .transition(Transition {
                from: 0,
                cond: Cond::RateBelow {
                    probe: 0,
                    num: 1,
                    den: 1,
                },
                to: 1,
                actions: vec![Action::ArmGroup(1)],
            })
            .transition(Transition {
                from: 1,
                cond: Cond::not(Cond::RateBelow {
                    probe: 0,
                    num: 1,
                    den: 1,
                }),
                to: 0,
                actions: vec![Action::DisarmGroup(1)],
            })
            .build()
            .unwrap();
        let mut out = Vec::new();
        // Phase A (cycles 0..40): IPC 2 -> group stays disarmed.
        for c in 0..40u64 {
            let events = [retire(c, 2)];
            mcds.observe(Cycle(c), &events, &[], &mut out);
        }
        let before = decode_stream(&out)
            .unwrap()
            .iter()
            .filter(|(_, m)| matches!(m, TraceMessage::Counter { probe: 1, .. }))
            .count();
        assert_eq!(before, 0, "fine probe must be disarmed during good IPC");
        // Phase B (cycles 40..80): stalls only -> coarse IPC drops to 0,
        // group arms, fine probe samples appear.
        for c in 40..80u64 {
            let events = [EventRecord {
                cycle: Cycle(c),
                source: SourceId::TRICORE,
                event: PerfEvent::Stall {
                    reason: audo_common::events::StallReason::Data,
                },
            }];
            mcds.observe(Cycle(c), &events, &[], &mut out);
        }
        let fine_samples = decode_stream(&out)
            .unwrap()
            .iter()
            .filter(|(_, m)| matches!(m, TraceMessage::Counter { probe: 1, .. }))
            .count();
        assert!(
            fine_samples >= 10,
            "fine probe must sample during bad IPC ({fine_samples})"
        );
    }

    #[test]
    fn program_trace_syncs_then_compresses() {
        let mut mcds = Mcds::builder()
            .program_trace()
            .sync_every(4)
            .build()
            .unwrap();
        let mut out = Vec::new();
        for c in 0..12u64 {
            let events = [
                retire(c, 1),
                flow(c, FlowKind::BranchTaken, 0x8000_0100 + (c as u32) * 2),
            ];
            mcds.observe(Cycle(c), &events, &[], &mut out);
        }
        let msgs = decode_stream(&out).unwrap();
        // First flow must be a sync (absolute target), then direct flows.
        assert!(
            matches!(msgs[0].1, TraceMessage::FlowTarget { sync: true, .. }),
            "first flow is a sync: {:?}",
            msgs[0].1
        );
        let direct = msgs
            .iter()
            .filter(|(_, m)| matches!(m, TraceMessage::FlowDirect { .. }))
            .count();
        let syncs = msgs
            .iter()
            .filter(|(_, m)| matches!(m, TraceMessage::FlowTarget { sync: true, .. }))
            .count();
        assert!(direct >= 8, "most flows travel compressed ({direct})");
        assert!(syncs >= 3, "periodic resync ({syncs})");
    }

    #[test]
    fn indirect_flows_carry_targets() {
        let mut mcds = Mcds::builder().program_trace().build().unwrap();
        let mut out = Vec::new();
        let events = [retire(0, 1), flow(0, FlowKind::Return, 0x8000_4444)];
        mcds.observe(Cycle(0), &events, &[], &mut out);
        let msgs = decode_stream(&out).unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            msgs[0].1,
            TraceMessage::FlowTarget {
                kind: FlowKind::Return,
                target: Addr(0x8000_4444),
                ..
            }
        ));
    }

    #[test]
    fn watchpoint_on_debug_marker_and_stop() {
        let mut mcds = Mcds::builder()
            .comparator(Comparator::DebugCode(9))
            .transition(Transition {
                from: 0,
                cond: Cond::Comp(0),
                to: 1,
                actions: vec![Action::EmitWatchpoint(77), Action::StopCapture],
            })
            .probe(RateProbe {
                event: EventSelector::of(EventClass::Cycles),
                basis: Basis::Cycles(1),
                group: None,
            })
            .build()
            .unwrap();
        let mut out = Vec::new();
        for c in 0..10u64 {
            let mut events = vec![retire(c, 1)];
            if c == 5 {
                events.push(EventRecord {
                    cycle: Cycle(c),
                    source: SourceId::TRICORE,
                    event: PerfEvent::DebugMarker { code: 9 },
                });
            }
            mcds.observe(Cycle(c), &events, &[], &mut out);
        }
        assert!(mcds.is_stopped());
        assert_eq!(mcds.watchpoints(), &[(Cycle(5), 77)]);
        let msgs = decode_stream(&out).unwrap();
        // Per-cycle probe messages stop after the trigger at cycle 5.
        let last_cycle = msgs.last().unwrap().0;
        assert!(last_cycle <= Cycle(5), "capture frozen at the trigger");
        assert!(msgs
            .iter()
            .any(|(_, m)| matches!(m, TraceMessage::Watchpoint { code: 77 })));
    }

    #[test]
    fn trigger_gated_program_trace_window() {
        // Trace only between debug markers 1 and 2.
        let mut mcds = Mcds::builder()
            .comparator(Comparator::DebugCode(1))
            .comparator(Comparator::DebugCode(2))
            .transition(Transition {
                from: 0,
                cond: Cond::Comp(0),
                to: 1,
                actions: vec![Action::TraceOn(TraceUnit::ProgramTricore)],
            })
            .transition(Transition {
                from: 1,
                cond: Cond::Comp(1),
                to: 2,
                actions: vec![Action::TraceOff(TraceUnit::ProgramTricore)],
            })
            .build()
            .unwrap();
        let mut out = Vec::new();
        let mark = |c: u64, code: u8| EventRecord {
            cycle: Cycle(c),
            source: SourceId::TRICORE,
            event: PerfEvent::DebugMarker { code },
        };
        for c in 0..30u64 {
            let mut events = vec![retire(c, 1), flow(c, FlowKind::BranchTaken, 0x8000_0010)];
            if c == 10 {
                events.push(mark(c, 1));
            }
            if c == 20 {
                events.push(mark(c, 2));
            }
            mcds.observe(Cycle(c), &events, &[], &mut out);
        }
        let msgs = decode_stream(&out).unwrap();
        let flow_cycles: Vec<u64> = msgs
            .iter()
            .filter(|(_, m)| {
                matches!(
                    m,
                    TraceMessage::FlowDirect { .. } | TraceMessage::FlowTarget { .. }
                )
            })
            .map(|(c, _)| c.0)
            .collect();
        assert!(!flow_cycles.is_empty());
        assert!(
            flow_cycles.iter().all(|&c| (10..=20).contains(&c)),
            "{flow_cycles:?}"
        );
    }

    #[test]
    fn data_trace_qualification() {
        let mut mcds = Mcds::builder()
            .data_trace(DataQualifier {
                lo: Addr(0xD000_0100),
                hi: Addr(0xD000_01FF),
                source: None,
                kind: Some(audo_common::AccessKind::Write),
            })
            .build()
            .unwrap();
        let mut out = Vec::new();
        let dv = |c: u64, addr: u32, kind: audo_common::AccessKind| EventRecord {
            cycle: Cycle(c),
            source: SourceId::TRICORE,
            event: PerfEvent::DataValue {
                addr: Addr(addr),
                value: 42,
                kind,
                size: 4,
            },
        };
        use audo_common::AccessKind::{Read, Write};
        mcds.observe(Cycle(0), &[dv(0, 0xD000_0104, Write)], &[], &mut out);
        mcds.observe(Cycle(1), &[dv(1, 0xD000_0104, Read)], &[], &mut out); // kind filtered
        mcds.observe(Cycle(2), &[dv(2, 0xD000_0300, Write)], &[], &mut out); // range filtered
        let msgs = decode_stream(&out).unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            msgs[0].1,
            TraceMessage::Data {
                addr: Addr(0xD000_0104),
                ..
            }
        ));
    }
}

#[cfg(test)]
mod watchdog_tests {
    use super::*;
    use crate::select::EventClass;
    use crate::trigger::Cond;
    use audo_common::events::FlowKind;
    use audo_common::Addr;

    /// §3: "It is for instance possible to trigger on events not happening
    /// in a defined time window." Expressed with the stock primitives: a
    /// cycle counter that is reset whenever the watched event occurs, and a
    /// transition that fires when the counter reaches the window length.
    #[test]
    fn trigger_on_event_absence_watchdog() {
        let window = 50u64;
        let mut mcds = Mcds::builder()
            .counter(EventSelector::of(EventClass::Cycles)) // counter 0: cycles since last event
            .comparator(Comparator::Event(EventSelector::of(EventClass::FlowChange)))
            // Watched event seen: reset the watchdog counter, stay armed.
            .transition(Transition {
                from: 0,
                cond: Cond::Comp(0),
                to: 0,
                actions: vec![Action::ResetCounter(0)],
            })
            // Window expired without the event: trip.
            .transition(Transition {
                from: 0,
                cond: Cond::CounterAtLeast {
                    counter: 0,
                    value: window,
                },
                to: 1,
                actions: vec![Action::EmitWatchpoint(0xAB)],
            })
            .build()
            .unwrap();
        let mut out = Vec::new();
        let flow = |c: u64| EventRecord {
            cycle: Cycle(c),
            source: SourceId::TRICORE,
            event: PerfEvent::FlowChange {
                kind: FlowKind::BranchTaken,
                from: Addr(0x100),
                to: Addr(0x200),
            },
        };
        // Phase 1: the event keeps arriving every 20 cycles — no trip.
        for c in 0..200u64 {
            let events = if c % 20 == 0 { vec![flow(c)] } else { vec![] };
            mcds.observe(Cycle(c), &events, &[], &mut out);
        }
        assert!(
            mcds.watchpoints().is_empty(),
            "watchdog must not trip while fed"
        );
        // Phase 2: the event stops; the watchdog trips ~window later.
        for c in 200..400u64 {
            mcds.observe(Cycle(c), &[], &[], &mut out);
        }
        assert_eq!(mcds.watchpoints().len(), 1, "one trip");
        let (at, _) = mcds.watchpoints()[0];
        assert!(
            (200..=200 + window + 25).contains(&at.0),
            "tripped near the window expiry, at {at}"
        );
    }
}

#[cfg(test)]
mod timestamp_tests {
    use super::*;
    use crate::rates::Basis;
    use crate::select::EventClass;

    fn run_with_shift(shift: u8) -> (Vec<u8>, Vec<Cycle>) {
        let mut mcds = Mcds::builder()
            .probe(RateProbe {
                event: EventSelector::of(EventClass::InstrRetired),
                basis: Basis::Cycles(300),
                group: None,
            })
            .timestamp_shift(shift)
            .build()
            .unwrap();
        let mut out = Vec::new();
        for c in 0..30_000u64 {
            let events = [EventRecord {
                cycle: Cycle(c),
                source: SourceId::TRICORE,
                event: PerfEvent::InstrRetired { count: 1 },
            }];
            mcds.observe(Cycle(c), &events, &[], &mut out);
        }
        let stamps = crate::msg::decode_stream_shifted(&out, shift)
            .unwrap()
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        (out, stamps)
    }

    #[test]
    fn coarser_stamps_shrink_the_stream_but_keep_order() {
        let (fine, fine_stamps) = run_with_shift(0);
        let (coarse, coarse_stamps) = run_with_shift(6);
        assert!(
            coarse.len() < fine.len(),
            "{} !< {}",
            coarse.len(),
            fine.len()
        );
        assert_eq!(fine_stamps.len(), coarse_stamps.len(), "same message count");
        assert!(
            coarse_stamps.windows(2).all(|w| w[0] <= w[1]),
            "order preserved"
        );
        // Quantized stamps are multiples of 64 and within one quantum of
        // the exact stamp.
        for (f, c) in fine_stamps.iter().zip(&coarse_stamps) {
            assert_eq!(c.0 % 64, 0);
            assert!(f.0 - c.0 < 64, "{f} vs {c}");
        }
        // 300-cycle deltas need two varint bytes exactly; quantized deltas
        // (4..5 units) need one: ~1 byte saved per message.
        assert!(
            fine.len() >= coarse.len() + 90,
            "{} vs {}",
            fine.len(),
            coarse.len()
        );
    }
}
