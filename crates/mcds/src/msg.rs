//! The compressed trace message protocol.
//!
//! Messages are what the MCDS writes into the emulation memory and what the
//! tool downloads over DAP/JTAG, so their size *is* the methodology's
//! bandwidth story (§5 closes on exactly this trade-off). The protocol uses
//! Nexus-style compression:
//!
//! * program flow is only reported at *discontinuities*: a direct taken
//!   branch needs just the instruction count since the last message
//!   ([`TraceMessage::FlowDirect`]) because the host knows the program
//!   image; indirect targets travel as deltas; periodic sync messages carry
//!   absolute addresses for mid-stream decode,
//! * every message carries a varint cycle-delta timestamp, preserving event
//!   order "down to cycle level" across cores and buses,
//! * rate samples are `{probe, numerator, denominator}` triples — the
//!   on-chip counting that §5 contrasts with shipping raw counters.
//!
//! Wire format: `[header byte][ts-delta varint][payload…]` with the kind in
//! the header's low 5 bits and the source id in the high 3 bits.

use audo_common::events::FlowKind;
use audo_common::{varint, AccessKind, Addr, Cycle, SimError, SourceId};

/// A decoded trace message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceMessage {
    /// A taken *direct* control transfer; the target is statically known to
    /// the host, so only the instruction count since the last flow message
    /// travels.
    FlowDirect {
        /// Emitting core.
        source: SourceId,
        /// Instructions retired since the last flow message (inclusive of
        /// the branch itself).
        icnt: u32,
    },
    /// A control transfer whose target must travel (indirect, return,
    /// exception) — or a periodic synchronisation point.
    FlowTarget {
        /// Emitting core.
        source: SourceId,
        /// Flow classification.
        kind: FlowKind,
        /// Instructions retired since the last flow message.
        icnt: u32,
        /// Absolute target address.
        target: Addr,
        /// `true` when this is a periodic sync for a direct branch.
        sync: bool,
    },
    /// One rate-probe sample: `num` events per `den` basis units.
    Counter {
        /// Probe index.
        probe: u8,
        /// Event count in the window.
        num: u64,
        /// Basis count in the window (cycles or instructions).
        den: u64,
    },
    /// Trigger-unit watchpoint.
    Watchpoint {
        /// Action-defined code.
        code: u8,
    },
    /// Qualified data-trace record.
    Data {
        /// Master that performed the access.
        source: SourceId,
        /// Read or write.
        kind: AccessKind,
        /// Access width in bytes.
        size: u8,
        /// Absolute address.
        addr: Addr,
        /// Transferred value.
        value: u32,
    },
    /// Bus-observation record.
    Bus {
        /// Granted master.
        master: SourceId,
        /// Access kind.
        kind: AccessKind,
        /// Width in bytes.
        size: u8,
        /// Address.
        addr: Addr,
    },
    /// PCP channel activity marker.
    PcpChannel {
        /// Channel number.
        channel: u8,
        /// `true` = start, `false` = exit.
        start: bool,
    },
    /// Trace-memory overflow: `lost` bytes of messages were dropped.
    Overflow {
        /// Bytes lost.
        lost: u64,
    },
}

const KIND_FLOW_DIRECT: u8 = 1;
const KIND_FLOW_TARGET: u8 = 2;
const KIND_FLOW_TARGET_SYNC: u8 = 3;
const KIND_COUNTER: u8 = 4;
const KIND_WATCHPOINT: u8 = 5;
const KIND_DATA_R: u8 = 6;
const KIND_DATA_W: u8 = 7;
const KIND_BUS: u8 = 8;
const KIND_PCP_START: u8 = 9;
const KIND_PCP_EXIT: u8 = 10;
const KIND_OVERFLOW: u8 = 11;

fn flow_kind_code(k: FlowKind) -> u8 {
    match k {
        FlowKind::BranchTaken => 0,
        FlowKind::Indirect => 1,
        FlowKind::Call => 2,
        FlowKind::Return => 3,
        FlowKind::Exception => 4,
        FlowKind::ExceptionReturn => 5,
    }
}

fn flow_kind_from(code: u8) -> Option<FlowKind> {
    Some(match code {
        0 => FlowKind::BranchTaken,
        1 => FlowKind::Indirect,
        2 => FlowKind::Call,
        3 => FlowKind::Return,
        4 => FlowKind::Exception,
        5 => FlowKind::ExceptionReturn,
        _ => return None,
    })
}

/// Stateful message encoder (address-delta and timestamp compression).
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    last_qcycle: u64,
    last_target: u32,
    last_data_addr: u32,
    last_bus_addr: u32,
    messages: u64,
    /// Timestamp unit = `2^shift` cycles ("scalable time-stamping", §3).
    shift: u8,
}

impl Encoder {
    /// Creates a fresh encoder (stream starts at cycle 0, cycle-exact
    /// timestamps).
    #[must_use]
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Creates an encoder whose timestamps count `2^shift`-cycle units:
    /// coarser stamps, shorter deltas, same message order. The decoder
    /// must be given the same shift.
    #[must_use]
    pub fn with_shift(shift: u8) -> Encoder {
        Encoder {
            shift: shift.min(20),
            ..Encoder::default()
        }
    }

    /// Messages emitted so far.
    #[must_use]
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Appends `msg` (timestamped at `cycle`) to `out`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` runs backwards relative to the previous message.
    pub fn emit(&mut self, cycle: Cycle, msg: &TraceMessage, out: &mut Vec<u8>) {
        let qcycle = cycle.0 >> self.shift;
        assert!(
            qcycle >= self.last_qcycle,
            "trace timestamps must be monotonic"
        );
        let (kind, source) = match msg {
            TraceMessage::FlowDirect { source, .. } => (KIND_FLOW_DIRECT, *source),
            TraceMessage::FlowTarget { source, sync, .. } => (
                if *sync {
                    KIND_FLOW_TARGET_SYNC
                } else {
                    KIND_FLOW_TARGET
                },
                *source,
            ),
            TraceMessage::Counter { .. } => (KIND_COUNTER, SourceId(0)),
            TraceMessage::Watchpoint { .. } => (KIND_WATCHPOINT, SourceId(0)),
            TraceMessage::Data { source, kind, .. } => (
                if *kind == AccessKind::Write {
                    KIND_DATA_W
                } else {
                    KIND_DATA_R
                },
                *source,
            ),
            TraceMessage::Bus { master, .. } => (KIND_BUS, *master),
            TraceMessage::PcpChannel { start, .. } => (
                if *start {
                    KIND_PCP_START
                } else {
                    KIND_PCP_EXIT
                },
                SourceId::PCP,
            ),
            TraceMessage::Overflow { .. } => (KIND_OVERFLOW, SourceId(0)),
        };
        out.push(kind | (source.0 << 5));
        varint::write_u64(out, qcycle - self.last_qcycle);
        self.last_qcycle = qcycle;
        self.messages += 1;
        match *msg {
            TraceMessage::FlowDirect { icnt, .. } => {
                varint::write_u64(out, u64::from(icnt));
            }
            TraceMessage::FlowTarget {
                kind, icnt, target, ..
            } => {
                out.push(flow_kind_code(kind));
                varint::write_u64(out, u64::from(icnt));
                let delta = i64::from(target.0 as i32) - i64::from(self.last_target as i32);
                varint::write_i64(out, delta);
                self.last_target = target.0;
            }
            TraceMessage::Counter { probe, num, den } => {
                out.push(probe);
                varint::write_u64(out, num);
                varint::write_u64(out, den);
            }
            TraceMessage::Watchpoint { code } => out.push(code),
            TraceMessage::Data {
                size, addr, value, ..
            } => {
                out.push(size);
                let delta = i64::from(addr.0 as i32) - i64::from(self.last_data_addr as i32);
                varint::write_i64(out, delta);
                self.last_data_addr = addr.0;
                varint::write_u64(out, u64::from(value));
            }
            TraceMessage::Bus {
                kind, size, addr, ..
            } => {
                out.push(size | (if kind == AccessKind::Write { 0x80 } else { 0 }));
                let delta = i64::from(addr.0 as i32) - i64::from(self.last_bus_addr as i32);
                varint::write_i64(out, delta);
                self.last_bus_addr = addr.0;
            }
            TraceMessage::PcpChannel { channel, .. } => out.push(channel),
            TraceMessage::Overflow { lost } => varint::write_u64(out, lost),
        }
    }
}

/// Decodes a complete message stream.
///
/// # Errors
///
/// Returns [`SimError::DecodeTrace`] on malformed input.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<(Cycle, TraceMessage)>, SimError> {
    let (msgs, err) = decode_stream_inner(bytes, 0, None);
    match err {
        Some(e) => Err(e),
        None => Ok(msgs),
    }
}

/// Decodes a stream whose timestamps were encoded with
/// [`Encoder::with_shift`]; returned cycles are quantized to `2^shift`.
///
/// # Errors
///
/// Returns [`SimError::DecodeTrace`] on malformed input.
pub fn decode_stream_shifted(
    bytes: &[u8],
    shift: u8,
) -> Result<Vec<(Cycle, TraceMessage)>, SimError> {
    let (msgs, err) = decode_stream_inner(bytes, shift, None);
    match err {
        Some(e) => Err(e),
        None => Ok(msgs),
    }
}

/// Decodes as much of a (possibly truncated or overflow-damaged) stream as
/// possible: returns every message up to the first malformed byte, plus the
/// error that stopped decoding, if any.
#[must_use]
pub fn decode_stream_lossy(bytes: &[u8]) -> (Vec<(Cycle, TraceMessage)>, Option<SimError>) {
    decode_stream_inner(bytes, 0, None)
}

/// Lossy decode with a timestamp shift (see [`Encoder::with_shift`]).
#[must_use]
pub fn decode_stream_lossy_shifted(
    bytes: &[u8],
    shift: u8,
) -> (Vec<(Cycle, TraceMessage)>, Option<SimError>) {
    decode_stream_inner(bytes, shift, None)
}

/// Lossy shifted decode that also reports each message's encoded size in
/// bytes (header + timestamp + payload), in stream order — the input for
/// wire-compression histograms. `sizes.len()` always equals the number of
/// messages returned.
#[must_use]
pub fn decode_stream_lossy_shifted_sized(
    bytes: &[u8],
    shift: u8,
    sizes: &mut Vec<usize>,
) -> (Vec<(Cycle, TraceMessage)>, Option<SimError>) {
    decode_stream_inner(bytes, shift, Some(sizes))
}

fn decode_stream_inner(
    bytes: &[u8],
    shift: u8,
    mut sizes: Option<&mut Vec<usize>>,
) -> (Vec<(Cycle, TraceMessage)>, Option<SimError>) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut cycle = 0u64;
    let mut last_target = 0u32;
    let mut last_data_addr = 0u32;
    let mut last_bus_addr = 0u32;
    let err = |pos: usize, m: &str| SimError::DecodeTrace {
        offset: pos,
        message: m.to_string(),
    };

    while pos < bytes.len() {
        let header = bytes[pos];
        let start = pos;
        pos += 1;
        let kind = header & 0x1F;
        let source = SourceId(header >> 5);
        let (dt, used) = match varint::read_u64(&bytes[pos..]) {
            Ok(v) => v,
            Err(_) => return (out, Some(err(pos, "truncated timestamp"))),
        };
        pos += used;
        cycle += dt << shift;

        macro_rules! vu {
            () => {{
                match varint::read_u64(&bytes[pos..]) {
                    Ok((v, used)) => {
                        pos += used;
                        v
                    }
                    Err(_) => return (out, Some(err(pos, "truncated varint"))),
                }
            }};
        }
        macro_rules! vi {
            () => {{
                match varint::read_i64(&bytes[pos..]) {
                    Ok((v, used)) => {
                        pos += used;
                        v
                    }
                    Err(_) => return (out, Some(err(pos, "truncated varint"))),
                }
            }};
        }
        macro_rules! byte {
            () => {{
                match bytes.get(pos) {
                    Some(&b) => {
                        pos += 1;
                        b
                    }
                    None => return (out, Some(err(pos, "truncated payload"))),
                }
            }};
        }

        let msg = match kind {
            KIND_FLOW_DIRECT => TraceMessage::FlowDirect {
                source,
                icnt: vu!() as u32,
            },
            KIND_FLOW_TARGET | KIND_FLOW_TARGET_SYNC => {
                let Some(fk) = flow_kind_from(byte!()) else {
                    return (out, Some(err(start, "bad flow kind")));
                };
                let icnt = vu!() as u32;
                let delta = vi!();
                let target = (i64::from(last_target as i32) + delta) as u32;
                last_target = target;
                TraceMessage::FlowTarget {
                    source,
                    kind: fk,
                    icnt,
                    target: Addr(target),
                    sync: kind == KIND_FLOW_TARGET_SYNC,
                }
            }
            KIND_COUNTER => {
                let probe = byte!();
                TraceMessage::Counter {
                    probe,
                    num: vu!(),
                    den: vu!(),
                }
            }
            KIND_WATCHPOINT => TraceMessage::Watchpoint { code: byte!() },
            KIND_DATA_R | KIND_DATA_W => {
                let size = byte!();
                let delta = vi!();
                let addr = (i64::from(last_data_addr as i32) + delta) as u32;
                last_data_addr = addr;
                let value = vu!() as u32;
                TraceMessage::Data {
                    source,
                    kind: if kind == KIND_DATA_W {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    size,
                    addr: Addr(addr),
                    value,
                }
            }
            KIND_BUS => {
                let ks = byte!();
                let delta = vi!();
                let addr = (i64::from(last_bus_addr as i32) + delta) as u32;
                last_bus_addr = addr;
                TraceMessage::Bus {
                    master: source,
                    kind: if ks & 0x80 != 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    size: ks & 0x7F,
                    addr: Addr(addr),
                }
            }
            KIND_PCP_START | KIND_PCP_EXIT => TraceMessage::PcpChannel {
                channel: byte!(),
                start: kind == KIND_PCP_START,
            },
            KIND_OVERFLOW => TraceMessage::Overflow { lost: vu!() },
            other => {
                return (
                    out,
                    Some(err(start, &format!("unknown message kind {other}"))),
                )
            }
        };
        out.push((Cycle(cycle), msg));
        if let Some(sizes) = sizes.as_deref_mut() {
            sizes.push(pos - start);
        }
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msgs: Vec<(u64, TraceMessage)>) {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        for (c, m) in &msgs {
            enc.emit(Cycle(*c), m, &mut buf);
        }
        let decoded = decode_stream(&buf).expect("decodes");
        assert_eq!(decoded.len(), msgs.len());
        for ((c, m), (dc, dm)) in msgs.iter().zip(&decoded) {
            assert_eq!(Cycle(*c), *dc);
            assert_eq!(m, dm);
        }
        assert_eq!(enc.message_count(), msgs.len() as u64);
    }

    #[test]
    fn roundtrip_all_kinds() {
        roundtrip(vec![
            (
                5,
                TraceMessage::FlowDirect {
                    source: SourceId::TRICORE,
                    icnt: 17,
                },
            ),
            (
                9,
                TraceMessage::FlowTarget {
                    source: SourceId::TRICORE,
                    kind: FlowKind::Return,
                    icnt: 3,
                    target: Addr(0x8000_1234),
                    sync: false,
                },
            ),
            (
                9,
                TraceMessage::FlowTarget {
                    source: SourceId::TRICORE,
                    kind: FlowKind::BranchTaken,
                    icnt: 250,
                    target: Addr(0x8000_1000),
                    sync: true,
                },
            ),
            (
                20,
                TraceMessage::Counter {
                    probe: 3,
                    num: 250,
                    den: 1000,
                },
            ),
            (21, TraceMessage::Watchpoint { code: 42 }),
            (
                30,
                TraceMessage::Data {
                    source: SourceId::TRICORE,
                    kind: AccessKind::Write,
                    size: 4,
                    addr: Addr(0xD000_0100),
                    value: 0xFFFF_FFFF,
                },
            ),
            (
                31,
                TraceMessage::Data {
                    source: SourceId::DMA,
                    kind: AccessKind::Read,
                    size: 2,
                    addr: Addr(0xD000_00FC),
                    value: 7,
                },
            ),
            (
                40,
                TraceMessage::Bus {
                    master: SourceId::DMA,
                    kind: AccessKind::Read,
                    size: 4,
                    addr: Addr(0x9000_0000),
                },
            ),
            (
                50,
                TraceMessage::PcpChannel {
                    channel: 3,
                    start: true,
                },
            ),
            (
                90,
                TraceMessage::PcpChannel {
                    channel: 3,
                    start: false,
                },
            ),
            (100, TraceMessage::Overflow { lost: 4096 }),
        ]);
    }

    #[test]
    fn sized_decode_partitions_the_stream_exactly() {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        let msgs = [
            TraceMessage::FlowDirect {
                source: SourceId::TRICORE,
                icnt: 17,
            },
            TraceMessage::Watchpoint { code: 42 },
            TraceMessage::Overflow { lost: 4096 },
        ];
        for (i, m) in msgs.iter().enumerate() {
            enc.emit(Cycle(i as u64 * 10), m, &mut buf);
        }
        let mut sizes = Vec::new();
        let (decoded, err) = decode_stream_lossy_shifted_sized(&buf, 0, &mut sizes);
        assert!(err.is_none());
        assert_eq!(decoded.len(), msgs.len());
        assert_eq!(sizes.len(), msgs.len());
        assert_eq!(sizes.iter().sum::<usize>(), buf.len());
        assert!(sizes.iter().all(|&s| s >= 2), "header + timestamp minimum");
    }

    #[test]
    fn nearby_data_addresses_compress_well() {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        // First message establishes the address base.
        enc.emit(
            Cycle(0),
            &TraceMessage::Data {
                source: SourceId::TRICORE,
                kind: AccessKind::Read,
                size: 4,
                addr: Addr(0xD000_0000),
                value: 1,
            },
            &mut buf,
        );
        let after_first = buf.len();
        enc.emit(
            Cycle(1),
            &TraceMessage::Data {
                source: SourceId::TRICORE,
                kind: AccessKind::Read,
                size: 4,
                addr: Addr(0xD000_0004),
                value: 1,
            },
            &mut buf,
        );
        let second = buf.len() - after_first;
        assert!(
            second <= 5,
            "sequential data access should be ≤5 bytes, got {second}"
        );
    }

    #[test]
    fn flow_direct_is_three_bytes_or_less() {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        enc.emit(
            Cycle(10),
            &TraceMessage::FlowDirect {
                source: SourceId::TRICORE,
                icnt: 12,
            },
            &mut buf,
        );
        assert!(buf.len() <= 3, "got {} bytes", buf.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_stream(&[0xFF]).is_err());
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        enc.emit(Cycle(0), &TraceMessage::Watchpoint { code: 1 }, &mut buf);
        buf.pop();
        assert!(decode_stream(&buf).is_err());
        // Unknown kind 31.
        assert!(decode_stream(&[31, 0]).is_err());
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn non_monotonic_timestamps_panic() {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        enc.emit(Cycle(10), &TraceMessage::Watchpoint { code: 0 }, &mut buf);
        enc.emit(Cycle(5), &TraceMessage::Watchpoint { code: 0 }, &mut buf);
    }
}
