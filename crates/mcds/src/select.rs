//! Event selectors: which hardware events a counter or probe taps.
//!
//! The AUDO FUTURE MCDS "taps directly performance relevant event sources
//! like cache hits/misses, bus contentions, etc." (§3). An
//! [`EventSelector`] is the programmable mux in front of a counter: it
//! picks an event class and optionally restricts the emitting block.

use audo_common::events::{CacheId, FlashPort, StallReason};
use audo_common::{AccessKind, EventRecord, PerfEvent, SourceId};

/// Event classes a counter can count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EventClass {
    /// Every cycle (the resolution basis for IPC).
    Cycles,
    /// Instructions retired (weighted by per-cycle retire count).
    InstrRetired,
    /// Instruction-cache hits.
    IcacheHit,
    /// Instruction-cache misses.
    IcacheMiss,
    /// Data-cache hits.
    DcacheHit,
    /// Data-cache misses.
    DcacheMiss,
    /// Flash read-buffer hits on a port (`None` = both ports).
    FlashBufferHit(Option<FlashPort>),
    /// Flash read-buffer misses on a port (`None` = both ports).
    FlashBufferMiss(Option<FlashPort>),
    /// Code fetches that reached the flash array path.
    FlashCodeFetch,
    /// Flash port-arbitration conflicts.
    FlashPortConflict,
    /// Data accesses to a region (`None` kind = reads and writes).
    DataAccess {
        /// Memory region the selector matches on.
        region: audo_common::events::MemRegion,
        /// Restrict to reads or writes; `None` counts both.
        kind: Option<AccessKind>,
    },
    /// Crossbar contention events.
    BusContention,
    /// Crossbar grants.
    BusGrant,
    /// Service requests raised.
    IrqRaised,
    /// Interrupts accepted by the CPU.
    IrqTaken,
    /// DMA beats moved.
    DmaBeat,
    /// Pipeline stall cycles (`None` = any reason).
    Stall(Option<StallReason>),
    /// Control-flow discontinuities retired.
    FlowChange,
    /// Software debug markers (`None` = any code).
    DebugMarker(Option<u8>),
}

/// A programmable event selector: class plus optional source filter.
///
/// # Examples
///
/// ```
/// use audo_common::{Cycle, EventRecord, PerfEvent, SourceId};
/// use audo_mcds::select::{EventClass, EventSelector};
///
/// let sel = EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE);
/// let rec = EventRecord {
///     cycle: Cycle(1),
///     source: SourceId::TRICORE,
///     event: PerfEvent::InstrRetired { count: 3 },
/// };
/// assert_eq!(sel.weight(&rec), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventSelector {
    /// The event class to count.
    pub class: EventClass,
    /// Restrict to one emitting block (`None` = any).
    pub source: Option<SourceId>,
}

impl EventSelector {
    /// Selector for `class` from any source.
    #[must_use]
    pub fn of(class: EventClass) -> EventSelector {
        EventSelector {
            class,
            source: None,
        }
    }

    /// Restricts the selector to events emitted by `source`.
    #[must_use]
    pub fn from(mut self, source: SourceId) -> EventSelector {
        self.source = Some(source);
        self
    }

    /// How much `rec` contributes to a counter with this selector
    /// (0 = no match; `InstrRetired` contributes its retire count).
    #[must_use]
    pub fn weight(&self, rec: &EventRecord) -> u64 {
        if let Some(src) = self.source {
            if rec.source != src {
                return 0;
            }
        }
        use EventClass as C;
        use PerfEvent as E;
        match (self.class, &rec.event) {
            (C::Cycles, _) => 0, // cycles are counted by the clock, not events
            (C::InstrRetired, E::InstrRetired { count }) => u64::from(*count),
            (
                C::IcacheHit,
                E::CacheHit {
                    cache: CacheId::Instruction,
                },
            ) => 1,
            (
                C::IcacheMiss,
                E::CacheMiss {
                    cache: CacheId::Instruction,
                },
            ) => 1,
            (
                C::DcacheHit,
                E::CacheHit {
                    cache: CacheId::Data,
                },
            ) => 1,
            (
                C::DcacheMiss,
                E::CacheMiss {
                    cache: CacheId::Data,
                },
            ) => 1,
            (C::FlashBufferHit(want), E::FlashBufferHit { port }) => {
                u64::from(want.is_none() || want == Some(*port))
            }
            (C::FlashBufferMiss(want), E::FlashBufferMiss { port }) => {
                u64::from(want.is_none() || want == Some(*port))
            }
            (C::FlashCodeFetch, E::FlashCodeFetch) => 1,
            (C::FlashPortConflict, E::FlashPortConflict { .. }) => 1,
            (C::DataAccess { region, kind }, E::DataAccess { region: r, kind: k }) => {
                u64::from(region == *r && (kind.is_none() || kind == Some(*k)))
            }
            (C::BusContention, E::BusContention { .. }) => 1,
            (C::BusGrant, E::BusGrant { .. }) => 1,
            (C::IrqRaised, E::IrqRaised { .. }) => 1,
            (C::IrqTaken, E::IrqTaken { .. }) => 1,
            (C::DmaBeat, E::DmaBeat { .. }) => 1,
            (C::Stall(want), E::Stall { reason }) => {
                u64::from(want.is_none() || want == Some(*reason))
            }
            (C::FlowChange, E::FlowChange { .. }) => 1,
            (C::DebugMarker(want), E::DebugMarker { code }) => {
                u64::from(want.is_none() || want == Some(*code))
            }
            _ => 0,
        }
    }

    /// Contribution per cycle independent of events (only `Cycles` has one).
    #[must_use]
    pub fn per_cycle_weight(&self) -> u64 {
        u64::from(self.class == EventClass::Cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audo_common::Cycle;

    fn rec(source: SourceId, event: PerfEvent) -> EventRecord {
        EventRecord {
            cycle: Cycle(0),
            source,
            event,
        }
    }

    #[test]
    fn source_filter_applies() {
        let sel = EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE);
        assert_eq!(
            sel.weight(&rec(
                SourceId::TRICORE,
                PerfEvent::InstrRetired { count: 2 }
            )),
            2
        );
        assert_eq!(
            sel.weight(&rec(SourceId::PCP, PerfEvent::InstrRetired { count: 2 })),
            0
        );
        let any = EventSelector::of(EventClass::InstrRetired);
        assert_eq!(
            any.weight(&rec(SourceId::PCP, PerfEvent::InstrRetired { count: 2 })),
            2
        );
    }

    #[test]
    fn cache_selectors_distinguish_caches() {
        let ihit = EventSelector::of(EventClass::IcacheHit);
        let dhit = EventSelector::of(EventClass::DcacheHit);
        let e = rec(
            SourceId::TRICORE,
            PerfEvent::CacheHit {
                cache: CacheId::Instruction,
            },
        );
        assert_eq!(ihit.weight(&e), 1);
        assert_eq!(dhit.weight(&e), 0);
    }

    #[test]
    fn port_and_kind_filters() {
        let code_miss = EventSelector::of(EventClass::FlashBufferMiss(Some(FlashPort::Code)));
        let any_miss = EventSelector::of(EventClass::FlashBufferMiss(None));
        let e = rec(
            SourceId::PMU,
            PerfEvent::FlashBufferMiss {
                port: FlashPort::Data,
            },
        );
        assert_eq!(code_miss.weight(&e), 0);
        assert_eq!(any_miss.weight(&e), 1);

        use audo_common::events::MemRegion;
        let reads = EventSelector::of(EventClass::DataAccess {
            region: MemRegion::PFlash,
            kind: Some(AccessKind::Read),
        });
        let e = rec(
            SourceId::TRICORE,
            PerfEvent::DataAccess {
                region: MemRegion::PFlash,
                kind: AccessKind::Read,
            },
        );
        assert_eq!(reads.weight(&e), 1);
        let e2 = rec(
            SourceId::TRICORE,
            PerfEvent::DataAccess {
                region: MemRegion::Sram,
                kind: AccessKind::Read,
            },
        );
        assert_eq!(reads.weight(&e2), 0);
    }

    #[test]
    fn cycles_counts_per_cycle_not_per_event() {
        let sel = EventSelector::of(EventClass::Cycles);
        assert_eq!(sel.per_cycle_weight(), 1);
        assert_eq!(
            sel.weight(&rec(
                SourceId::TRICORE,
                PerfEvent::InstrRetired { count: 1 }
            )),
            0
        );
        assert_eq!(
            EventSelector::of(EventClass::InstrRetired).per_cycle_weight(),
            0
        );
    }

    #[test]
    fn stall_reason_filter() {
        use audo_common::events::StallReason;
        let any = EventSelector::of(EventClass::Stall(None));
        let fetch = EventSelector::of(EventClass::Stall(Some(StallReason::Fetch)));
        let e = rec(
            SourceId::TRICORE,
            PerfEvent::Stall {
                reason: StallReason::Data,
            },
        );
        assert_eq!(any.weight(&e), 1);
        assert_eq!(fetch.weight(&e), 0);
    }
}
