//! Property tests for the on-chip rate measurement: nothing is ever lost or
//! invented between the event stream and the emitted counter windows.

use audo_common::{Cycle, EventRecord, PerfEvent, SourceId};
use audo_mcds::msg::{decode_stream, TraceMessage};
use audo_mcds::select::{EventClass, EventSelector};
use audo_mcds::{Basis, Mcds, RateProbe};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Sum of all emitted windows equals the total event weight minus the
    /// still-open window, for both basis kinds and any window length.
    #[test]
    fn windows_account_for_every_event(
        retires in proptest::collection::vec(0u8..4, 1..400),
        misses in proptest::collection::vec(any::<bool>(), 1..400),
        window in 1u32..64,
        cycle_basis in any::<bool>(),
    ) {
        let basis = if cycle_basis {
            Basis::Cycles(window)
        } else {
            Basis::Instructions { source: SourceId::TRICORE, n: window }
        };
        let mut mcds = Mcds::builder()
            .probe(RateProbe {
                event: EventSelector::of(EventClass::IcacheMiss),
                basis,
                group: None,
            })
            .build()
            .unwrap();
        let mut out = Vec::new();
        let mut total_misses = 0u64;
        let mut total_retires = 0u64;
        let n = retires.len().max(misses.len());
        for c in 0..n {
            let mut events = Vec::new();
            let r = retires.get(c).copied().unwrap_or(0);
            if r > 0 {
                events.push(EventRecord {
                    cycle: Cycle(c as u64),
                    source: SourceId::TRICORE,
                    event: PerfEvent::InstrRetired { count: r },
                });
                total_retires += u64::from(r);
            }
            if misses.get(c).copied().unwrap_or(false) {
                events.push(EventRecord {
                    cycle: Cycle(c as u64),
                    source: SourceId::TRICORE,
                    event: PerfEvent::CacheMiss {
                        cache: audo_common::events::CacheId::Instruction,
                    },
                });
                total_misses += 1;
            }
            mcds.observe(Cycle(c as u64), &events, &[], &mut out);
        }
        let msgs = decode_stream(&out).unwrap();
        let mut sum_num = 0u64;
        let mut sum_den = 0u64;
        for (_, m) in &msgs {
            if let TraceMessage::Counter { num, den, .. } = m {
                sum_num += num;
                sum_den += den;
                // Windows close when the basis reaches the target; the
                // overshoot is bounded by one cycle's worth of basis.
                prop_assert!(*den >= u64::from(window) || msgs.len() == 1);
                prop_assert!(*den < u64::from(window) + 4);
            }
        }
        // Whatever was not emitted is the open window: strictly less than
        // one full basis window.
        let total_basis = if cycle_basis { n as u64 } else { total_retires };
        prop_assert!(sum_num <= total_misses);
        prop_assert!(total_basis - sum_den < u64::from(window) + 4);
        // Replaying the residual: every miss in the emitted span is
        // accounted exactly (no loss, no invention) — verified by summing a
        // second probe with a 1-unit window, which emits everything.
        let mut fine = Mcds::builder()
            .probe(RateProbe {
                event: EventSelector::of(EventClass::IcacheMiss),
                basis: if cycle_basis {
                    Basis::Cycles(1)
                } else {
                    Basis::Instructions { source: SourceId::TRICORE, n: 1 }
                },
                group: None,
            })
            .build()
            .unwrap();
        let mut out2 = Vec::new();
        for c in 0..n {
            let mut events = Vec::new();
            let r = retires.get(c).copied().unwrap_or(0);
            if r > 0 {
                events.push(EventRecord {
                    cycle: Cycle(c as u64),
                    source: SourceId::TRICORE,
                    event: PerfEvent::InstrRetired { count: r },
                });
            }
            if misses.get(c).copied().unwrap_or(false) {
                events.push(EventRecord {
                    cycle: Cycle(c as u64),
                    source: SourceId::TRICORE,
                    event: PerfEvent::CacheMiss {
                        cache: audo_common::events::CacheId::Instruction,
                    },
                });
            }
            fine.observe(Cycle(c as u64), &events, &[], &mut out2);
        }
        let fine_sum: u64 = decode_stream(&out2)
            .unwrap()
            .iter()
            .filter_map(|(_, m)| match m {
                TraceMessage::Counter { num, .. } => Some(*num),
                _ => None,
            })
            .sum();
        if cycle_basis {
            prop_assert_eq!(fine_sum, total_misses, "1-cycle windows capture everything");
        }
    }
}
