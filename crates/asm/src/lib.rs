#![warn(missing_docs)]
//! Literate-assembly workloads: markdown programs → loadable images.
//!
//! The workload corpus under `workloads/corpus/` is written as ordinary
//! markdown — prose explaining *why* a program pokes at an ISA corner,
//! with the program itself in ` ```asm ` fenced blocks. This crate turns
//! such a document into a loadable [`audo_tricore::Image`]:
//!
//! - [`literate`] extracts the fenced blocks **line-preservingly** (every
//!   non-asm line becomes a blank line), so assembler diagnostics point at
//!   the markdown source line, and parses `<!-- audo-asm: key = value -->`
//!   directives (`name`, `tiers`, `max-instrs`) that tell the test
//!   harnesses how to run the program;
//! - [`corpus`] loads a directory of such programs in a deterministic
//!   order.
//!
//! The assembler itself lives in [`audo_tricore::asm`] and is driven by
//! the encoder tables of [`audo_tricore::encode`]/[`audo_tricore::opcodes`]
//! — the single source of truth. Every encodable instruction is
//! assemblable (pinned by this crate's exhaustive test over
//! [`audo_tricore::opcodes::sample_instr`]) and everything else is
//! rejected at parse time with a line number.
//!
//! The `audo-asm` binary assembles both literate `.md` programs and raw
//! `.asm` files and can print listings and hex dumps.

pub mod corpus;
pub mod literate;

pub use corpus::{default_corpus_dir, load_corpus, CorpusEntry};
pub use literate::{parse_literate, LiterateProgram, Tiers};
