//! `audo-asm` — assembler / disassembler for TC-R programs.
//!
//! ```text
//! audo-asm <program.asm|program.md>  # assemble; print section + symbol summary
//! audo-asm <program> --list          # also print a disassembly listing
//! audo-asm <program> --hex           # dump sections as hex words
//! ```
//!
//! `.md` inputs are treated as literate programs (markdown with fenced
//! `asm` blocks, see `audo_asm::literate`); anything else is raw
//! assembly.

use std::process::ExitCode;

use audo_asm::parse_literate;
use audo_tricore::asm::assemble;
use audo_tricore::disasm::disassemble_range;

fn main() -> ExitCode {
    let mut path = String::new();
    let mut list = false;
    let mut hex = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--list" => list = true,
            "--hex" => hex = true,
            "--help" | "-h" => {
                eprintln!("usage: audo-asm <program.asm|program.md> [--list] [--hex]");
                return ExitCode::FAILURE;
            }
            other if path.is_empty() && !other.starts_with('-') => path = other.to_string(),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if path.is_empty() {
        eprintln!("usage: audo-asm <program.asm|program.md> [--list] [--hex]");
        return ExitCode::FAILURE;
    }
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let image = if path.ends_with(".md") {
        let program = match parse_literate(&src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{path}: literate program `{}` (tiers {:?}, max-instrs {})",
            program.name, program.tiers, program.max_instrs
        );
        match program.assemble() {
            Ok(i) => i,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match assemble(&src) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "{path}: {} bytes in {} section(s), entry {}",
        image.size(),
        image.sections().len(),
        image.entry()
    );
    for s in image.sections() {
        println!(
            "  section {} .. {} ({} bytes)",
            s.base,
            s.base.offset(s.bytes.len() as u32),
            s.bytes.len()
        );
    }
    println!("symbols:");
    for (addr, name) in image.symbols_by_addr() {
        println!("  {addr}  {name}");
    }
    if hex {
        for s in image.sections() {
            println!("section {}:", s.base);
            for (i, chunk) in s.bytes.chunks(16).enumerate() {
                let words: Vec<String> = chunk
                    .chunks(4)
                    .map(|w| {
                        let mut v = [0u8; 4];
                        v[..w.len()].copy_from_slice(w);
                        format!("{:08x}", u32::from_le_bytes(v))
                    })
                    .collect();
                println!("  {}  {}", s.base.offset(i as u32 * 16), words.join(" "));
            }
        }
    }
    if list {
        for s in image.sections() {
            println!("listing of section {}:", s.base);
            for line in disassemble_range(&image, s.base, s.bytes.len() as u32) {
                let sym = image
                    .symbols_by_addr()
                    .iter()
                    .find(|(a, _)| *a == line.addr)
                    .map(|(_, n)| format!("{n}:"))
                    .unwrap_or_default();
                println!("  {}  {:<16} {}", line.addr, sym, line.text);
            }
        }
    }
    ExitCode::SUCCESS
}
