//! The literate workload format: markdown with fenced `asm` blocks.
//!
//! # Format
//!
//! ````markdown
//! # Program title
//!
//! <!-- audo-asm: tiers = all -->
//! <!-- audo-asm: max-instrs = 200000 -->
//!
//! Prose. Only fenced blocks whose info string starts with `asm`
//! contribute code; everything else is commentary.
//!
//! ```asm
//! .org 0x80000000
//! _start:
//!     movi d0, 7
//!     halt
//! ```
//! ````
//!
//! Extraction is **line-preserving**: the assembled source has exactly as
//! many lines as the markdown document, with every non-asm line blank, so
//! a [`SimError::Assemble`] line number points straight at the `.md`
//! file.

use audo_common::SimError;
use audo_tricore::asm::assemble;
use audo_tricore::Image;

/// Which execution tiers a corpus program is expected to agree on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tiers {
    /// All four run configurations (ISS slow/fast, pipeline uncached/
    /// cached) must agree on the architectural outcome.
    All,
    /// Only the two ISS paths are compared. Used by programs whose
    /// semantics legitimately differ on the pipeline: self-modifying code
    /// (the fetch buffer may execute a just-patched instruction stale)
    /// and `wait` (the pipeline idles for an interrupt that never comes
    /// on a bare test bus).
    IssOnly,
}

/// A parsed literate program: run directives plus the extracted source.
#[derive(Debug, Clone)]
pub struct LiterateProgram {
    /// Program name (the `name` directive, else the first `#` heading,
    /// else `"unnamed"`).
    pub name: String,
    /// Tier-agreement contract (`tiers` directive, default [`Tiers::All`]).
    pub tiers: Tiers,
    /// Retired-instruction budget for runs (`max-instrs` directive,
    /// default 1,000,000).
    pub max_instrs: u64,
    /// Line-preserving extracted assembly source.
    pub source: String,
}

impl LiterateProgram {
    /// Assembles the extracted source into an image.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Assemble`] with a line number that refers to
    /// the original markdown document.
    pub fn assemble(&self) -> Result<Image, SimError> {
        assemble(&self.source)
    }
}

fn err(line: usize, message: impl Into<String>) -> SimError {
    SimError::Assemble {
        line,
        message: message.into(),
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parses a literate markdown document into a [`LiterateProgram`].
///
/// # Errors
///
/// Returns [`SimError::Assemble`] (with the offending markdown line) for
/// an unknown or malformed `audo-asm` directive, an unclosed fence, or a
/// document with no `asm` blocks at all. Assembly itself happens in
/// [`LiterateProgram::assemble`].
pub fn parse_literate(text: &str) -> Result<LiterateProgram, SimError> {
    let mut name: Option<String> = None;
    let mut heading: Option<String> = None;
    let mut tiers = Tiers::All;
    let mut max_instrs: u64 = 1_000_000;
    let mut source = String::new();
    let mut in_asm = false;
    let mut in_other = false;
    let mut fence_line = 0;
    let mut asm_lines = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim();
        if in_asm || in_other {
            if trimmed == "```" {
                in_asm = false;
                in_other = false;
                source.push('\n');
                continue;
            }
            if in_asm {
                source.push_str(raw);
                asm_lines += 1;
            }
            source.push('\n');
            continue;
        }
        if let Some(info) = trimmed.strip_prefix("```") {
            let info = info.trim();
            if info == "asm" || info.starts_with("asm ") {
                in_asm = true;
            } else {
                in_other = true;
            }
            fence_line = line_no;
            source.push('\n');
            continue;
        }
        if let Some(body) = trimmed
            .strip_prefix("<!--")
            .and_then(|s| s.strip_suffix("-->"))
        {
            let body = body.trim();
            if let Some(directive) = body.strip_prefix("audo-asm:") {
                let (key, value) = directive
                    .split_once('=')
                    .ok_or_else(|| err(line_no, "audo-asm directive needs `key = value`"))?;
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "name" => name = Some(value.to_string()),
                    "tiers" => {
                        tiers = match value {
                            "all" => Tiers::All,
                            "iss" => Tiers::IssOnly,
                            other => {
                                return Err(err(
                                    line_no,
                                    format!("unknown tiers value `{other}` (want all|iss)"),
                                ))
                            }
                        }
                    }
                    "max-instrs" => {
                        max_instrs = parse_u64(value)
                            .ok_or_else(|| err(line_no, format!("bad max-instrs `{value}`")))?;
                    }
                    other => {
                        return Err(err(line_no, format!("unknown audo-asm key `{other}`")));
                    }
                }
            }
            source.push('\n');
            continue;
        }
        if heading.is_none() {
            if let Some(h) = trimmed.strip_prefix("# ") {
                heading = Some(h.trim().to_string());
            }
        }
        source.push('\n');
    }
    if in_asm || in_other {
        return Err(err(fence_line, "unclosed code fence"));
    }
    if asm_lines == 0 {
        return Err(err(1, "document has no ```asm blocks"));
    }
    Ok(LiterateProgram {
        name: name.or(heading).unwrap_or_else(|| "unnamed".to_string()),
        tiers,
        max_instrs,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "# Demo program

<!-- audo-asm: tiers = iss -->
<!-- audo-asm: max-instrs = 0x200 -->

Some prose with `inline code`.

```asm
.org 0x1000
_start:
    movi d0, 7
```

More prose, including a non-asm fence:

```text
not code
```

```asm
    halt
```
";

    #[test]
    fn extracts_asm_blocks_line_preservingly() {
        let p = parse_literate(DOC).unwrap();
        assert_eq!(p.name, "Demo program");
        assert_eq!(p.tiers, Tiers::IssOnly);
        assert_eq!(p.max_instrs, 0x200);
        // Same number of lines as the document.
        assert_eq!(p.source.lines().count(), DOC.lines().count());
        // The `movi` sits on the same line as in the markdown (line 11).
        let lines: Vec<&str> = p.source.lines().collect();
        assert_eq!(lines[10].trim(), "movi d0, 7");
        // The text fence contributed nothing.
        assert!(!p.source.contains("not code"));
        let image = p.assemble().unwrap();
        assert_eq!(image.symbol("_start"), Some(audo_common::Addr(0x1000)));
    }

    #[test]
    fn assembler_errors_point_at_markdown_lines() {
        let doc = "# Bad\n\n```asm\n.org 0x1000\n bogus d1\n```\n";
        let p = parse_literate(doc).unwrap();
        let e = p.assemble().unwrap_err();
        let SimError::Assemble { line, .. } = e else {
            panic!("expected assemble error, got {e}");
        };
        assert_eq!(line, 5, "line number must refer to the .md document");
    }

    #[test]
    fn unknown_directive_is_rejected() {
        let doc = "<!-- audo-asm: frobnicate = 1 -->\n```asm\nnop\n```\n";
        let e = parse_literate(doc).unwrap_err();
        assert!(e.to_string().contains("frobnicate"), "{e}");
    }

    #[test]
    fn bad_tiers_value_is_rejected() {
        let doc = "<!-- audo-asm: tiers = pipeline -->\n```asm\nnop\n```\n";
        assert!(parse_literate(doc).is_err());
    }

    #[test]
    fn unclosed_fence_is_rejected() {
        let doc = "```asm\nnop\n";
        let e = parse_literate(doc).unwrap_err();
        assert!(e.to_string().contains("unclosed"), "{e}");
    }

    #[test]
    fn document_without_asm_is_rejected() {
        let doc = "# Only prose\n\nNothing to run.\n";
        assert!(parse_literate(doc).is_err());
    }

    #[test]
    fn plain_comments_are_ignored() {
        let doc = "<!-- just a note -->\n```asm\n.org 0x1000\nnop\nhalt\n```\n";
        let p = parse_literate(doc).unwrap();
        assert_eq!(p.name, "unnamed");
        assert_eq!(p.tiers, Tiers::All);
        p.assemble().unwrap();
    }
}
