//! Workload-corpus loader: a directory of literate `.md` programs.

use std::path::{Path, PathBuf};

use audo_common::SimError;
use audo_tricore::Image;

use crate::literate::{parse_literate, LiterateProgram};

/// One corpus program: the parsed document plus its assembled image.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File name within the corpus directory (e.g. `01_alu_forms.md`).
    pub file_name: String,
    /// Parsed literate program (directives + extracted source).
    pub program: LiterateProgram,
    /// The assembled image.
    pub image: Image,
}

/// The repository's checked-in corpus directory (`workloads/corpus/`).
#[must_use]
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads/corpus")
}

fn io_err(what: &Path, e: &std::io::Error) -> SimError {
    SimError::InvalidConfig {
        message: format!("corpus: cannot read {}: {e}", what.display()),
    }
}

/// Loads every `.md` program in `dir`, sorted by file name.
///
/// The deterministic order matters: fuzz-session corpus mutation picks
/// entries by index from a seeded stream, so the directory listing must
/// not leak OS iteration order into results.
///
/// # Errors
///
/// Fails with [`SimError::InvalidConfig`] on I/O errors and with
/// [`SimError::Assemble`] (prefixed by the file name in the message) if
/// any program fails to parse or assemble.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, SimError> {
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, &e))? {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".md") {
            names.push(name);
        }
    }
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let path = dir.join(&name);
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
        let annotate = |e: SimError| match e {
            SimError::Assemble { line, message } => SimError::Assemble {
                line,
                message: format!("{name}: {message}"),
            },
            other => other,
        };
        let program = parse_literate(&text).map_err(annotate)?;
        let image = program.assemble().map_err(annotate)?;
        out.push(CorpusEntry {
            file_name: name,
            program,
            image,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_corpus_loads_sorted_and_nonempty() {
        let entries = load_corpus(&default_corpus_dir()).expect("corpus loads");
        assert!(entries.len() >= 10, "corpus too small: {}", entries.len());
        for pair in entries.windows(2) {
            assert!(pair[0].file_name < pair[1].file_name);
        }
        for e in &entries {
            assert!(e.image.size() > 0, "{} is empty", e.file_name);
        }
    }

    #[test]
    fn missing_directory_reports_a_config_error() {
        let e = load_corpus(Path::new("/nonexistent/corpus")).unwrap_err();
        assert!(matches!(e, SimError::InvalidConfig { .. }));
    }
}
