//! Golden tests over the checked-in workload corpus.
//!
//! Three gates:
//!
//! 1. Every corpus program assembles and its image hashes to a pinned
//!    value (`golden/corpus_hashes.txt`). Regenerate after intentional
//!    corpus or encoder changes with:
//!    `ASM_GOLDEN_REGEN=1 cargo test -p audo-asm --test corpus_golden`
//! 2. Every decodable instruction in every corpus image round-trips
//!    through the disassembler *semantically*: its printed form
//!    reassembles (at the same address) to the same [`Instr`]. Byte
//!    equality is deliberately not required — the assembler may have
//!    widened a compressible instruction, and the canonical re-encoding
//!    is allowed to pick the short form.
//! 3. The encoder table is exhaustively assemblable: every assigned
//!    opcode's sample instruction formats to text the assembler accepts
//!    and decodes back to the same instruction.

use std::path::PathBuf;

use audo_asm::{default_corpus_dir, load_corpus};
use audo_common::Addr;
use audo_tricore::asm::assemble;
use audo_tricore::disasm::{disassemble_range, format_instr};
use audo_tricore::encode::decode;
use audo_tricore::opcodes::{opcode_index, sample_instr, ASSIGNED};
use audo_tricore::Image;

fn fnv1a64(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Stable content hash of an image: entry point plus every section's
/// base address and bytes, in section order.
fn image_hash(image: &Image) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    fnv1a64(&mut h, &image.entry().0.to_le_bytes());
    for s in image.sections() {
        fnv1a64(&mut h, &s.base.0.to_le_bytes());
        fnv1a64(&mut h, &(s.bytes.len() as u64).to_le_bytes());
        fnv1a64(&mut h, &s.bytes);
    }
    h
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/corpus_hashes.txt")
}

#[test]
fn corpus_images_match_pinned_hashes() {
    let entries = load_corpus(&default_corpus_dir()).expect("corpus loads");
    assert!(entries.len() >= 10, "corpus too small: {}", entries.len());
    let actual: Vec<String> = entries
        .iter()
        .map(|e| format!("{} {:016x}", e.file_name, image_hash(&e.image)))
        .collect();
    let rendered = format!("{}\n", actual.join("\n"));
    if std::env::var_os("ASM_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), rendered).unwrap();
        return;
    }
    let pinned = std::fs::read_to_string(golden_path())
        .expect("golden/corpus_hashes.txt exists (run with ASM_GOLDEN_REGEN=1 to create)");
    assert_eq!(
        pinned, rendered,
        "corpus image hashes drifted; if intentional, regenerate with \
         ASM_GOLDEN_REGEN=1 cargo test -p audo-asm --test corpus_golden"
    );
}

#[test]
fn corpus_disassembly_round_trips_semantically() {
    let entries = load_corpus(&default_corpus_dir()).expect("corpus loads");
    let mut checked = 0usize;
    for e in &entries {
        for s in e.image.sections() {
            for line in disassemble_range(&e.image, s.base, s.bytes.len() as u32) {
                let Some(orig) = line.instr else { continue };
                let src = format!(".org {:#x}\n{}\n", line.addr.0, line.text);
                let re = assemble(&src).unwrap_or_else(|err| {
                    panic!(
                        "{}: `{}` does not reassemble: {err}",
                        e.file_name, line.text
                    )
                });
                let bytes = re
                    .bytes_at(line.addr, 4)
                    .or_else(|| re.bytes_at(line.addr, 2))
                    .unwrap_or_else(|| panic!("{}: no bytes at {}", e.file_name, line.addr));
                let (back, _) = decode(&bytes, line.addr).unwrap_or_else(|err| {
                    panic!("{}: `{}` does not re-decode: {err}", e.file_name, line.text)
                });
                assert_eq!(
                    orig, back,
                    "{}: `{}` at {} is not a semantic fixpoint",
                    e.file_name, line.text, line.addr
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 300, "suspiciously few instructions: {checked}");
}

#[test]
fn every_assigned_opcode_is_assemblable_from_its_canonical_text() {
    let pc = Addr(0x8000_0000);
    let mut sampled = 0usize;
    for &(idx, name) in ASSIGNED {
        let Some(sample) = sample_instr(idx) else {
            // The 32-bit `ret` slot decodes but is never canonically
            // emitted; everything else must have a sample.
            assert_eq!(idx, 68, "slot {idx} ({name}) has no sample");
            continue;
        };
        let text = format_instr(&sample, pc);
        let src = format!(".org {:#x}\n{}\n", pc.0, text);
        let image = assemble(&src)
            .unwrap_or_else(|err| panic!("slot {idx} ({name}): `{text}` rejected: {err}"));
        let bytes = image
            .bytes_at(pc, 4)
            .or_else(|| image.bytes_at(pc, 2))
            .expect("sample bytes");
        let (back, _) = decode(&bytes, pc).expect("sample re-decodes");
        assert_eq!(sample, back, "slot {idx} ({name}): `{text}` drifted");
        assert_eq!(
            opcode_index(&back),
            idx,
            "slot {idx} ({name}): reassembled into a different slot"
        );
        sampled += 1;
    }
    assert_eq!(ASSIGNED.len(), 87);
    assert_eq!(sampled, 86);
}

#[test]
fn unencodable_text_is_rejected_at_parse_time() {
    // The assembler's mnemonic table and the encoder table are the same
    // source of truth: text with no encoding must fail to parse, not
    // assemble to something else.
    for bad in [
        "madd d0, d1, d2",  // no such mnemonic
        "movi d0, 0x12345", // immediate does not fit the encoding
        "addi d0, d1, 5000",
        "extr d0, d1, 32, 1", // pos out of encodable range
        "shi d0, d1, 40",
    ] {
        let src = format!(".org 0x1000\n{bad}\n");
        assert!(
            matches!(assemble(&src), Err(audo_common::SimError::Assemble { .. })),
            "`{bad}` should be rejected"
        );
    }
}
