//! End-to-end tests of the `audo-asm` command-line tool.

use std::io::Write as _;
use std::process::Command;

#[test]
fn audo_asm_lists_and_dumps() {
    let dir = std::env::temp_dir().join("audo_asm_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.asm");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, ".org 0x1000\nstart: movi d0, 7\n add d1, d0, d0\n halt").unwrap();
    drop(f);
    let out = Command::new(env!("CARGO_BIN_EXE_audo-asm"))
        .args([path.to_str().unwrap(), "--list", "--hex"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("start"), "{stdout}");
    assert!(stdout.contains("movi d0, 7"), "{stdout}");
    assert!(stdout.contains("section 0x00001000"), "{stdout}");
}

#[test]
fn audo_asm_reports_assembly_errors() {
    let dir = std::env::temp_dir().join("audo_asm_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.asm");
    std::fs::write(&path, ".org 0\n bogus d1\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_audo-asm"))
        .arg(path.to_str().unwrap())
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mnemonic"));
}

#[test]
fn audo_asm_assembles_literate_markdown() {
    let dir = std::env::temp_dir().join("audo_asm_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.md");
    std::fs::write(
        &path,
        "# Literate demo\n\nProse.\n\n```asm\n.org 0x1000\nstart: movi d0, 7\n halt\n```\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_audo-asm"))
        .args([path.to_str().unwrap(), "--list"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("literate program `Literate demo`"),
        "{stdout}"
    );
    assert!(stdout.contains("movi d0, 7"), "{stdout}");
}

#[test]
fn audo_asm_reports_literate_errors_with_md_line_numbers() {
    let dir = std::env::temp_dir().join("audo_asm_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.md");
    // The bogus mnemonic sits on markdown line 6.
    std::fs::write(&path, "# Bad\n\nProse.\n\n```asm\n bogus d1\n```\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_audo-asm"))
        .arg(path.to_str().unwrap())
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 6"), "{stderr}");
}
