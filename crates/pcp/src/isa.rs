//! The PCP-R instruction set: a compact channel-programmed I/O processor ISA.
//!
//! The real PCP (Peripheral Control Processor) on AUDO-class devices runs
//! small channel programs out of its own code memory, triggered by service
//! requests, with per-channel register contexts held in parameter RAM
//! (PRAM). PCP-R keeps that structure with a simplified 32-bit fixed-width
//! encoding:
//!
//! ```text
//! 31    26 25  23 22  20 19    16 15             0
//! [  op6  ][ r1  ][ r2  ][ unused ][     imm16    ]
//! ```

use audo_common::{Addr, SimError};

/// A PCP channel register `r0..r7` (per-channel context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PReg(pub u8);

impl std::fmt::Display for PReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A decoded PCP-R instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PcpInstr {
    /// `r1 = zero_extend(imm16)`.
    Ldi { r1: PReg, imm: u16 },
    /// `r1 = (imm16 << 16) | (r1 & 0xFFFF)` — set the high half.
    Ldih { r1: PReg, imm: u16 },
    /// `r1 = r1 + r2`.
    Add { r1: PReg, r2: PReg },
    /// `r1 = r1 + sign_extend(imm16)`.
    Addi { r1: PReg, imm: i16 },
    /// `r1 = r1 - r2`.
    Sub { r1: PReg, r2: PReg },
    /// `r1 = r1 & r2`.
    And { r1: PReg, r2: PReg },
    /// `r1 = r1 | r2`.
    Or { r1: PReg, r2: PReg },
    /// `r1 = r1 ^ r2`.
    Xor { r1: PReg, r2: PReg },
    /// `r1 = r1 << imm` (imm 0..=31).
    Shl { r1: PReg, imm: u8 },
    /// `r1 = r1 >> imm` logical.
    Shr { r1: PReg, imm: u8 },
    /// `r1 = r1 * r2` (low 32 bits).
    Mul { r1: PReg, r2: PReg },
    /// `r1 = min(r1, r2)` signed.
    Min { r1: PReg, r2: PReg },
    /// `r1 = max(r1, r2)` signed.
    Max { r1: PReg, r2: PReg },
    /// FPI word load: `r1 = mem[r2 + sign_extend(imm16)]` (via the crossbar).
    Ld { r1: PReg, r2: PReg, off: i16 },
    /// FPI word store: `mem[r2 + sign_extend(imm16)] = r1`.
    St { r1: PReg, r2: PReg, off: i16 },
    /// PRAM word load: `r1 = pram[imm16]` (local, single-cycle).
    Ldp { r1: PReg, idx: u16 },
    /// PRAM word store: `pram[imm16] = r1`.
    Stp { r1: PReg, idx: u16 },
    /// Absolute jump to CMEM word index `imm16`.
    Jmp { target: u16 },
    /// Jump if `r1 != 0`.
    Jnz { r1: PReg, target: u16 },
    /// Jump if `r1 == 0`.
    Jz { r1: PReg, target: u16 },
    /// Raise service request node `imm16 & 0xFF` (e.g. to notify TriCore).
    Srq { srn: u8 },
    /// Channel program done; context is saved and the channel sleeps.
    Exit,
    /// No operation.
    Nop,
}

const OP_LDI: u32 = 0;
const OP_LDIH: u32 = 1;
const OP_ADD: u32 = 2;
const OP_ADDI: u32 = 3;
const OP_SUB: u32 = 4;
const OP_AND: u32 = 5;
const OP_OR: u32 = 6;
const OP_XOR: u32 = 7;
const OP_SHL: u32 = 8;
const OP_SHR: u32 = 9;
const OP_MUL: u32 = 10;
const OP_MIN: u32 = 11;
const OP_MAX: u32 = 12;
const OP_LD: u32 = 13;
const OP_ST: u32 = 14;
const OP_LDP: u32 = 15;
const OP_STP: u32 = 16;
const OP_JMP: u32 = 17;
const OP_JNZ: u32 = 18;
const OP_JZ: u32 = 19;
const OP_SRQ: u32 = 20;
const OP_EXIT: u32 = 21;
const OP_NOP: u32 = 22;

fn pack(op: u32, r1: u8, r2: u8, imm: u16) -> u32 {
    (op << 26) | (u32::from(r1) << 23) | (u32::from(r2) << 20) | u32::from(imm)
}

impl PcpInstr {
    /// Encodes the instruction into its 32-bit word.
    #[must_use]
    pub fn encode(&self) -> u32 {
        use PcpInstr::*;
        match *self {
            Ldi { r1, imm } => pack(OP_LDI, r1.0, 0, imm),
            Ldih { r1, imm } => pack(OP_LDIH, r1.0, 0, imm),
            Add { r1, r2 } => pack(OP_ADD, r1.0, r2.0, 0),
            Addi { r1, imm } => pack(OP_ADDI, r1.0, 0, imm as u16),
            Sub { r1, r2 } => pack(OP_SUB, r1.0, r2.0, 0),
            And { r1, r2 } => pack(OP_AND, r1.0, r2.0, 0),
            Or { r1, r2 } => pack(OP_OR, r1.0, r2.0, 0),
            Xor { r1, r2 } => pack(OP_XOR, r1.0, r2.0, 0),
            Shl { r1, imm } => pack(OP_SHL, r1.0, 0, u16::from(imm)),
            Shr { r1, imm } => pack(OP_SHR, r1.0, 0, u16::from(imm)),
            Mul { r1, r2 } => pack(OP_MUL, r1.0, r2.0, 0),
            Min { r1, r2 } => pack(OP_MIN, r1.0, r2.0, 0),
            Max { r1, r2 } => pack(OP_MAX, r1.0, r2.0, 0),
            Ld { r1, r2, off } => pack(OP_LD, r1.0, r2.0, off as u16),
            St { r1, r2, off } => pack(OP_ST, r1.0, r2.0, off as u16),
            Ldp { r1, idx } => pack(OP_LDP, r1.0, 0, idx),
            Stp { r1, idx } => pack(OP_STP, r1.0, 0, idx),
            Jmp { target } => pack(OP_JMP, 0, 0, target),
            Jnz { r1, target } => pack(OP_JNZ, r1.0, 0, target),
            Jz { r1, target } => pack(OP_JZ, r1.0, 0, target),
            Srq { srn } => pack(OP_SRQ, 0, 0, u16::from(srn)),
            Exit => pack(OP_EXIT, 0, 0, 0),
            Nop => pack(OP_NOP, 0, 0, 0),
        }
    }

    /// Decodes a 32-bit CMEM word.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DecodeInstr`] for unknown opcodes; `addr` is the
    /// reporting address (CMEM word index).
    pub fn decode(word: u32, addr: Addr) -> Result<PcpInstr, SimError> {
        use PcpInstr::*;
        let op = word >> 26;
        let r1 = PReg(((word >> 23) & 7) as u8);
        let r2 = PReg(((word >> 20) & 7) as u8);
        let imm = (word & 0xFFFF) as u16;
        Ok(match op {
            OP_LDI => Ldi { r1, imm },
            OP_LDIH => Ldih { r1, imm },
            OP_ADD => Add { r1, r2 },
            OP_ADDI => Addi {
                r1,
                imm: imm as i16,
            },
            OP_SUB => Sub { r1, r2 },
            OP_AND => And { r1, r2 },
            OP_OR => Or { r1, r2 },
            OP_XOR => Xor { r1, r2 },
            OP_SHL => Shl {
                r1,
                imm: (imm & 31) as u8,
            },
            OP_SHR => Shr {
                r1,
                imm: (imm & 31) as u8,
            },
            OP_MUL => Mul { r1, r2 },
            OP_MIN => Min { r1, r2 },
            OP_MAX => Max { r1, r2 },
            OP_LD => Ld {
                r1,
                r2,
                off: imm as i16,
            },
            OP_ST => St {
                r1,
                r2,
                off: imm as i16,
            },
            OP_LDP => Ldp { r1, idx: imm },
            OP_STP => Stp { r1, idx: imm },
            OP_JMP => Jmp { target: imm },
            OP_JNZ => Jnz { r1, target: imm },
            OP_JZ => Jz { r1, target: imm },
            OP_SRQ => Srq {
                srn: (imm & 0xFF) as u8,
            },
            OP_EXIT => Exit,
            OP_NOP => Nop,
            _ => return Err(SimError::DecodeInstr { addr, word }),
        })
    }
}

/// Builder for PCP channel programs with symbolic jump labels.
///
/// # Examples
///
/// ```
/// use audo_pcp::isa::{PcpInstr, PReg, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// b.push(PcpInstr::Ldi { r1: PReg(0), imm: 5 });
/// let head = b.label();
/// b.push(PcpInstr::Addi { r1: PReg(0), imm: -1 });
/// b.jnz(PReg(0), head);
/// b.push(PcpInstr::Exit);
/// let words = b.finish(0);
/// assert_eq!(words.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<PcpInstr>,
    fixups: Vec<(usize, usize)>, // (instr index, label id)
    labels: Vec<Option<usize>>,
}

/// A forward- or backward-referenced label id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: PcpInstr) {
        self.instrs.push(i);
    }

    /// Binds a label at the current position.
    pub fn label(&mut self) -> Label {
        self.labels.push(Some(self.instrs.len()));
        Label(self.labels.len() - 1)
    }

    /// Declares a label to be bound later with [`ProgramBuilder::bind`].
    pub fn forward_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a previously declared forward label here.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.instrs.len());
    }

    /// Appends `JMP label`.
    pub fn jmp(&mut self, l: Label) {
        self.fixups.push((self.instrs.len(), l.0));
        self.instrs.push(PcpInstr::Jmp { target: 0 });
    }

    /// Appends `JNZ r1, label`.
    pub fn jnz(&mut self, r1: PReg, l: Label) {
        self.fixups.push((self.instrs.len(), l.0));
        self.instrs.push(PcpInstr::Jnz { r1, target: 0 });
    }

    /// Appends `JZ r1, label`.
    pub fn jz(&mut self, r1: PReg, l: Label) {
        self.fixups.push((self.instrs.len(), l.0));
        self.instrs.push(PcpInstr::Jz { r1, target: 0 });
    }

    /// Resolves labels (relative to `base_word`, the CMEM load offset) and
    /// returns the encoded words.
    ///
    /// # Panics
    ///
    /// Panics if a forward label was never bound.
    #[must_use]
    pub fn finish(mut self, base_word: u16) -> Vec<u32> {
        for (idx, label) in self.fixups.clone() {
            let pos = self.labels[label].expect("unbound label") as u16 + base_word;
            self.instrs[idx] = match self.instrs[idx] {
                PcpInstr::Jmp { .. } => PcpInstr::Jmp { target: pos },
                PcpInstr::Jnz { r1, .. } => PcpInstr::Jnz { r1, target: pos },
                PcpInstr::Jz { r1, .. } => PcpInstr::Jz { r1, target: pos },
                other => other,
            };
        }
        self.instrs.iter().map(PcpInstr::encode).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_ops() {
        let cases = [
            PcpInstr::Ldi {
                r1: PReg(7),
                imm: 0xFFFF,
            },
            PcpInstr::Ldih {
                r1: PReg(1),
                imm: 0xD000,
            },
            PcpInstr::Add {
                r1: PReg(1),
                r2: PReg(2),
            },
            PcpInstr::Addi {
                r1: PReg(1),
                imm: -3,
            },
            PcpInstr::Sub {
                r1: PReg(3),
                r2: PReg(4),
            },
            PcpInstr::And {
                r1: PReg(5),
                r2: PReg(6),
            },
            PcpInstr::Or {
                r1: PReg(0),
                r2: PReg(7),
            },
            PcpInstr::Xor {
                r1: PReg(2),
                r2: PReg(2),
            },
            PcpInstr::Shl {
                r1: PReg(1),
                imm: 31,
            },
            PcpInstr::Shr {
                r1: PReg(1),
                imm: 1,
            },
            PcpInstr::Mul {
                r1: PReg(2),
                r2: PReg(3),
            },
            PcpInstr::Min {
                r1: PReg(2),
                r2: PReg(3),
            },
            PcpInstr::Max {
                r1: PReg(2),
                r2: PReg(3),
            },
            PcpInstr::Ld {
                r1: PReg(1),
                r2: PReg(2),
                off: -4,
            },
            PcpInstr::St {
                r1: PReg(1),
                r2: PReg(2),
                off: 8,
            },
            PcpInstr::Ldp {
                r1: PReg(1),
                idx: 100,
            },
            PcpInstr::Stp {
                r1: PReg(1),
                idx: 200,
            },
            PcpInstr::Jmp { target: 42 },
            PcpInstr::Jnz {
                r1: PReg(3),
                target: 7,
            },
            PcpInstr::Jz {
                r1: PReg(3),
                target: 9,
            },
            PcpInstr::Srq { srn: 12 },
            PcpInstr::Exit,
            PcpInstr::Nop,
        ];
        for c in cases {
            let w = c.encode();
            assert_eq!(PcpInstr::decode(w, Addr(0)).unwrap(), c, "{c:?}");
        }
    }

    #[test]
    fn unknown_opcode_errors() {
        let w = 63u32 << 26;
        assert!(PcpInstr::decode(w, Addr(4)).is_err());
    }

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let done = b.forward_label();
        let head = b.label(); // index 0
        b.push(PcpInstr::Addi {
            r1: PReg(0),
            imm: -1,
        });
        b.jz(PReg(0), done);
        b.jmp(head);
        b.bind(done);
        b.push(PcpInstr::Exit);
        let words = b.finish(10);
        let decoded: Vec<_> = words
            .iter()
            .map(|&w| PcpInstr::decode(w, Addr(0)).unwrap())
            .collect();
        assert_eq!(
            decoded[1],
            PcpInstr::Jz {
                r1: PReg(0),
                target: 13
            }
        );
        assert_eq!(decoded[2], PcpInstr::Jmp { target: 10 });
    }
}
