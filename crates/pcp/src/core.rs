//! The PCP-R execution engine: 8 event-triggered channels sharing one
//! single-issue datapath.
//!
//! Service requests routed to the PCP set a channel *pending*; the engine
//! picks the lowest-numbered pending channel, restores its register context
//! from PRAM (costing [`PcpConfig::ctx_switch_cycles`]), runs its program at
//! one instruction per cycle (stalling on FPI/crossbar accesses), and on
//! `EXIT` saves the context back and services the next pending channel.
//! This is the "software partitioning between TriCore and PCP" substrate
//! the paper's introduction refers to.

use audo_common::{Addr, Cycle, EventSink, PerfEvent, SimError, SourceId};

use crate::isa::{PReg, PcpInstr};

/// Number of channels.
pub const CHANNELS: usize = 8;
/// Registers per channel context.
pub const CTX_REGS: usize = 8;

/// A timed word-access port to the system crossbar, as seen by the PCP.
pub trait PcpBus {
    /// Reads a 32-bit word; returns the value and its arrival cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped or misaligned addresses.
    fn read(&mut self, now: Cycle, addr: Addr) -> Result<(u32, Cycle), SimError>;

    /// Writes a 32-bit word; returns the acceptance cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for unmapped or misaligned addresses.
    fn write(&mut self, now: Cycle, addr: Addr, value: u32) -> Result<Cycle, SimError>;
}

/// Timing configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcpConfig {
    /// Cycles to save or restore one channel context.
    pub ctx_switch_cycles: u64,
    /// CMEM size in words.
    pub cmem_words: usize,
    /// PRAM size in words.
    pub pram_words: usize,
}

impl Default for PcpConfig {
    fn default() -> PcpConfig {
        PcpConfig {
            ctx_switch_cycles: 2,
            cmem_words: 4096,
            pram_words: 2048,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    entry: u16,
    pending: bool,
    enabled: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    /// Restoring a context; running starts at `until`.
    Switching {
        ch: u8,
        until: Cycle,
    },
    Running {
        ch: u8,
        pc: u16,
    },
    /// Stalled on an FPI access; resume at `until`.
    Waiting {
        ch: u8,
        pc: u16,
        until: Cycle,
    },
    /// Saving a context after EXIT.
    Saving {
        until: Cycle,
    },
}

/// What one PCP step produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcpStep {
    /// The PCP raised this service request (via `SRQ`).
    pub raised_srn: Option<u8>,
    /// An instruction retired this cycle.
    pub retired: bool,
}

/// The PCP-R engine.
#[derive(Debug, Clone)]
pub struct Pcp {
    cfg: PcpConfig,
    cmem: Vec<u32>,
    pram: Vec<u32>,
    regs: [[u32; CTX_REGS]; CHANNELS],
    channels: [Channel; CHANNELS],
    state: State,
    retired_total: u64,
    source: SourceId,
}

impl Pcp {
    /// Creates an idle PCP with zeroed memories.
    #[must_use]
    pub fn new(cfg: PcpConfig) -> Pcp {
        let cmem = vec![PcpInstr::Nop.encode(); cfg.cmem_words];
        let pram = vec![0; cfg.pram_words];
        Pcp {
            cfg,
            cmem,
            pram,
            regs: [[0; CTX_REGS]; CHANNELS],
            channels: [Channel::default(); CHANNELS],
            state: State::Idle,
            retired_total: 0,
            source: SourceId::PCP,
        }
    }

    /// Loads encoded program words at a CMEM word offset.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit.
    pub fn load_program(&mut self, base_word: u16, words: &[u32]) {
        let base = base_word as usize;
        assert!(
            base + words.len() <= self.cmem.len(),
            "program exceeds CMEM"
        );
        self.cmem[base..base + words.len()].copy_from_slice(words);
    }

    /// Configures a channel's entry point and enables it.
    pub fn setup_channel(&mut self, ch: u8, entry_word: u16) {
        let c = &mut self.channels[ch as usize];
        c.entry = entry_word;
        c.enabled = true;
    }

    /// Marks a channel pending (service request arrival).
    pub fn trigger(&mut self, ch: u8) {
        if self.channels[ch as usize].enabled {
            self.channels[ch as usize].pending = true;
        }
    }

    /// `true` while any channel is pending or executing.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.state != State::Idle || self.channels.iter().any(|c| c.pending)
    }

    /// Total instructions retired since reset.
    #[must_use]
    pub fn retired_total(&self) -> u64 {
        self.retired_total
    }

    /// Reads a channel register (test/inspection aid).
    #[must_use]
    pub fn reg(&self, ch: u8, r: PReg) -> u32 {
        self.regs[ch as usize][r.0 as usize]
    }

    /// Writes a channel register (test setup aid).
    pub fn set_reg(&mut self, ch: u8, r: PReg, value: u32) {
        self.regs[ch as usize][r.0 as usize] = value;
    }

    /// Reads a PRAM word.
    #[must_use]
    pub fn pram(&self, idx: u16) -> u32 {
        self.pram[idx as usize]
    }

    /// Writes a PRAM word.
    pub fn set_pram(&mut self, idx: u16, value: u32) {
        self.pram[idx as usize] = value;
    }

    fn next_pending(&self) -> Option<u8> {
        (0..CHANNELS as u8).find(|&c| self.channels[c as usize].pending)
    }

    /// Advances the PCP by one cycle.
    ///
    /// # Errors
    ///
    /// Returns decode errors and FPI access faults.
    pub fn step<B: PcpBus>(
        &mut self,
        now: Cycle,
        bus: &mut B,
        sink: &mut EventSink,
    ) -> Result<PcpStep, SimError> {
        let mut out = PcpStep::default();
        match self.state {
            State::Idle => {
                if let Some(ch) = self.next_pending() {
                    self.channels[ch as usize].pending = false;
                    self.state = State::Switching {
                        ch,
                        until: now + self.cfg.ctx_switch_cycles,
                    };
                    sink.emit(now, self.source, PerfEvent::PcpChannelStart { channel: ch });
                }
            }
            State::Switching { ch, until } => {
                if now >= until {
                    let pc = self.channels[ch as usize].entry;
                    self.state = State::Running { ch, pc };
                    // Falls through to execute next cycle (restore finished).
                }
            }
            State::Waiting { ch, pc, until } => {
                if now >= until {
                    self.state = State::Running { ch, pc };
                }
            }
            State::Saving { until } => {
                if now >= until {
                    self.state = State::Idle;
                }
            }
            State::Running { ch, pc } => {
                out = self.exec_one(now, ch, pc, bus, sink)?;
            }
        }
        Ok(out)
    }

    fn exec_one<B: PcpBus>(
        &mut self,
        now: Cycle,
        ch: u8,
        pc: u16,
        bus: &mut B,
        sink: &mut EventSink,
    ) -> Result<PcpStep, SimError> {
        use PcpInstr::*;
        let mut out = PcpStep::default();
        let word = *self
            .cmem
            .get(pc as usize)
            .ok_or(SimError::UnmappedAddress {
                addr: Addr(u32::from(pc) * 4),
            })?;
        let instr = PcpInstr::decode(word, Addr(u32::from(pc) * 4))?;
        let chi = ch as usize;
        let mut next_pc = pc.wrapping_add(1);
        let mut next_state: Option<State> = None;

        macro_rules! r {
            ($r:expr) => {
                self.regs[chi][$r.0 as usize]
            };
        }

        match instr {
            Ldi { r1, imm } => r!(r1) = u32::from(imm),
            Ldih { r1, imm } => r!(r1) = (u32::from(imm) << 16) | (r!(r1) & 0xFFFF),
            Add { r1, r2 } => r!(r1) = r!(r1).wrapping_add(r!(r2)),
            Addi { r1, imm } => r!(r1) = r!(r1).wrapping_add(imm as i32 as u32),
            Sub { r1, r2 } => r!(r1) = r!(r1).wrapping_sub(r!(r2)),
            And { r1, r2 } => r!(r1) &= r!(r2),
            Or { r1, r2 } => r!(r1) |= r!(r2),
            Xor { r1, r2 } => r!(r1) ^= r!(r2),
            Shl { r1, imm } => r!(r1) <<= imm,
            Shr { r1, imm } => r!(r1) >>= imm,
            Mul { r1, r2 } => r!(r1) = r!(r1).wrapping_mul(r!(r2)),
            Min { r1, r2 } => r!(r1) = (r!(r1) as i32).min(r!(r2) as i32) as u32,
            Max { r1, r2 } => r!(r1) = (r!(r1) as i32).max(r!(r2) as i32) as u32,
            Ld { r1, r2, off } => {
                let addr = Addr(r!(r2).wrapping_add(off as i32 as u32));
                let (value, ready) = bus.read(now, addr)?;
                r!(r1) = value;
                if ready > now {
                    next_state = Some(State::Waiting {
                        ch,
                        pc: next_pc,
                        until: ready,
                    });
                }
            }
            St { r1, r2, off } => {
                let addr = Addr(r!(r2).wrapping_add(off as i32 as u32));
                let accepted = bus.write(now, addr, r!(r1))?;
                if accepted > now {
                    next_state = Some(State::Waiting {
                        ch,
                        pc: next_pc,
                        until: accepted,
                    });
                }
            }
            Ldp { r1, idx } => {
                r!(r1) = *self
                    .pram
                    .get(idx as usize)
                    .ok_or(SimError::UnmappedAddress {
                        addr: Addr(u32::from(idx) * 4),
                    })?;
            }
            Stp { r1, idx } => {
                let v = r!(r1);
                *self
                    .pram
                    .get_mut(idx as usize)
                    .ok_or(SimError::UnmappedAddress {
                        addr: Addr(u32::from(idx) * 4),
                    })? = v;
            }
            Jmp { target } => next_pc = target,
            Jnz { r1, target } => {
                if r!(r1) != 0 {
                    next_pc = target;
                }
            }
            Jz { r1, target } => {
                if r!(r1) == 0 {
                    next_pc = target;
                }
            }
            Srq { srn } => out.raised_srn = Some(srn),
            Exit => {
                sink.emit(now, self.source, PerfEvent::PcpChannelExit { channel: ch });
                next_state = Some(State::Saving {
                    until: now + self.cfg.ctx_switch_cycles,
                });
            }
            Nop => {}
        }

        self.retired_total += 1;
        out.retired = true;
        sink.emit(now, self.source, PerfEvent::InstrRetired { count: 1 });
        self.state = next_state.unwrap_or(State::Running { ch, pc: next_pc });
        Ok(out)
    }
}

/// A zero-latency [`PcpBus`] over a plain array, for unit tests.
#[derive(Debug, Default)]
pub struct TestPcpBus {
    /// Word storage keyed by address.
    pub words: std::collections::HashMap<u32, u32>,
}

impl PcpBus for TestPcpBus {
    fn read(&mut self, now: Cycle, addr: Addr) -> Result<(u32, Cycle), SimError> {
        Ok((*self.words.get(&addr.0).unwrap_or(&0), now))
    }

    fn write(&mut self, now: Cycle, addr: Addr, value: u32) -> Result<Cycle, SimError> {
        self.words.insert(addr.0, value);
        Ok(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ProgramBuilder;

    fn run_until_idle(pcp: &mut Pcp, bus: &mut TestPcpBus, max: u64) -> (u64, Vec<u8>) {
        let mut sink = EventSink::new();
        let mut srns = Vec::new();
        for cyc in 0..max {
            let s = pcp.step(Cycle(cyc), bus, &mut sink).expect("no fault");
            if let Some(srn) = s.raised_srn {
                srns.push(srn);
            }
            if !pcp.is_busy() {
                return (cyc, srns);
            }
        }
        panic!("PCP did not go idle in {max} cycles");
    }

    #[test]
    fn channel_runs_countdown_program() {
        let mut b = ProgramBuilder::new();
        b.push(PcpInstr::Ldi {
            r1: PReg(0),
            imm: 10,
        });
        b.push(PcpInstr::Ldi {
            r1: PReg(1),
            imm: 0,
        });
        let head = b.label();
        b.push(PcpInstr::Addi {
            r1: PReg(1),
            imm: 3,
        });
        b.push(PcpInstr::Addi {
            r1: PReg(0),
            imm: -1,
        });
        b.jnz(PReg(0), head);
        b.push(PcpInstr::Exit);
        let words = b.finish(0);

        let mut pcp = Pcp::new(PcpConfig::default());
        pcp.load_program(0, &words);
        pcp.setup_channel(2, 0);
        pcp.trigger(2);
        let mut bus = TestPcpBus::default();
        run_until_idle(&mut pcp, &mut bus, 1000);
        assert_eq!(pcp.reg(2, PReg(1)), 30);
        assert_eq!(pcp.reg(2, PReg(0)), 0);
    }

    #[test]
    fn fpi_load_store_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.push(PcpInstr::Ldi {
            r1: PReg(2),
            imm: 0x0100,
        });
        b.push(PcpInstr::Ldih {
            r1: PReg(2),
            imm: 0xF000,
        });
        b.push(PcpInstr::Ld {
            r1: PReg(0),
            r2: PReg(2),
            off: 0,
        });
        b.push(PcpInstr::Addi {
            r1: PReg(0),
            imm: 1,
        });
        b.push(PcpInstr::St {
            r1: PReg(0),
            r2: PReg(2),
            off: 4,
        });
        b.push(PcpInstr::Exit);
        let words = b.finish(0);

        let mut pcp = Pcp::new(PcpConfig::default());
        pcp.load_program(0, &words);
        pcp.setup_channel(0, 0);
        pcp.trigger(0);
        let mut bus = TestPcpBus::default();
        bus.words.insert(0xF000_0100, 41);
        run_until_idle(&mut pcp, &mut bus, 1000);
        assert_eq!(bus.words[&0xF000_0104], 42);
    }

    #[test]
    fn pram_persists_across_activations() {
        // Channel increments a PRAM counter each activation.
        let mut b = ProgramBuilder::new();
        b.push(PcpInstr::Ldp {
            r1: PReg(0),
            idx: 5,
        });
        b.push(PcpInstr::Addi {
            r1: PReg(0),
            imm: 1,
        });
        b.push(PcpInstr::Stp {
            r1: PReg(0),
            idx: 5,
        });
        b.push(PcpInstr::Exit);
        let words = b.finish(0);

        let mut pcp = Pcp::new(PcpConfig::default());
        pcp.load_program(0, &words);
        pcp.setup_channel(1, 0);
        let mut bus = TestPcpBus::default();
        for _ in 0..3 {
            pcp.trigger(1);
            run_until_idle(&mut pcp, &mut bus, 1000);
        }
        assert_eq!(pcp.pram(5), 3);
    }

    #[test]
    fn lower_channel_number_wins_arbitration() {
        let mut b = ProgramBuilder::new();
        b.push(PcpInstr::Srq { srn: 7 });
        b.push(PcpInstr::Exit);
        let p0 = b.finish(0);
        let mut b = ProgramBuilder::new();
        b.push(PcpInstr::Srq { srn: 9 });
        b.push(PcpInstr::Exit);
        let p1 = b.finish(10);

        let mut pcp = Pcp::new(PcpConfig::default());
        pcp.load_program(0, &p0);
        pcp.load_program(10, &p1);
        pcp.setup_channel(3, 0);
        pcp.setup_channel(5, 10);
        pcp.trigger(5);
        pcp.trigger(3);
        let mut bus = TestPcpBus::default();
        let (_, srns) = run_until_idle(&mut pcp, &mut bus, 1000);
        assert_eq!(srns, vec![7, 9], "channel 3 must run before channel 5");
    }

    #[test]
    fn disabled_channel_ignores_triggers() {
        let mut pcp = Pcp::new(PcpConfig::default());
        pcp.trigger(4);
        assert!(!pcp.is_busy());
    }

    #[test]
    fn slow_bus_stalls_the_channel() {
        struct SlowBus(TestPcpBus);
        impl PcpBus for SlowBus {
            fn read(&mut self, now: Cycle, addr: Addr) -> Result<(u32, Cycle), SimError> {
                let (v, _) = self.0.read(now, addr)?;
                Ok((v, now + 20))
            }
            fn write(&mut self, now: Cycle, addr: Addr, v: u32) -> Result<Cycle, SimError> {
                self.0.write(now, addr, v)
            }
        }
        let mut b = ProgramBuilder::new();
        b.push(PcpInstr::Ld {
            r1: PReg(0),
            r2: PReg(1),
            off: 0,
        });
        b.push(PcpInstr::Exit);
        let words = b.finish(0);
        let mut pcp = Pcp::new(PcpConfig::default());
        pcp.load_program(0, &words);
        pcp.setup_channel(0, 0);
        pcp.trigger(0);
        let mut bus = SlowBus(TestPcpBus::default());
        let mut sink = EventSink::new();
        let mut cyc = 0;
        while pcp.is_busy() {
            pcp.step(Cycle(cyc), &mut bus, &mut sink).unwrap();
            cyc += 1;
            assert!(cyc < 1000);
        }
        assert!(cyc > 20, "bus stall not modeled: {cyc} cycles");
    }

    #[test]
    fn retire_events_attributed_to_pcp_source() {
        let mut b = ProgramBuilder::new();
        b.push(PcpInstr::Nop);
        b.push(PcpInstr::Exit);
        let words = b.finish(0);
        let mut pcp = Pcp::new(PcpConfig::default());
        pcp.load_program(0, &words);
        pcp.setup_channel(0, 0);
        pcp.trigger(0);
        let mut bus = TestPcpBus::default();
        let mut sink = EventSink::new();
        let mut cyc = 0;
        while pcp.is_busy() {
            pcp.step(Cycle(cyc), &mut bus, &mut sink).unwrap();
            cyc += 1;
        }
        let recs = sink.records();
        assert!(recs.iter().all(|r| r.source == SourceId::PCP));
        assert!(recs
            .iter()
            .any(|r| matches!(r.event, PerfEvent::PcpChannelStart { channel: 0 })));
        assert!(recs
            .iter()
            .any(|r| matches!(r.event, PerfEvent::PcpChannelExit { channel: 0 })));
        assert_eq!(pcp.retired_total(), 2);
    }
}
