//! Simulator of **PCP-R**, a PCP-class channel-programmed peripheral control
//! co-processor.
//!
//! On AUDO-class automotive SoCs, the Peripheral Control Processor offloads
//! interrupt-driven I/O chores (CAN message handling, ADC post-processing)
//! from the TriCore CPU. The paper's introduction names "software
//! partitioning between TriCore and PCP" as a key degree of freedom that
//! makes customer applications diverse; experiment E8 of this reproduction
//! quantifies exactly that partitioning trade-off.
//!
//! See [`isa`] for the instruction set and program builder, and [`core`]
//! for the 8-channel execution engine.
//!
//! # Example
//!
//! ```
//! use audo_common::{Cycle, EventSink};
//! use audo_pcp::core::{Pcp, PcpConfig, TestPcpBus};
//! use audo_pcp::isa::{PcpInstr, PReg, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! b.push(PcpInstr::Ldi { r1: PReg(0), imm: 21 });
//! b.push(PcpInstr::Add { r1: PReg(0), r2: PReg(0) });
//! b.push(PcpInstr::Exit);
//!
//! let mut pcp = Pcp::new(PcpConfig::default());
//! pcp.load_program(0, &b.finish(0));
//! pcp.setup_channel(0, 0);
//! pcp.trigger(0);
//!
//! let mut bus = TestPcpBus::default();
//! let mut sink = EventSink::new();
//! let mut cycle = 0;
//! while pcp.is_busy() {
//!     pcp.step(Cycle(cycle), &mut bus, &mut sink)?;
//!     cycle += 1;
//! }
//! assert_eq!(pcp.reg(0, PReg(0)), 42);
//! # Ok::<(), audo_common::SimError>(())
//! ```

pub mod core;
pub mod isa;

pub use crate::core::{Pcp, PcpBus, PcpConfig, PcpStep};
pub use isa::{PReg, PcpInstr, ProgramBuilder};
