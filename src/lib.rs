//! Umbrella crate for the `audo` stack: a simulated AUDO-class automotive
//! SoC, its Emulation Device, and the Enhanced System Profiling /
//! architecture-optimization methodology of Mayer & Hellwig (DATE 2008).
//!
//! This crate simply re-exports the workspace members under stable names;
//! see the individual crates for the real documentation:
//!
//! * [`common`] — shared types, events, varints,
//! * [`tricore`] — the TC-R CPU (ISA, assembler, pipeline),
//! * [`pcp`] — the channel-programmed co-processor,
//! * [`platform`] — flash/caches/crossbar/DMA/interrupts/peripherals/SoC,
//! * [`mcds`] — the trigger/trace/rate-measurement block,
//! * [`ed`] — the Emulation Device (SoC + MCDS + EMEM),
//! * [`dap`] — the tool-link bandwidth model,
//! * [`obs`] — deterministic observability (registry + trace/metrics/flame
//!   exporters, all timestamped in simulated cycles),
//! * [`profiler`] — profiling sessions, timelines, analysis, optimization,
//! * [`workloads`] — synthetic automotive applications.
//!
//! The `examples/` directory contains runnable walkthroughs
//! (`quickstart`, `engine_profiling`, `architecture_study`,
//! `calibration_session`).

pub use audo_common as common;
pub use audo_dap as dap;
pub use audo_ed as ed;
pub use audo_mcds as mcds;
pub use audo_obs as obs;
pub use audo_pcp as pcp;
pub use audo_platform as platform;
pub use audo_profiler as profiler;
pub use audo_tricore as tricore;
pub use audo_workloads as workloads;
