//! A calibration session (§3): map an injection-map flash page into the
//! EMEM overlay, tune parameters from the tool side *while the engine
//! application keeps running*, and watch the computed injection quantity
//! follow — with profiling running concurrently from the same EMEM.
//!
//! ```text
//! cargo run --example calibration_session
//! ```

use audo_common::{Addr, SimError};
use audo_ed::{EdConfig, EmulationDevice, TraceMode};
use audo_mcds::select::{EventClass, EventSelector};
use audo_mcds::{Basis, Mcds, RateProbe};
use audo_platform::config::SocConfig;
use audo_workloads::engine::{engine_control, layout, EngineParams};

fn state_word(ed: &mut EmulationDevice, off: u32) -> Result<u32, SimError> {
    let b = ed.tool_read(Addr(layout::STATE + off), 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn main() -> Result<(), SimError> {
    // Long-running engine (many teeth) so we can tune mid-run.
    let params = EngineParams {
        rpm: 6000,
        target_teeth: 120,
        ..EngineParams::default()
    };
    let workload = engine_control(&params);

    // Split the 512 KiB EMEM: 64 KiB trace (ring), the rest calibration.
    let mut ed = EmulationDevice::new(
        SocConfig::default(),
        EdConfig {
            trace_bytes: 64 * 1024,
            trace_mode: TraceMode::Ring,
        },
    );
    workload.install_ed(&mut ed)?;

    // Profiling keeps running during calibration (shared EMEM).
    ed.program_mcds(
        Mcds::builder()
            .probe(RateProbe {
                event: EventSelector::of(EventClass::InstrRetired)
                    .from(audo_common::SourceId::TRICORE),
                basis: Basis::Cycles(5000),
                group: None,
            })
            .build()?,
    );

    // The injection map lives in flash; find its page and map it.
    let inj_map = workload.image.symbol("inj_map").expect("inj_map symbol");
    let page_bytes = ed.soc.fabric.cfg.overlay_page;
    let flash_page = (inj_map.0 - 0x8000_0000) / page_bytes;
    ed.map_calibration_page(0, flash_page)?;
    println!("=== calibration session ===");
    println!("mapped flash page {flash_page} ({inj_map}) into EMEM overlay; trace region 64 KiB\n");

    // Phase 1: run a third of the session with factory values.
    let phase = workload.max_cycles / 3;
    ed.run(phase, |_| {}).ok();
    let inj_before = state_word(&mut ed, layout::state::INJ_OUT)?;
    let row_before = state_word(&mut ed, layout::state::SMOOTH_OUT)?;
    let teeth_before = state_word(&mut ed, layout::state::TOOTH_COUNT)?;
    println!(
        "phase 1 (factory map):  tooth {teeth_before:>4}, injection {inj_before}, row avg {row_before}"
    );

    // Tool-side tuning: scale the whole injection map ×2 through the
    // overlay, while the target keeps running.
    let map_in_emem = Addr(0xE000_0000 + ed.calibration_offset() + (inj_map.0 % page_bytes));
    let current = ed.tool_read(map_in_emem, 256 * 4)?;
    let mut tuned = Vec::with_capacity(current.len());
    for w in current.chunks_exact(4) {
        let v = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) * 2;
        tuned.extend_from_slice(&v.to_le_bytes());
    }
    ed.tool_write(map_in_emem, &tuned)?;
    println!("tool: scaled 256-entry injection map x2 through the overlay (target still running)");

    // Phase 2: observe the application following the tuned parameters.
    ed.run(phase, |_| {}).ok();
    let inj_after = state_word(&mut ed, layout::state::INJ_OUT)?;
    let row_after = state_word(&mut ed, layout::state::SMOOTH_OUT)?;
    let teeth_after = state_word(&mut ed, layout::state::TOOTH_COUNT)?;
    println!(
        "phase 2 (tuned map):    tooth {teeth_after:>4}, injection {inj_after}, row avg {row_after}"
    );

    // The injection quantity is load-scaled (the simulated load moves),
    // but the row average is proportional to the map scale: it must
    // roughly double.
    let ratio = row_after as f64 / row_before.max(1) as f64;
    assert!(
        ratio > 1.5,
        "map doubling must show in the row average ({ratio:.2}x)"
    );
    println!("\nrow average rose {ratio:.2}x — the overlay redirected the map");
    let trace_level = ed.trace.level();
    println!(
        "profiling ran concurrently: {} trace bytes buffered, {} lost (ring mode)",
        trace_level,
        ed.trace.lost()
    );
    Ok(())
}
