//! Quickstart: assemble a tiny program, run it on the Emulation Device and
//! measure its IPC and cache behaviour with the Enhanced System Profiling
//! method — the complete tool stack in ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use audo_common::SimError;
use audo_ed::{EdConfig, EmulationDevice};
use audo_platform::config::SocConfig;
use audo_profiler::metrics::Metric;
use audo_profiler::render_report;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_tricore::asm::assemble;

fn main() -> Result<(), SimError> {
    // 1. A small flash-resident program: a compute loop followed by a
    //    memory-bound phase (pointer chase through uncached flash).
    let image = assemble(
        "
        .equ UNCACHED, 0x20000000
        .org 0x80000000
    _start:
        movi d0, 0
        li d1, 5000
    compute:
        mac d2, d0, d1
        addi d0, d0, 1
        jne d0, d1, compute

        la a2, chain0 + UNCACHED
        li d3, 600
    chase:
        ld.a a2, [a2]
        addi d3, d3, -1
        jnz d3, chase
        halt
        .align 64
    chain0: .word chain1 + UNCACHED
        .space 60
    chain1: .word chain2 + UNCACHED
        .space 60
    chain2: .word chain3 + UNCACHED
        .space 60
    chain3: .word chain0 + UNCACHED
    ",
    )?;

    // 2. Build a TC1797-class Emulation Device and load the program.
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    ed.soc.load_image(&image)?;

    // 3. Ask for three rates in parallel, sampled every 500 basis units —
    //    non-intrusively, on chip, in one run.
    let spec = ProfileSpec::new()
        .metric(Metric::Ipc, 500)
        .metric(Metric::IcacheHitRatio, 500)
        .metric(Metric::FlashDataAccessPerInstr, 500);

    let outcome = profile(&mut ed, &spec, &SessionOptions::default())?;

    println!("=== quickstart: Enhanced System Profiling in one run ===\n");
    println!(
        "ran {} cycles, produced {} trace bytes ({:.2} bytes/kcycle), lost {}\n",
        outcome.cycles,
        outcome.produced_bytes,
        outcome.bytes_per_kilocycle(),
        outcome.lost_bytes,
    );
    print!("{}", render_report(&outcome.timeline, 0.6));
    println!("\nThe low-IPC hot spot above is the pointer chase: the parallel");
    println!("flash-data-access rate names the cause without a second run.");
    Ok(())
}
