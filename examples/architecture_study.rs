//! The SoC-architect story (§4/§6): from one measured application profile,
//! quantify candidate next-generation architecture options by replaying the
//! *unchanged* software, validate the analytical estimates, and rank
//! options by performance-gain / cost — across several customer workloads.
//!
//! ```text
//! cargo run --release --example architecture_study
//! ```

use audo_common::{ByteSize, SimError};
use audo_platform::config::{PortArbitration, SocConfig};
use audo_platform::Soc;
use audo_profiler::options::{evaluate_options, ArchOption, CostModel, MeasuredProfile};
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::micro::{flash_streamer, table_chase};
use audo_workloads::Workload;

fn run_workload(cfg: &SocConfig, w: &Workload) -> Result<u64, SimError> {
    let mut soc = Soc::new(cfg.clone());
    soc.set_observation(false); // production-style replay: no EEC attached
    w.install(&mut soc)?;
    soc.run_to_halt(w.max_cycles)
}

fn measured_profile(cfg: &SocConfig, w: &Workload) -> Result<MeasuredProfile, SimError> {
    let mut soc = Soc::new(cfg.clone());
    w.install(&mut soc)?;
    let mut events = Vec::new();
    let cycles = soc.run(w.max_cycles, |obs| events.extend_from_slice(&obs.events))?;
    Ok(MeasuredProfile::from_events(cycles, &events))
}

fn main() -> Result<(), SimError> {
    let baseline = SocConfig::default();
    let options = [
        ArchOption::FlashWaitStates(3),
        ArchOption::FlashReadBuffers(4),
        ArchOption::FlashPrefetch(false),
        ArchOption::FlashArbitration(PortArbitration::DataFirst),
        ArchOption::IcacheSize(ByteSize::kib(32)),
        ArchOption::DcacheSize(ByteSize::kib(8)),
    ];
    let cost_model = CostModel::default();

    // Compute-bound workloads: the run length reflects architecture speed
    // (the engine halts on background-task completion, not wall-clock).
    let workloads = [
        engine_control(&EngineParams {
            rpm: 12_000,
            target_teeth: 25,
            ..EngineParams::default()
        }),
        table_chase(16, 4_000, true),
        flash_streamer(1500, 10),
    ];

    println!("=== architecture study: option gain/cost ranking ===\n");
    for w in &workloads {
        println!("--- workload: {} ---", w.name);
        let profile = measured_profile(&baseline, w)?;
        println!(
            "measured profile: {} cycles, {} instrs, {} flash buffer misses, {} bus-wait cycles",
            profile.cycles, profile.instrs, profile.flash_buffer_misses, profile.bus_wait_cycles
        );
        let study = evaluate_options(&baseline, &options, &cost_model, Some(&profile), |cfg| {
            run_workload(cfg, w)
        })?;
        print!("{}", study.render());
        println!();
    }
    println!("The ranking is what §6 calls the objective assessment: options");
    println!("are compared by gain/cost, per customer application, with the");
    println!("analytical estimate cross-checking the replay where it exists.");
    Ok(())
}
