//! The customer story (§5): profile a realistic engine-control application
//! — crank ISR, OS tasks, ADC-DMA chain, CAN — measure all essential rates
//! in parallel, find the hot spots, and attribute instructions to functions
//! via program-flow reconstruction.
//!
//! ```text
//! cargo run --example engine_profiling
//! ```

use audo_common::SimError;
use audo_ed::{EdConfig, EmulationDevice};
use audo_platform::config::SocConfig;
use audo_profiler::metrics::Metric;
use audo_profiler::reconstruct::{flat_profile, reconstruct_flow};
use audo_profiler::render_report;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::{MetricRequest, ProfileSpec};
use audo_workloads::engine::{engine_control, EngineParams};

fn main() -> Result<(), SimError> {
    let params = EngineParams {
        rpm: 6000,
        target_teeth: 40,
        ..EngineParams::default()
    };
    let workload = engine_control(&params);
    println!("=== engine profiling: {} ===", workload.name);
    println!("{}\n", workload.description);

    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    workload.install_ed(&mut ed)?;

    // Parallel rates (one run!), plus a cascade: when IPC drops below 0.6,
    // arm a fine-grained D-cache-miss probe, and full program trace for
    // function attribution.
    let spec = ProfileSpec::new()
        .metric(Metric::Ipc, 2000)
        .metric(Metric::IcacheHitRatio, 2000)
        .metric(Metric::DcacheHitRatio, 2000)
        .metric(Metric::InterruptsPerKilocycle, 2000)
        .cascade(
            Metric::Ipc,
            0.6,
            vec![MetricRequest {
                metric: Metric::DcacheMissPerInstr,
                window: 200,
            }],
        )
        .with_program_trace()
        .with_sync_every(16);

    let opts = SessionOptions {
        max_cycles: workload.max_cycles,
        ..SessionOptions::default()
    };
    let outcome = profile(&mut ed, &spec, &opts)?;

    println!(
        "ran {} cycles ({} trace bytes, {:.1} bytes/kcycle, {} lost)\n",
        outcome.cycles,
        outcome.produced_bytes,
        outcome.bytes_per_kilocycle(),
        outcome.lost_bytes
    );
    print!("{}", render_report(&outcome.timeline, 0.6));

    // Function-level attribution from the compressed program trace.
    let rec = reconstruct_flow(&workload.image, &outcome.messages)?;
    println!(
        "\nprogram-flow reconstruction: {} instructions from {} flow messages",
        rec.instr_count, rec.flow_messages
    );
    println!("{:<16} {:>12} {:>8}", "function", "instrs", "share");
    for (name, instrs, share) in flat_profile(&rec).into_iter().take(8) {
        println!("{name:<16} {instrs:>12} {share:>7.2}%");
    }
    println!("\nThe crank ISR and the background checksum dominate, exactly");
    println!("the split a powertrain engineer would want to see quantified.");
    Ok(())
}
