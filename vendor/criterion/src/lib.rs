//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — as a plain wall-clock
//! harness. No statistics beyond min/mean over the configured sample
//! count; results print to stdout one line per benchmark.

use std::time::{Duration, Instant};

/// Benchmark driver; collects samples and prints one line per benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.criterion.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (one call per sample).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    // One warm-up invocation, then the timed samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    let n = b.samples.len().max(1) as u32;
    let mean = b.samples.iter().sum::<Duration>() / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<44} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Re-export so benches can use `criterion::black_box` if they prefer it.
pub use std::hint::black_box;

/// Declares a benchmark group function (named-field or positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| 1 + 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(1);
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| ()));
        g.finish();
    }
}
