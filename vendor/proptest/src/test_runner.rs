//! The case runner: deterministic generation, regression-seed replay, and
//! failure persistence.

use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::strategy::Strategy;

/// Why a strategy or case could not proceed.
pub type Reason = String;

/// The non-success outcomes of a single test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed for this input.
    Fail(Reason),
    /// The input did not satisfy an assumption; skip it.
    Reject(Reason),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(reason: impl Into<Reason>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(reason: impl Into<Reason>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Upper bound on rejected cases before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Deterministic SplitMix64 generator used for all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    #[must_use]
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drives strategies; mirrors the real crate's API surface that the
/// workspace uses (`deterministic()` + `Strategy::new_tree`).
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: TestRng,
    config: Config,
}

impl TestRunner {
    /// A runner with the given configuration and a fixed seed.
    #[must_use]
    pub fn new(config: Config) -> TestRunner {
        TestRunner {
            rng: TestRng::from_seed(0x70_72_6f_70),
            config,
        }
    }

    /// A runner whose output is identical on every run.
    #[must_use]
    pub fn deterministic() -> TestRunner {
        TestRunner::new(Config::default())
    }

    /// The runner's generator.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// The runner's configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }
}

enum CaseOutcome {
    Pass,
    Reject,
    Fail(String, String),
}

fn run_case<S, F>(strategy: &S, test: &mut F, seed: u64) -> CaseOutcome
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let mut rng = TestRng::from_seed(seed);
    let value = strategy.generate(&mut rng);
    let shown = format!("{value:?}");
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(TestCaseError::Reject(_))) => CaseOutcome::Reject,
        Ok(Err(TestCaseError::Fail(reason))) => CaseOutcome::Fail(reason, shown),
        Err(panic) => {
            let reason = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("test panicked")
                .to_string();
            CaseOutcome::Fail(reason, shown)
        }
    }
}

/// FNV-1a over a byte string; used to derive stable per-test seeds and to
/// fold legacy (upstream-proptest) regression hashes into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Locates `<test file>.proptest-regressions` next to the test source.
///
/// `source_file` comes from `file!()` and is workspace-relative, while the
/// test binary may run from the workspace root or the package directory,
/// so walk a few ancestors until the source file is found.
fn persistence_path(source_file: &str) -> Option<PathBuf> {
    for prefix in ["", "..", "../..", "../../.."] {
        let candidate = if prefix.is_empty() {
            PathBuf::from(source_file)
        } else {
            Path::new(prefix).join(source_file)
        };
        if candidate.is_file() {
            return Some(candidate.with_extension("proptest-regressions"));
        }
    }
    None
}

/// Parses persisted seeds: lines of the form `cc <hex> [# comment]`.
///
/// Seeds written by this stand-in are 16 hex digits and decode directly;
/// longer hashes from upstream proptest are folded through FNV-1a so they
/// still replay a deterministic case.
fn read_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let token = rest.split_whitespace().next().unwrap_or("");
        if token.is_empty() || !token.bytes().all(|b| b.is_ascii_hexdigit()) {
            continue;
        }
        let seed = if token.len() <= 16 {
            u64::from_str_radix(token, 16).unwrap_or_else(|_| fnv1a(token.as_bytes()))
        } else {
            fnv1a(token.as_bytes())
        };
        seeds.push(seed);
    }
    seeds
}

fn persist_failure(path: Option<&Path>, seed: u64, shown: &str) {
    let Some(path) = path else { return };
    let fresh = !path.exists();
    let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) else {
        return;
    };
    if fresh {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases.",
        );
    }
    let first_line = shown.lines().next().unwrap_or(shown);
    let _ = writeln!(f, "cc {seed:016x} # shrinks to {first_line}");
}

/// Runs one property test: replays persisted regression seeds, then runs
/// `config.cases` freshly generated cases from a deterministic per-test
/// seed. On failure the seed is persisted and the test panics with the
/// offending input.
///
/// # Panics
///
/// Panics when a case fails (that is the test failing) or when too many
/// cases in a row are rejected by `prop_assume!`.
pub fn run_persisted_test<S, F>(
    config: &Config,
    source_file: &'static str,
    test_name: &'static str,
    strategy: &S,
    mut test: F,
) where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let persist = persistence_path(source_file);
    let fail = |seed: u64, reason: String, shown: String, origin: &str| {
        persist_failure(persist.as_deref(), seed, &shown);
        panic!(
            "proptest stand-in: {test_name} failed ({origin}, seed cc {seed:016x})\n\
             input: {shown}\n{reason}"
        );
    };

    if let Some(path) = persist.as_ref() {
        for seed in read_seeds(path) {
            match run_case(strategy, &mut test, seed) {
                CaseOutcome::Pass | CaseOutcome::Reject => {}
                CaseOutcome::Fail(reason, shown) => {
                    fail(seed, reason, shown, "persisted regression seed");
                }
            }
        }
    }

    let base = fnv1a(source_file.as_bytes()) ^ fnv1a(test_name.as_bytes()).rotate_left(32);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempt += 1;
        match run_case(strategy, &mut test, seed) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest stand-in: {test_name} rejected too many cases \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            CaseOutcome::Fail(reason, shown) => fail(seed, reason, shown, "generated case"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        let config = Config {
            cases: 50,
            ..Config::default()
        };
        run_persisted_test(
            &config,
            "vendor/proptest/src/test_runner.rs",
            "passing_property_completes_inner",
            &(0u32..100),
            |v| {
                if v < 100 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("out of range"))
                }
            },
        );
    }

    #[test]
    #[should_panic(expected = "proptest stand-in")]
    fn failing_property_panics_with_input() {
        let config = Config {
            cases: 50,
            ..Config::default()
        };
        // No persistence: point at a nonexistent source so nothing is written.
        run_persisted_test(
            &config,
            "nonexistent-source-file.rs",
            "failing_property",
            &(0u32..100),
            |v| {
                if v < 5 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("too big"))
                }
            },
        );
    }

    #[test]
    fn rejects_are_skipped() {
        let config = Config {
            cases: 20,
            ..Config::default()
        };
        run_persisted_test(
            &config,
            "nonexistent-source-file.rs",
            "rejects_are_skipped",
            &(0u32..100),
            |v| {
                if v % 2 == 0 {
                    Err(TestCaseError::reject("odd only"))
                } else {
                    Ok(())
                }
            },
        );
    }

    #[test]
    fn seed_lines_parse_both_formats() {
        let dir = std::env::temp_dir().join("proptest-standin-test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("seeds.proptest-regressions");
        fs::write(
            &path,
            "# comment\n\
             cc 00000000000000ff # shrinks to x = 3\n\
             cc 9ffc2f6f6cddf943157b772245b71c7a30b80f77583e84c06ee88d6e5ba47191 # legacy\n\
             not a seed line\n",
        )
        .unwrap();
        let seeds = read_seeds(&path);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], 0xff);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn panicking_case_is_reported_as_failure() {
        let outcome = run_case(
            &(0u32..10),
            &mut |_| -> TestCaseResult { panic!("boom") },
            1,
        );
        match outcome {
            CaseOutcome::Fail(reason, _) => assert!(reason.contains("boom")),
            _ => panic!("expected failure outcome"),
        }
    }

    #[test]
    fn deterministic_runner_reproduces_values() {
        let s = (0u64..1_000_000).prop_map(|v| v * 2);
        let mut a = TestRunner::deterministic();
        let mut b = TestRunner::deterministic();
        for _ in 0..20 {
            let va = s.new_tree(&mut a).unwrap();
            let vb = s.new_tree(&mut b).unwrap();
            use crate::strategy::ValueTree as _;
            assert_eq!(va.current(), vb.current());
        }
    }
}
