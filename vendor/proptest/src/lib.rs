//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the property-testing subset its test-suite uses:
//!
//! * [`strategy::Strategy`] with `prop_map`, `boxed`, tuple strategies,
//!   integer ranges, [`strategy::Just`], `any::<T>()` and
//!   [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`];
//! * a deterministic [`test_runner::TestRunner`] and `*.proptest-regressions`
//!   seed persistence compatible with the committed regression-file format
//!   (`cc <hex> # shrinks to ..`).
//!
//! Differences from the real crate, by design: cases are generated from a
//! deterministic per-test seed (no OS entropy) so failures reproduce
//! across runs and machines, and there is **no shrinking** — a failing
//! case reports the generated input verbatim and persists its seed.
//! Legacy `cc` hashes written by upstream proptest are replayed as seed
//! material for this generator (the exact byte-encoded case cannot be
//! reconstructed, so known bug inputs should also be pinned as plain unit
//! tests — see e.g. `tests/golden_equivalence.rs`).

pub mod strategy;
pub mod test_runner;

/// Strategy constructors for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, size)
    }
}

/// Generation of arbitrary values by type.
pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Clone + std::fmt::Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix edge values in with a small probability so tests
                    // see boundaries more often than uniform sampling would.
                    match rng.next_u64() % 16 {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);
}

/// The common imports every property test starts with.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union, ValueTree};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// expands to a `#[test]` running the body over generated inputs, after
/// replaying any committed `*.proptest-regressions` seeds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_persisted_test(
                &config,
                file!(),
                stringify!($name),
                &strategy,
                |($($pat,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test (fails the case, with input
/// reporting, instead of panicking outright).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values compare equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// Asserts two values compare unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), left, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (it is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
