//! Value-generation strategies: the composable core of the stand-in.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::arbitrary::Arbitrary;
use crate::test_runner::{Reason, TestRng, TestRunner};

/// A generated value wrapper. The real proptest shrinks through a tree of
/// simpler values; this stand-in reports the generated input verbatim, so
/// `simplify`/`complicate` always decline.
pub trait ValueTree {
    /// The value type produced.
    type Value;

    /// The current value.
    fn current(&self) -> Self::Value;

    /// Attempts to move to a simpler value (never succeeds here).
    fn simplify(&mut self) -> bool {
        false
    }

    /// Attempts to move back toward the failing value (never succeeds).
    fn complicate(&mut self) -> bool {
        false
    }
}

/// The trivial [`ValueTree`] holding one generated value.
#[derive(Debug, Clone)]
pub struct Node<T>(pub(crate) T);

impl<T: Clone> ValueTree for Node<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// Something that can generate values of one type.
pub trait Strategy {
    /// The value type generated.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Draws one value wrapped in a [`ValueTree`] (real-proptest API shape).
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in; the `Result` mirrors upstream.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Node<Self::Value>, Reason> {
        Ok(Node(self.generate(runner.rng())))
    }

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F, O>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map,
            _output: PhantomData,
        }
    }

    /// Erases the concrete strategy type (shared, cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A shared type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F, O> {
    source: S,
    map: F,
    _output: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Chooses between alternative strategies, optionally weighted
/// (the result of [`prop_oneof!`](crate::prop_oneof)).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total_weight")
    }
}

/// The result of [`collection::vec`](crate::collection::vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty length range");
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `any::<T>()` — the canonical whole-domain strategy for `T`.
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Creates the whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(12345)
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-2048i16..2048).generate(&mut r);
            assert!((-2048..2048).contains(&v));
            let u = (1u32..256).generate(&mut r);
            assert!((1..256).contains(&u));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0u8..4, 0u8..4).prop_map(|(a, b)| format!("{a}{b}"));
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert_eq!(v.len(), 2);
        }
    }

    #[test]
    fn union_respects_weights() {
        let s = Union::new_weighted(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let mut r = rng();
        let hits = (0..1000).filter(|_| s.generate(&mut r)).count();
        assert!(hits > 700, "weighted arm dominates ({hits}/1000)");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = VecStrategy::new(0u8..10, 2..5);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = crate::collection::vec(0u32..1000, 1..20);
        let a: Vec<_> = {
            let mut r = TestRng::from_seed(7);
            (0..10).map(|_| s.generate(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = TestRng::from_seed(7);
            (0..10).map(|_| s.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
