//! Offline stand-in for `rand`.
//!
//! Provides the seeded-determinism subset the workspace uses: a
//! [`rngs::StdRng`] constructed via [`SeedableRng::seed_from_u64`] and
//! integer [`RngExt::random_range`] sampling. The generator is SplitMix64,
//! which is plenty for deterministic workload generation (the repository
//! never needs cryptographic or statistical-grade randomness).

use std::ops::Range;

/// Core generator interface: a stream of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose output is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open integer range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// Convenience sampling methods, auto-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws a uniform value from `range` (half-open).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u32),
                b.random_range(0..1_000_000u32)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(-2048i32..2048);
            assert!((-2048..2048).contains(&v));
            let u = rng.random_range(0..7u8);
            assert!(u < 7);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..16).map(|_| a.random_range(0..u32::MAX)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.random_range(0..u32::MAX)).collect();
        assert_ne!(va, vb);
    }
}
