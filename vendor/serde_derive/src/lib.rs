//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` expansions.
//!
//! The repository only *derives* the serde traits today (no code calls a
//! serializer), so in offline builds the derives can expand to nothing;
//! the blanket impls in the `serde` stand-in satisfy any trait bounds.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` stand-in provides a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` stand-in provides a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
