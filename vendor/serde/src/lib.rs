//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the tiny API subset it actually uses: the two marker traits and
//! their derives. The derives expand to nothing and the traits carry
//! blanket impls, which keeps `#[derive(Serialize, Deserialize)]` and any
//! `T: Serialize` bound compiling without pulling in the real crate.
//!
//! If real serialization is ever needed, replace this stand-in with the
//! genuine `serde` by restoring the registry dependency.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
