; Crafted CSA-overflow image: a 50-deep non-recursive call chain
; against the platform's 48-frame CSA free list. The static analyzer
; must report CSA-OVERFLOW and exit 2 (scripts/ci.sh pins this).
.org 0x80000000
_start:
    la sp, 0xD0004000
    call f1
    debug 10
    halt
f1:
    call f2
    ret
f2:
    call f3
    ret
f3:
    call f4
    ret
f4:
    call f5
    ret
f5:
    call f6
    ret
f6:
    call f7
    ret
f7:
    call f8
    ret
f8:
    call f9
    ret
f9:
    call f10
    ret
f10:
    call f11
    ret
f11:
    call f12
    ret
f12:
    call f13
    ret
f13:
    call f14
    ret
f14:
    call f15
    ret
f15:
    call f16
    ret
f16:
    call f17
    ret
f17:
    call f18
    ret
f18:
    call f19
    ret
f19:
    call f20
    ret
f20:
    call f21
    ret
f21:
    call f22
    ret
f22:
    call f23
    ret
f23:
    call f24
    ret
f24:
    call f25
    ret
f25:
    call f26
    ret
f26:
    call f27
    ret
f27:
    call f28
    ret
f28:
    call f29
    ret
f29:
    call f30
    ret
f30:
    call f31
    ret
f31:
    call f32
    ret
f32:
    call f33
    ret
f33:
    call f34
    ret
f34:
    call f35
    ret
f35:
    call f36
    ret
f36:
    call f37
    ret
f37:
    call f38
    ret
f38:
    call f39
    ret
f39:
    call f40
    ret
f40:
    call f41
    ret
f41:
    call f42
    ret
f42:
    call f43
    ret
f43:
    call f44
    ret
f44:
    call f45
    ret
f45:
    call f46
    ret
f46:
    call f47
    ret
f47:
    call f48
    ret
f48:
    call f49
    ret
f49:
    call f50
    ret
f50:
    addi d4, d4, 1
    ret
