//! Observability determinism: every export is timestamped in simulated
//! cycles (never wall clock), so the same seeded workload must render
//! byte-identical Chrome-trace, metrics-snapshot, and flamegraph files on
//! every run — the property that makes exports diffable across commits.

use audo_ed::{EdConfig, EmulationDevice};
use audo_platform::config::SocConfig;
use audo_profiler::reconstruct::reconstruct_flow;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_workloads::engine::{engine_control, EngineParams};

/// Runs one traced, observed profiling session and renders all three
/// exports.
fn observed_exports() -> (String, String, String) {
    let p = EngineParams {
        rpm: 9_000,
        target_teeth: 8,
        target_bg_passes: 4,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed).unwrap();
    let spec = ProfileSpec::new().with_program_trace().with_sync_every(16);
    let out = profile(
        &mut ed,
        &spec,
        &SessionOptions {
            max_cycles: w.max_cycles,
            observe: true,
            ..SessionOptions::default()
        },
    )
    .unwrap();
    let rec = reconstruct_flow(&w.image, &out.messages).unwrap();
    let trace =
        audo_obs::chrome::trace_json(&out.obs, "audo session", &[(0, String::from("session"))]);
    let metrics = audo_obs::metrics_text::render(&out.obs, "audo_");
    let flame = rec.folded.render();
    (trace, metrics, flame)
}

#[test]
fn exports_are_byte_identical_across_runs() {
    let a = observed_exports();
    let b = observed_exports();
    assert_eq!(a.0, b.0, "chrome trace JSON");
    assert_eq!(a.1, b.1, "metrics snapshot");
    assert_eq!(a.2, b.2, "folded flame stacks");
}

#[test]
fn exports_carry_the_expected_structure() {
    let (trace, metrics, flame) = observed_exports();
    // Chrome trace: the three per-event keys the viewers require, plus the
    // session span tree recorded by `profile`.
    for key in ["\"traceEvents\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""] {
        assert!(trace.contains(key), "trace export missing {key}");
    }
    for span in ["\"session\"", "\"target.run\"", "\"drain.finish\""] {
        assert!(trace.contains(span), "trace export missing span {span}");
    }
    // Metrics snapshot: non-empty, typed, and carrying counters from
    // several layers of the stack.
    assert!(metrics.contains("# TYPE"));
    for name in [
        "audo_soc_cycles",
        "audo_soc_tricore_instructions_retired",
        "audo_ed_trace_total_written_bytes",
        "audo_session_trace_bytes_produced",
    ] {
        assert!(metrics.contains(name), "metrics snapshot missing {name}");
    }
    // Flame stacks: semicolon-joined frames with positive self counts,
    // including at least one nested (caller;callee) stack.
    assert!(!flame.is_empty());
    assert!(flame.lines().any(|l| l.contains(';')), "no nested stack");
    for line in flame.lines() {
        let (_, count) = line.rsplit_once(' ').expect("folded line has a count");
        let count: u64 = count.parse().expect("folded count is a number");
        assert!(count > 0, "zero-count folded line: {line}");
    }
}
