//! Trace-protocol properties and full-stack program-flow reconstruction
//! against the golden model's retired-PC sequence.

use audo_common::events::FlowKind;
use audo_common::{AccessKind, Addr, Cycle, SourceId};
use audo_ed::{EdConfig, EmulationDevice};
use audo_mcds::msg::{decode_stream, Encoder, TraceMessage};
use audo_platform::config::SocConfig;
use audo_profiler::reconstruct::reconstruct_flow;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_tricore::asm::assemble;
use audo_tricore::iss::Iss;
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = TraceMessage> {
    let src = prop_oneof![
        Just(SourceId::TRICORE),
        Just(SourceId::PCP),
        Just(SourceId::DMA)
    ];
    let kind = prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)];
    let flow = prop_oneof![
        Just(FlowKind::BranchTaken),
        Just(FlowKind::Indirect),
        Just(FlowKind::Call),
        Just(FlowKind::Return),
        Just(FlowKind::Exception),
        Just(FlowKind::ExceptionReturn),
    ];
    prop_oneof![
        (src.clone(), 0u32..100_000)
            .prop_map(|(source, icnt)| TraceMessage::FlowDirect { source, icnt }),
        (
            src.clone(),
            flow,
            0u32..100_000,
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(source, kind, icnt, t, sync)| TraceMessage::FlowTarget {
                source,
                kind,
                icnt,
                target: Addr(t),
                sync,
            }),
        (any::<u8>(), any::<u64>(), any::<u64>())
            .prop_map(|(probe, num, den)| TraceMessage::Counter { probe, num, den }),
        any::<u8>().prop_map(|code| TraceMessage::Watchpoint { code }),
        (
            src.clone(),
            kind.clone(),
            1u8..5,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(source, kind, size, a, value)| TraceMessage::Data {
                source,
                kind,
                size,
                addr: Addr(a),
                value,
            }),
        (src, kind, 1u8..5, any::<u32>()).prop_map(|(master, kind, size, a)| {
            TraceMessage::Bus {
                master,
                kind,
                size,
                addr: Addr(a),
            }
        }),
        (any::<u8>(), any::<bool>())
            .prop_map(|(channel, start)| TraceMessage::PcpChannel { channel, start }),
        any::<u64>().prop_map(|lost| TraceMessage::Overflow { lost }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Any message sequence round-trips bit-exactly through the codec.
    #[test]
    fn message_streams_roundtrip(
        msgs in proptest::collection::vec(arb_message(), 0..60),
        deltas in proptest::collection::vec(0u64..10_000, 0..60),
    ) {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        let mut cycle = 0u64;
        let mut expected = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            cycle += deltas.get(i).copied().unwrap_or(1);
            enc.emit(Cycle(cycle), m, &mut buf);
            expected.push((Cycle(cycle), *m));
        }
        let decoded = decode_stream(&buf).expect("clean stream decodes");
        prop_assert_eq!(decoded, expected);
    }

    /// Truncating a stream anywhere never panics and yields a decoded
    /// prefix of the full stream.
    #[test]
    fn truncated_streams_decode_a_prefix(
        msgs in proptest::collection::vec(arb_message(), 1..30),
        cut_ppm in 0u32..1_000_000,
    ) {
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            enc.emit(Cycle(i as u64 * 7), m, &mut buf);
        }
        let full = decode_stream(&buf).expect("full stream decodes");
        let cut = (buf.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        let (partial, _err) = audo_mcds::msg::decode_stream_lossy(&buf[..cut]);
        prop_assert!(partial.len() <= full.len());
        prop_assert_eq!(&full[..partial.len()], &partial[..]);
    }
}

/// Reconstructed PC sequence must exactly match the golden model's retired
/// PCs (modulo the pre-sync prologue and post-last-flow tail).
#[test]
fn reconstruction_matches_golden_pc_sequence() {
    let src = "
        .org 0x80000000
    _start:
        la sp, 0xD0004000
        movi d0, 0
        movi d1, 25
    outer:
        movi d2, 3
        mov.a a3, d2
    inner:
        add d0, d0, d1
        call helper
        loop a3, inner
        addi d1, d1, -1
        jnz d1, outer
        halt
    helper:
        jz d0, h_zero
        xor d0, d0, d1
        ret
    h_zero:
        addi d0, d0, 7
        ret
    ";
    // Golden PC stream from the functional model.
    let image = assemble(src).unwrap();
    let mut iss = Iss::new();
    iss.map_region(Addr(0x8000_0000), 0x10000);
    iss.map_region(Addr(0xD000_0000), 0x10000);
    iss.init_csa(Addr(0xD000_8000), 32).unwrap();
    iss.load(&image).unwrap();
    let mut golden_pcs = Vec::new();
    while !iss.is_halted() {
        golden_pcs.push(iss.state().pc);
        iss.step().unwrap();
        assert!(golden_pcs.len() < 100_000);
    }

    // Traced run on the full Emulation Device.
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    ed.soc.load_image(&image).unwrap();
    let spec = ProfileSpec::new().with_program_trace().with_sync_every(8);
    let out = profile(&mut ed, &spec, &SessionOptions::default()).unwrap();
    assert!(out.decode_error.is_none());
    let rec = reconstruct_flow(&image, &out.messages).unwrap();
    assert!(!rec.pcs.is_empty());

    // The reconstruction is a contiguous slice of the golden stream.
    let start = golden_pcs
        .windows(rec.pcs.len().min(8))
        .position(|w| w == &rec.pcs[..w.len()])
        .expect("reconstruction locks onto the golden stream");
    let end = start + rec.pcs.len();
    assert!(
        end <= golden_pcs.len(),
        "reconstruction longer than golden ({end} > {})",
        golden_pcs.len()
    );
    assert_eq!(
        &golden_pcs[start..end],
        &rec.pcs[..],
        "reconstructed PCs must match the golden model exactly"
    );
    // And it covers nearly everything.
    assert!(
        rec.pcs.len() + 40 >= golden_pcs.len(),
        "coverage too small: {} of {}",
        rec.pcs.len(),
        golden_pcs.len()
    );
}
