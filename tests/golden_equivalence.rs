//! Cross-model equivalence: random programs must produce identical
//! architectural results on the functional golden ISS, the cycle-accurate
//! pipeline (scratchpad-like test bus), and the full SoC (flash-resident).
//!
//! This is the repository's strongest correctness net: the three execution
//! models share instruction *semantics* by construction, so any divergence
//! exposes a bookkeeping bug in the pipeline or the memory system.

use audo_common::{Addr, Cycle, EventSink, SourceId};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_tricore::asm::assemble;
use audo_tricore::bus::TestBus;
use audo_tricore::iss::Iss;
use audo_tricore::pipeline::{Core, CoreConfig};
use proptest::prelude::*;

/// Generates one random straight-line instruction line (registers d0..d7,
/// addresses constrained to a preset DSPR window via a2).
fn arb_line() -> impl Strategy<Value = String> {
    let reg = 0..8u8;
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("add d{a}, d{b}, d{c}")),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("sub d{a}, d{b}, d{c}")),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("xor d{a}, d{b}, d{c}")),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("mul d{a}, d{b}, d{c}")),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("div d{a}, d{b}, d{c}")),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("mac d{a}, d{b}, d{c}")),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("min d{a}, d{b}, d{c}")),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("sh d{a}, d{b}, d{c}")),
        (reg.clone(), reg.clone(), -2048i16..2048)
            .prop_map(|(a, b, i)| format!("addi d{a}, d{b}, {i}")),
        (reg.clone(), -32768i32..65536)
            .prop_map(|(a, i)| format!("movi d{a}, {}", i.clamp(-32768, 32767))),
        (reg.clone(), 0u32..0x10000).prop_map(|(a, i)| format!("movu d{a}, {i}")),
        (reg.clone(), reg.clone(), -31i8..32).prop_map(|(a, b, i)| format!("shi d{a}, d{b}, {i}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("clz d{a}, d{b}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("sext.h d{a}, d{b}")),
        (reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(a, b, c)| format!("sel d{a}, d{b}, d{c}")),
        // Memory traffic inside the 64-word window at a2.
        (reg.clone(), 0u32..16).prop_map(|(a, o)| format!("st.w d{a}, [a2+{}]", o * 4)),
        (reg.clone(), 0u32..16).prop_map(|(a, o)| format!("ld.w d{a}, [a2+{}]", o * 4)),
        (reg.clone(), 0u32..32).prop_map(|(a, o)| format!("st.h d{a}, [a3+{}]", o * 2)),
        (reg, 0u32..32).prop_map(|(a, o)| format!("ld.hu d{a}, [a3+{}]", o * 2)),
    ]
}

fn program_from(lines: &[String]) -> String {
    let mut src = String::from(
        "
        .org 0x80000000
    _start:
        la a2, 0xD0000100
        la a3, 0xD0000200
        movi d0, 3
        movi d1, -7
        movi d2, 11
        movi d3, 127
        movi d4, -1
        movi d5, 9
        movi d6, 0
        movi d7, 5
    ",
    );
    for l in lines {
        src.push_str("    ");
        src.push_str(l);
        src.push('\n');
    }
    src.push_str("    halt\n");
    src
}

/// Runs the ISS twice — slow single-stepping and the predecoded-block fast
/// path — with event observation on, and asserts the two runs are
/// bit-for-bit identical (architectural state, retired count, debug
/// markers, event stream) before returning the golden registers. Every
/// property case therefore also property-tests the decode cache.
fn run_iss(src: &str) -> ([u32; 16], [u32; 16]) {
    let image = assemble(src).expect("assembles");
    let build = |fast: bool| {
        let mut iss = Iss::new();
        iss.map_region(Addr(0x8000_0000), 0x10000);
        iss.map_region(Addr(0xD000_0000), 0x10000);
        iss.init_csa(Addr(0xD000_8000), 32).unwrap();
        iss.load(&image).unwrap();
        iss.set_fast_path(fast);
        iss.set_observation(true);
        iss
    };
    let slow = build(false).run(1_000_000).expect("golden run completes");
    let fast = build(true).run(1_000_000).expect("fast-path run completes");
    assert_eq!(slow.state, fast.state, "fast path arch state\n{src}");
    assert_eq!(slow.instr_count, fast.instr_count, "fast path count\n{src}");
    assert_eq!(slow.debug_markers, fast.debug_markers, "fast path markers");
    assert_eq!(slow.events, fast.events, "fast path event stream\n{src}");
    (slow.state.d, slow.state.a)
}

fn run_pipeline(src: &str) -> ([u32; 16], [u32; 16]) {
    let image = assemble(src).expect("assembles");
    let mut bus = TestBus::new();
    bus.mem.add_region(Addr(0x8000_0000), 0x10000);
    bus.mem.add_region(Addr(0xD000_0000), 0x10000);
    image.load_into(&mut bus.mem).unwrap();
    let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
    core.arch_mut().fcx =
        audo_tricore::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
    let mut sink = EventSink::disabled();
    let mut cycle = 0u64;
    while !core.is_halted() {
        core.step(Cycle(cycle), &mut bus, None, &mut sink)
            .expect("no fault");
        cycle += 1;
        assert!(cycle < 2_000_000, "pipeline did not halt");
    }
    (core.arch().d, core.arch().a)
}

fn run_soc(src: &str) -> ([u32; 16], [u32; 16]) {
    let image = assemble(src).expect("assembles");
    let mut soc = Soc::new(SocConfig::default());
    soc.load_image(&image).unwrap();
    soc.run_to_halt(5_000_000).expect("soc run completes");
    (soc.tricore.arch().d, soc.tricore.arch().a)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn three_models_agree_on_random_programs(lines in proptest::collection::vec(arb_line(), 1..60)) {
        let src = program_from(&lines);
        let (iss_d, iss_a) = run_iss(&src);
        let (pipe_d, pipe_a) = run_pipeline(&src);
        prop_assert_eq!(iss_d, pipe_d, "ISS vs pipeline data regs\n{}", src);
        prop_assert_eq!(iss_a, pipe_a, "ISS vs pipeline addr regs\n{}", src);
        let (soc_d, soc_a) = run_soc(&src);
        prop_assert_eq!(iss_d, soc_d, "ISS vs SoC data regs\n{}", src);
        // A10 differs (the SoC loader sets the stack pointer); ignore it.
        for r in (0..16).filter(|&r| r != 10) {
            prop_assert_eq!(iss_a[r], soc_a[r], "ISS vs SoC a{} regs\n{}", r, src);
        }
    }
}

#[test]
fn branchy_program_agrees_across_models() {
    // Hand-written control-flow torture: nested loops, calls, conditional
    // branches in both directions.
    let src = "
        .org 0x80000000
    _start:
        la a2, 0xD0000100
        la sp, 0xD0004000
        movi d0, 0
        movi d1, 17
    outer:
        movi d2, 5
        mov.a a3, d2
    inner:
        add d0, d0, d1
        call twist
        loop a3, inner
        addi d1, d1, -1
        jnz d1, outer
        st.w d0, [a2]
        halt
    twist:
        jz d0, twist_zero
        xor d0, d0, d1
        ret
    twist_zero:
        addi d0, d0, 1
        ret
    ";
    let (iss_d, _) = run_iss(src);
    let (pipe_d, _) = run_pipeline(src);
    let (soc_d, _) = run_soc(src);
    assert_eq!(iss_d, pipe_d);
    assert_eq!(iss_d, soc_d);
}

// ----------------------------------------------------------------------
// Structured random control flow: nested counted loops and if/else
// diamonds built so every program provably terminates.
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Block {
    Straight(Vec<String>),
    /// Counted loop (a5..a7 as counters by depth) around a body.
    Loop {
        count: u8,
        body: Vec<Block>,
    },
    /// `if dN == 0 { t } else { e }` via jz/j.
    IfElse {
        reg: u8,
        then_b: Vec<String>,
        else_b: Vec<String>,
    },
    /// A call to one of two tiny leaf functions.
    Call(bool),
}

fn arb_block(depth: u32) -> impl Strategy<Value = Block> {
    let straight = proptest::collection::vec(arb_line(), 1..8).prop_map(Block::Straight);
    let ifelse = (
        0u8..8,
        proptest::collection::vec(arb_line(), 1..5),
        proptest::collection::vec(arb_line(), 1..5),
    )
        .prop_map(|(reg, then_b, else_b)| Block::IfElse {
            reg,
            then_b,
            else_b,
        });
    let call = any::<bool>().prop_map(Block::Call);
    if depth == 0 {
        prop_oneof![straight, ifelse, call].boxed()
    } else {
        let looped = (
            1u8..5,
            proptest::collection::vec(arb_block(depth - 1), 1..3),
        )
            .prop_map(|(count, body)| Block::Loop { count, body });
        prop_oneof![3 => straight, 2 => ifelse, 2 => looped, 1 => call].boxed()
    }
}

fn emit_blocks(blocks: &[Block], depth: u32, label_seq: &mut u32, out: &mut String) {
    for b in blocks {
        match b {
            Block::Straight(lines) => {
                for l in lines {
                    out.push_str("    ");
                    out.push_str(l);
                    out.push('\n');
                }
            }
            Block::Loop { count, body } => {
                // One counter register per nesting level (a5..a7 — a2/a3
                // are the data pointers of the straight-line mix); the
                // counter is re-set right before each loop, so reuse at the
                // same depth is fine.
                let areg = 5 + depth.min(2);
                let head = *label_seq;
                *label_seq += 1;
                out.push_str(&format!("    movi d15, {count}\n"));
                out.push_str(&format!("    mov.a a{areg}, d15\n"));
                out.push_str(&format!("L{head}:\n"));
                emit_blocks(body, depth + 1, label_seq, out);
                out.push_str(&format!("    loop a{areg}, L{head}\n"));
            }
            Block::IfElse {
                reg,
                then_b,
                else_b,
            } => {
                let id = *label_seq;
                *label_seq += 2;
                out.push_str(&format!("    jz d{reg}, L{id}\n"));
                for l in then_b {
                    out.push_str("    ");
                    out.push_str(l);
                    out.push('\n');
                }
                out.push_str(&format!("    j L{}\n", id + 1));
                out.push_str(&format!("L{id}:\n"));
                for l in else_b {
                    out.push_str("    ");
                    out.push_str(l);
                    out.push('\n');
                }
                out.push_str(&format!("L{}:\n", id + 1));
            }
            Block::Call(which) => {
                out.push_str(if *which {
                    "    call leaf_a\n"
                } else {
                    "    call leaf_b\n"
                });
            }
        }
    }
}

fn structured_program(blocks: &[Block]) -> String {
    let mut src = String::from(
        "
        .org 0x80000000
    _start:
        la a2, 0xD0000100
        la a3, 0xD0000200
        la sp, 0xD0004000
        movi d0, 3
        movi d1, -7
        movi d2, 11
        movi d3, 127
        movi d4, -1
        movi d5, 9
        movi d6, 0
        movi d7, 5
    ",
    );
    let mut seq = 0;
    emit_blocks(blocks, 0, &mut seq, &mut src);
    src.push_str(
        "    halt
    leaf_a:
        addi d6, d6, 1
        xor d5, d5, d6
        ret
    leaf_b:
        add d5, d5, d7
        ret
    ",
    );
    src
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn structured_control_flow_agrees_across_models(
        blocks in proptest::collection::vec(arb_block(2), 1..6)
    ) {
        let src = structured_program(&blocks);
        let (iss_d, _) = run_iss(&src);
        let (pipe_d, _) = run_pipeline(&src);
        prop_assert_eq!(iss_d, pipe_d, "ISS vs pipeline\n{}", src);
        let (soc_d, _) = run_soc(&src);
        prop_assert_eq!(iss_d, soc_d, "ISS vs SoC\n{}", src);
    }
}
