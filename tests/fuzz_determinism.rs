//! Determinism contract of the differential fuzzer.
//!
//! The fuzz session report must be byte-identical no matter how many
//! worker threads execute the cases: all entropy comes from the session
//! seed, coverage feedback only crosses rounds at fixed barriers, and
//! results are folded in case-index order. These tests pin that
//! contract at the library level (the `fuzz` CLI adds nothing but
//! argument parsing and printing on top), and exercise the whole
//! shrink-and-pin loop through the injected-fault hook.

use audo_bench::run_jobs;
use audo_fuzz::{run_fuzz, serial_schedule, CaseResult, FuzzOptions};
use audo_tricore::opcodes::opcode_by_name;

/// A schedule that runs cases on `jobs` worker threads through the
/// bench-harness scheduler — the same wiring the `fuzz` CLI uses.
fn threaded_schedule(
    jobs: usize,
) -> impl Fn(usize, &(dyn Fn(usize) -> CaseResult + Sync)) -> Vec<CaseResult> {
    move |count, case| {
        run_jobs(count, jobs, case)
            .into_iter()
            .map(|t| t.output)
            .collect()
    }
}

fn base_opts() -> FuzzOptions {
    FuzzOptions {
        seed: 0xD1FF,
        iterations: 24,
        round: 8,
        corpus_dir: Some(audo_asm::default_corpus_dir()),
        ..FuzzOptions::default()
    }
}

/// Serial execution and a 4-worker pool must render the exact same
/// report, and the checked-in corpus plus generated programs must be
/// divergence-free on a healthy tree.
#[test]
fn report_is_byte_identical_across_job_counts_and_clean() {
    let opts = base_opts();
    let serial = run_fuzz(&opts, serial_schedule).expect("serial session runs");
    let pooled = run_fuzz(&opts, threaded_schedule(4)).expect("pooled session runs");
    assert_eq!(
        serial.render(),
        pooled.render(),
        "fuzz report depends on worker count"
    );
    assert!(
        serial.divergences.is_empty(),
        "clean tree diverged: {:#?}",
        serial.divergences
    );
    assert!(serial.retired_total > 0);
}

/// An injected tier bug must surface as a divergence with a minimized,
/// pinned reproducer that round-trips through the literate parser and
/// the assembler — and the failure report must itself be deterministic
/// across worker counts.
#[test]
fn injected_fault_pins_a_minimized_reproducer_at_any_job_count() {
    let pin_dir = std::env::temp_dir().join(format!("audo-fuzz-pins-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&pin_dir);
    let opts = FuzzOptions {
        fault: Some(opcode_by_name("mul").expect("mul is assigned")),
        pin_dir: Some(pin_dir.clone()),
        ..base_opts()
    };
    let serial = run_fuzz(&opts, serial_schedule).expect("serial session runs");
    let pooled = run_fuzz(&opts, threaded_schedule(4)).expect("pooled session runs");
    assert_eq!(
        serial.render(),
        pooled.render(),
        "divergence report depends on worker count"
    );
    assert!(
        !serial.divergences.is_empty(),
        "injected fault went unnoticed"
    );

    let pinned: Vec<_> = serial
        .divergences
        .iter()
        .filter_map(|d| d.pinned.as_ref())
        .collect();
    assert!(!pinned.is_empty(), "no reproducer was pinned");
    for name in pinned {
        let text = std::fs::read_to_string(pin_dir.join(name)).expect("pinned file exists");
        let program = audo_asm::parse_literate(&text).expect("reproducer is literate");
        program.assemble().expect("reproducer assembles");
        assert!(
            program
                .source
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count()
                <= 15,
            "reproducer was not minimized:\n{}",
            program.source
        );
    }
    let _ = std::fs::remove_dir_all(&pin_dir);
}
