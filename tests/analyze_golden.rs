//! Golden-file check of the static analyzer's JSON report: the stock and
//! optimized engine images must render the exact committed finding sets.
//! Everything in the report is derived from the image bytes and the
//! platform memory map, so the goldens are machine-independent; they
//! change only when the workload generator, the memory map, or the
//! analyzer itself genuinely change.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! ANALYZE_GOLDEN_REGEN=1 cargo test --test analyze_golden
//! ```
//!
//! and commit the updated files under `tests/golden/` with an explanation.

use audo_analyze::{analyze, MasterRanges};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::Workload;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("ANALYZE_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); see file header", path.display()));
    assert!(
        expected == actual,
        "{name} diverged from the committed golden. If the change is \
         intentional, regenerate with ANALYZE_GOLDEN_REGEN=1 cargo test \
         --test analyze_golden and commit the diff."
    );
}

fn report(w: &Workload) -> String {
    let cfg = SocConfig::tc1797();
    let mut soc = Soc::new(cfg.clone());
    w.install(&mut soc).expect("workload installs");
    let pcp = w.pcp().map(|p| {
        let entries: Vec<u16> = p.channels.iter().map(|&(_, e)| e).collect();
        (p.words.clone(), p.base, entries)
    });
    let masters = match &pcp {
        Some((words, base, entries)) => MasterRanges::derive(
            &soc.fabric.dma,
            Some((words.as_slice(), *base, entries.as_slice())),
        ),
        None => MasterRanges::derive(&soc.fabric.dma, None),
    };
    let mut json = analyze(&w.image, &cfg, &masters, &w.name).to_json();
    json.push('\n');
    json
}

#[test]
fn engine_reports_match_committed_goldens() {
    let stock = engine_control(&EngineParams::default());
    check_golden("analyze_engine_stock.json", &report(&stock));

    let optimized = engine_control(&EngineParams {
        tables_in_dspr: true,
        can_on_pcp: true,
        isrs_in_pspr: true,
        ..EngineParams::default()
    });
    check_golden("analyze_engine_optimized.json", &report(&optimized));
}
