//! End-to-end methodology checks: the fast paper experiments must pass
//! under `cargo test`; the full suite (`run_all`) is exercised by the
//! `experiments` binary and kept behind `--ignored` here because the
//! architecture sweeps replay many full workloads.

#[test]
fn e2_ipc_timeline_passes() {
    let r = audo_bench::e2_ipc_timeline().expect("runs");
    assert!(r.passed(), "{}", r.render());
}

#[test]
fn e4_cascade_passes() {
    let r = audo_bench::e4_cascade().expect("runs");
    assert!(r.passed(), "{}", r.render());
}

#[test]
fn e5_bandwidth_passes() {
    let r = audo_bench::e5_bandwidth().expect("runs");
    assert!(r.passed(), "{}", r.render());
}

#[test]
fn e1_platform_passes() {
    let r = audo_bench::e1_platform().expect("runs");
    assert!(r.passed(), "{}", r.render());
}

#[test]
fn e3_parallel_rates_passes() {
    let r = audo_bench::e3_parallel_rates().expect("runs");
    assert!(r.passed(), "{}", r.render());
}

#[test]
fn e8_partitioning_passes() {
    let r = audo_bench::e8_partitioning().expect("runs");
    assert!(r.passed(), "{}", r.render());
}

#[test]
fn e9_trace_passes() {
    let r = audo_bench::e9_trace().expect("runs");
    assert!(r.passed(), "{}", r.render());
}

#[test]
fn e11_parallel_vs_serial_passes() {
    let r = audo_bench::e11_parallel_vs_serial().expect("runs");
    assert!(r.passed(), "{}", r.render());
}

/// The replay-heavy experiments (E6/E7/E10/E12); run with
/// `cargo test -- --ignored` (ideally `--release`).
#[test]
#[ignore = "replays many full workloads; run explicitly (release build recommended)"]
fn heavy_experiments_pass() {
    for r in [
        audo_bench::e6_arch_sweep().expect("E6 runs"),
        audo_bench::e7_gain_cost().expect("E7 runs"),
        audo_bench::e10_calibration().expect("E10 runs"),
        audo_bench::e12_fmodel().expect("E12 runs"),
    ] {
        assert!(r.passed(), "{}", r.render());
    }
}
