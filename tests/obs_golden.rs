//! Golden-file check of the observability exports: a fixed seeded workload
//! must render the exact committed Chrome-trace, metrics-snapshot, and
//! flamegraph bytes. Because every timestamp is a simulated cycle, the
//! goldens are machine-independent; they change only when target timing,
//! instrumentation points, or an exporter format genuinely change.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! OBS_GOLDEN_REGEN=1 cargo test --test obs_golden
//! ```
//!
//! and commit the updated files under `tests/golden/` with an explanation.

use audo_ed::{EdConfig, EmulationDevice};
use audo_platform::config::SocConfig;
use audo_profiler::reconstruct::reconstruct_flow;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_workloads::engine::{engine_control, EngineParams};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("OBS_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); see file header", path.display()));
    assert!(
        expected == actual,
        "{name} diverged from the committed golden. If the change is \
         intentional, regenerate with OBS_GOLDEN_REGEN=1 cargo test --test \
         obs_golden and commit the diff."
    );
}

#[test]
fn seeded_session_matches_committed_goldens() {
    let p = EngineParams {
        rpm: 6_000,
        target_teeth: 5,
        target_bg_passes: 3,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
    w.install_ed(&mut ed).unwrap();
    let spec = ProfileSpec::new().with_program_trace().with_sync_every(16);
    let out = profile(
        &mut ed,
        &spec,
        &SessionOptions {
            max_cycles: w.max_cycles,
            observe: true,
            ..SessionOptions::default()
        },
    )
    .unwrap();
    let rec = reconstruct_flow(&w.image, &out.messages).unwrap();

    check_golden(
        "session_trace.json",
        &audo_obs::chrome::trace_json(&out.obs, "audo session", &[(0, String::from("session"))]),
    );
    check_golden(
        "session_metrics.txt",
        &audo_obs::metrics_text::render(&out.obs, "audo_"),
    );
    check_golden("session_flame.txt", &rec.folded.render());
}
