//! Deterministic replays of the program named by the committed proptest
//! regression seed for `golden_equivalence.rs`:
//!
//! ```text
//! blocks = [Loop { count: 1, body: [IfElse { reg: 0,
//!     then_b: ["st.h d0, [a3+0]"], else_b: ["add d0, d0, d0"] }] }]
//! ```
//!
//! i.e. a sub-word store on one arm of a conditional inside a hardware
//! loop. Pinned here as plain unit tests — with the store's effect read
//! back into a register so it is architecturally visible — plus the
//! mirrored variants the shrink points at: `st.h`/`st.b` on both the
//! taken and the not-taken path, across all three execution models.

use audo_common::{Addr, Cycle, EventSink, SourceId};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_tricore::asm::assemble;
use audo_tricore::bus::TestBus;
use audo_tricore::iss::Iss;
use audo_tricore::pipeline::{Core, CoreConfig};

fn run_iss(src: &str) -> [u32; 16] {
    let image = assemble(src).expect("assembles");
    let mut iss = Iss::new();
    iss.map_region(Addr(0x8000_0000), 0x10000);
    iss.map_region(Addr(0xD000_0000), 0x10000);
    iss.init_csa(Addr(0xD000_8000), 32).unwrap();
    iss.load(&image).unwrap();
    iss.run(1_000_000).expect("golden run completes").state.d
}

fn run_pipeline(src: &str) -> [u32; 16] {
    let image = assemble(src).expect("assembles");
    let mut bus = TestBus::new();
    bus.mem.add_region(Addr(0x8000_0000), 0x10000);
    bus.mem.add_region(Addr(0xD000_0000), 0x10000);
    image.load_into(&mut bus.mem).unwrap();
    let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
    core.arch_mut().fcx =
        audo_tricore::arch::init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
    let mut sink = EventSink::disabled();
    let mut cycle = 0u64;
    while !core.is_halted() {
        core.step(Cycle(cycle), &mut bus, None, &mut sink)
            .expect("no fault");
        cycle += 1;
        assert!(cycle < 2_000_000, "pipeline did not halt");
    }
    core.arch().d
}

fn run_soc(src: &str) -> [u32; 16] {
    let image = assemble(src).expect("assembles");
    let mut soc = Soc::new(SocConfig::default());
    soc.load_image(&image).unwrap();
    soc.run_to_halt(5_000_000).expect("soc run completes");
    soc.tricore.arch().d
}

fn assert_three_models_agree(src: &str) -> [u32; 16] {
    let iss = run_iss(src);
    let pipe = run_pipeline(src);
    assert_eq!(iss, pipe, "ISS vs pipeline data regs\n{src}");
    let soc = run_soc(src);
    assert_eq!(iss, soc, "ISS vs SoC data regs\n{src}");
    iss
}

/// The seed program exactly as `structured_program` emits it, with a
/// load-back appended so the stored half-word becomes register-visible.
/// `jz d0` falls through when d0 != 0, so with `d0 = 3` the `st.h` arm
/// executes — this is the store path the shrink names.
#[test]
fn seed_loop_ifelse_sth_store_path() {
    let src = "
        .org 0x80000000
    _start:
        la a2, 0xD0000100
        la a3, 0xD0000200
        la sp, 0xD0004000
        movi d0, 3
        movi d1, -7
        movi d2, 11
        movi d3, 127
        movi d4, -1
        movi d5, 9
        movi d6, 0
        movi d7, 5
        movi d15, 1
        mov.a a5, d15
    L0:
        jz d0, L1
        st.h d0, [a3+0]
        j L2
    L1:
        add d0, d0, d0
    L2:
        loop a5, L0
        ld.hu d1, [a3+0]
        halt
    leaf_a:
        addi d6, d6, 1
        xor d5, d5, d6
        ret
    leaf_b:
        add d5, d5, d7
        ret
    ";
    let d = assert_three_models_agree(src);
    // d0 = 3, nonzero → fall through to the store arm; one iteration
    // (`loop` with count 1 runs the body once). d1 reads the store back.
    assert_eq!(d[0], 3);
    assert_eq!(d[1], 3, "stored half-word reads back");
}

/// Same seed shape with `d0 = 0` at the branch: iteration one takes the
/// `jz` (add) arm, iteration two falls through to `st.h`; the loaded-back
/// value pins the store after a conditional flip mid-loop.
#[test]
fn seed_loop_ifelse_sth_both_paths_across_iterations() {
    let src = "
        .org 0x80000000
    _start:
        la a3, 0xD0000200
        movi d0, 0
        movi d15, 2
        mov.a a5, d15
    L0:
        jz d0, L1
        st.h d0, [a3+0]
        j L2
    L1:
        add d0, d0, d0
        addi d0, d0, 5
    L2:
        loop a5, L0
        ld.hu d1, [a3+0]
        halt
    ";
    let d = assert_three_models_agree(src);
    // Iter 1: d0 == 0 → jz arm: d0 = 5. Iter 2: d0 != 0 → st.h 5.
    assert_eq!(d[0], 5);
    assert_eq!(d[1], 5, "stored half-word reads back");
}

/// Every sub-word store/load width on BOTH conditional paths, on all
/// three models: st.h on taken, st.b on not-taken, with sign- and
/// zero-extending loads, inside the same counted-loop skeleton.
#[test]
fn subword_stores_on_both_paths_all_widths() {
    for (taken, store, load, val, want) in [
        // (branch reg zero → jz taken, store insn, load insn, stored value, loaded-back)
        (
            true,
            "st.h d2, [a3+0]",
            "ld.hu d4, [a3+0]",
            0x0001_ABCDu32,
            0xABCD,
        ),
        (
            false,
            "st.h d2, [a3+2]",
            "ld.h d4, [a3+2]",
            0x0000_8001,
            0xFFFF_8001,
        ),
        (
            true,
            "st.b d2, [a3+1]",
            "ld.bu d4, [a3+1]",
            0x0000_01FE,
            0xFE,
        ),
        (
            false,
            "st.b d2, [a3+3]",
            "ld.b d4, [a3+3]",
            0x0000_0080,
            0xFFFF_FF80,
        ),
    ] {
        let d0 = u32::from(!taken); // jz d0 takes the branch when d0 == 0
        let src = format!(
            "
        .org 0x80000000
    _start:
        la a3, 0xD0000200
        movi d0, {d0}
        li d2, {val}
        movi d3, 0
        movi d15, 2
        mov.a a5, d15
    L0:
        jz d0, L1
        {not_taken_insn}
        j L2
    L1:
        {taken_insn}
    L2:
        addi d3, d3, 1
        loop a5, L0
        {load}
        halt
    ",
            taken_insn = if taken { store } else { "add d5, d5, d5" },
            not_taken_insn = if taken { "add d5, d5, d5" } else { store },
        );
        let d = assert_three_models_agree(&src);
        assert_eq!(d[4], want, "loaded-back value for {store:?} / {load:?}");
        assert_eq!(d[3], 2, "loop count 2 runs the body twice");
    }
}

/// Byte stores at every offset within a word must not disturb their
/// neighbours — the classic sub-word read-modify-write hazard, checked
/// across all three memory systems.
#[test]
fn byte_stores_preserve_neighbouring_bytes() {
    let src = "
        .org 0x80000000
    _start:
        la a3, 0xD0000200
        li d0, 0x11223344
        st.w d0, [a3+0]
        movi d1, 0xAA
        st.b d1, [a3+1]
        movi d2, 0xBB
        st.b d2, [a3+2]
        ld.w d3, [a3+0]
        halt
    ";
    let d = assert_three_models_agree(src);
    // Little-endian word 0x11223344 with byte1 ← AA, byte2 ← BB.
    assert_eq!(d[3], 0x11BB_AA44);
}
