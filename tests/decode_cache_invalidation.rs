//! Decode-cache invalidation and fast-path observability tests.
//!
//! The ISS basic-block fast path (`audo_tricore::decode_cache`) must be
//! invisible: identical architectural results, identical event stream,
//! identical MCDS trace bytes — including when code memory is written
//! under the cache's feet. Three scenarios are load-bearing for the
//! paper's calibration story and are pinned here explicitly:
//!
//! 1. a **self-modifying store** into the currently executing block,
//! 2. a **calibration-overlay swap** applied mid-run between `WAIT`s,
//! 3. the pinned `st.h`/`st.b` seed programs from `seed_regressions.rs`,
//!    replayed cache-on vs. cache-off.

use audo_common::{Addr, Cycle, EventRecord, SourceId};
use audo_mcds::select::{EventClass, EventSelector};
use audo_mcds::{Basis, Mcds, RateProbe};
use audo_tricore::asm::assemble;
use audo_tricore::iss::{Iss, IssRun, RunStop};

fn prepared_iss(src: &str, fast: bool) -> Iss {
    let image = assemble(src).expect("assembles");
    let mut iss = Iss::new();
    iss.map_region(Addr(0x8000_0000), 0x10000);
    iss.map_region(Addr(0xD000_0000), 0x10000);
    iss.init_csa(Addr(0xD000_8000), 32).unwrap();
    iss.load(&image).unwrap();
    iss.set_fast_path(fast);
    iss.set_observation(true);
    iss
}

fn run_both_ways(src: &str) -> (IssRun, IssRun) {
    let slow = prepared_iss(src, false).run(1_000_000).expect("slow run");
    let fast = prepared_iss(src, true).run(1_000_000).expect("fast run");
    (slow, fast)
}

fn assert_identical(slow: &IssRun, fast: &IssRun, ctx: &str) {
    assert_eq!(slow.state, fast.state, "arch state: {ctx}");
    assert_eq!(slow.instr_count, fast.instr_count, "instr count: {ctx}");
    assert_eq!(slow.debug_markers, fast.debug_markers, "markers: {ctx}");
    assert_eq!(slow.events, fast.events, "event stream: {ctx}");
}

/// Assembles a single instruction and returns its encoding bytes.
fn encoding_of(line: &str) -> Vec<u8> {
    let img = assemble(&format!(".org 0x80001000\n    {line}\n")).unwrap();
    img.bytes_at(Addr(0x8000_1000), img.size()).unwrap()
}

/// Emits assembly that stores `enc` (a 2- or 4-byte instruction encoding)
/// over the code at the address held in `a2`, via halfword stores (every
/// instruction address is 2-aligned, so `st.h` is always legal).
fn emit_patch_stores(enc: &[u8]) -> String {
    let lo = u16::from_le_bytes([enc[0], enc[1]]);
    let mut s = format!("    li d14, {lo}\n    st.h d14, [a2+0]\n");
    if enc.len() == 4 {
        let hi = u16::from_le_bytes([enc[2], enc[3]]);
        s.push_str(&format!("    li d14, {hi}\n    st.h d14, [a2+2]\n"));
    }
    s
}

/// A store rewrites an instruction *later in the same basic block*: the
/// fast path must notice the code-region generation bump mid-block and
/// fall back to a fresh decode, exactly like re-fetching every step.
#[test]
fn self_modifying_store_within_current_block() {
    let original = encoding_of("movi d1, 11");
    let patched = encoding_of("movi d1, 99");
    assert_eq!(original.len(), patched.len(), "same encoding format");
    let src = format!(
        "
        .org 0x80000000
    _start:
        la a2, victim
{patch}
    victim:
        movi d1, 11
        halt
    ",
        patch = emit_patch_stores(&patched),
    );
    let (slow, fast) = run_both_ways(&src);
    assert_eq!(slow.state.d[1], 99, "patched instruction executed");
    assert_identical(&slow, &fast, "self-modifying store, same block");
}

/// A store rewrites an instruction in an **already cached** block (the
/// loop body executed once before the patch lands): the stale block must
/// be invalidated on re-entry, not replayed.
#[test]
fn self_modifying_store_invalidates_cached_block() {
    let patched = encoding_of("movi d1, 99");
    let src = format!(
        "
        .org 0x80000000
    _start:
        la a2, victim
        movi d3, 0
        movi d15, 2
        mov.a a5, d15
    L0:
    victim:
        movi d1, 11
        add d3, d3, d1
{patch}
        loop a5, L0
        halt
    ",
        patch = emit_patch_stores(&patched),
    );
    let slow = prepared_iss(&src, false).run(1_000_000).expect("slow run");
    let mut fast_iss = prepared_iss(&src, true);
    assert_eq!(fast_iss.run_resumable(1_000_000), Ok(RunStop::Halted));
    let stats = fast_iss.cache_stats().unwrap();
    assert!(
        stats.invalidations >= 1,
        "the patched loop body must invalidate: {stats:?}"
    );
    // Pass 1 adds the original 11, pass 2 the patched 99.
    assert_eq!(slow.state.d[3], 110);
    assert_eq!(slow.state.d, fast_iss.state().d, "data regs");
    assert_eq!(slow.events, fast_iss.events(), "event stream");
}

/// Calibration-overlay swap mid-run: the program yields with `WAIT`
/// between passes; the host patches an alternative "calibration" value
/// (here: an immediate in code, the worst case for a decode cache) over
/// flash with [`audo_tricore::Image::overlay_into`] and resumes.
#[test]
fn overlay_swap_between_waits_takes_effect() {
    let src = "
        .org 0x80000000
    _start:
        movi d3, 0
        movi d15, 2
        mov.a a5, d15
    L0:
    hook:
        movi d1, 11
        add d3, d3, d1
        wait
        loop a5, L0
        halt
    ";
    let run = |fast: bool| {
        let mut iss = prepared_iss(src, fast);
        let hook = assemble(src).unwrap().symbol("hook").unwrap();
        // Pass 1 runs the original calibration (d1 = 11), then waits.
        assert_eq!(iss.run_resumable(1_000_000), Ok(RunStop::Waited));
        assert_eq!(iss.state().d[3], 11);
        // Swap the overlay while the core waits.
        let overlay = assemble(&format!(".org {:#x}\n    movi d1, 22\n", hook.0)).unwrap();
        let written = overlay.overlay_into(iss.mem_mut(), hook, 4).unwrap();
        assert!(written > 0, "overlay window covered the hook");
        // Pass 2 must see the swapped value on both paths.
        assert_eq!(iss.run_resumable(1_000_000), Ok(RunStop::Waited));
        assert_eq!(iss.state().d[3], 33, "11 + swapped 22 (fast={fast})");
        assert_eq!(iss.run_resumable(1_000_000), Ok(RunStop::Halted));
        (iss.state().clone(), iss.events().to_vec())
    };
    let (slow_state, slow_events) = run(false);
    let (fast_state, fast_events) = run(true);
    assert_eq!(slow_state, fast_state, "overlay swap arch state");
    assert_eq!(slow_events, fast_events, "overlay swap event stream");
}

/// The committed proptest regression seeds from `tests/seed_regressions.rs`
/// (sub-word stores on conditional arms inside hardware loops), replayed
/// cache-on vs. cache-off. The sources are duplicated verbatim from that
/// file — integration test binaries cannot import from each other.
#[test]
fn pinned_seed_programs_agree_cache_on_vs_off() {
    let seeds: Vec<String> = vec![
        "
        .org 0x80000000
    _start:
        la a2, 0xD0000100
        la a3, 0xD0000200
        la sp, 0xD0004000
        movi d0, 3
        movi d1, -7
        movi d2, 11
        movi d3, 127
        movi d4, -1
        movi d5, 9
        movi d6, 0
        movi d7, 5
        movi d15, 1
        mov.a a5, d15
    L0:
        jz d0, L1
        st.h d0, [a3+0]
        j L2
    L1:
        add d0, d0, d0
    L2:
        loop a5, L0
        ld.hu d1, [a3+0]
        halt
    leaf_a:
        addi d6, d6, 1
        xor d5, d5, d6
        ret
    leaf_b:
        add d5, d5, d7
        ret
    "
        .to_string(),
        "
        .org 0x80000000
    _start:
        la a3, 0xD0000200
        movi d0, 0
        movi d15, 2
        mov.a a5, d15
    L0:
        jz d0, L1
        st.h d0, [a3+0]
        j L2
    L1:
        add d0, d0, d0
        addi d0, d0, 5
    L2:
        loop a5, L0
        ld.hu d1, [a3+0]
        halt
    "
        .to_string(),
    ];
    // The st.h/st.b width matrix from `subword_stores_on_both_paths_all_widths`.
    let widths = [
        (true, "st.h d2, [a3+0]", "ld.hu d4, [a3+0]", 0x0001_ABCDu32),
        (false, "st.h d2, [a3+2]", "ld.h d4, [a3+2]", 0x0000_8001),
        (true, "st.b d2, [a3+1]", "ld.bu d4, [a3+1]", 0x0000_01FE),
        (false, "st.b d2, [a3+3]", "ld.b d4, [a3+3]", 0x0000_0080),
    ];
    let mut all = seeds;
    for (taken, store, load, val) in widths {
        let d0 = u32::from(!taken);
        all.push(format!(
            "
        .org 0x80000000
    _start:
        la a3, 0xD0000200
        movi d0, {d0}
        li d2, {val}
        movi d3, 0
        movi d15, 2
        mov.a a5, d15
    L0:
        jz d0, L1
        {not_taken_insn}
        j L2
    L1:
        {taken_insn}
    L2:
        addi d3, d3, 1
        loop a5, L0
        {load}
        halt
    ",
            taken_insn = if taken { store } else { "add d5, d5, d5" },
            not_taken_insn = if taken { "add d5, d5, d5" } else { store },
        ));
    }
    for src in &all {
        let (slow, fast) = run_both_ways(src);
        assert_identical(&slow, &fast, src);
    }
}

/// Encodes an ISS event stream through a fully armed MCDS (program trace
/// plus an instruction-rate probe) and returns the raw trace bytes.
fn mcds_trace_bytes(events: &[EventRecord]) -> Vec<u8> {
    let mut mcds = Mcds::builder()
        .program_trace()
        .probe(RateProbe {
            event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
            basis: Basis::Cycles(4),
            group: None,
        })
        .build()
        .unwrap();
    let mut out = Vec::new();
    let last = events.last().map_or(0, |e| e.cycle.0);
    let mut i = 0;
    for cy in 0..=last {
        let start = i;
        while i < events.len() && events[i].cycle.0 == cy {
            i += 1;
        }
        mcds.observe(Cycle(cy), &events[start..i], &[], &mut out);
    }
    out
}

/// The acceptance bar from the issue: MCDS trace output is **byte
/// identical** with the fast path on vs. off, on a branchy program that
/// exercises flow messages, and on a self-modifying one that exercises
/// invalidation.
#[test]
fn mcds_trace_bytes_identical_fast_on_vs_off() {
    let branchy = "
        .org 0x80000000
    _start:
        la sp, 0xD0004000
        movi d0, 0
        movi d1, 9
    outer:
        call bump
        addi d1, d1, -1
        jnz d1, outer
        halt
    bump:
        addi d0, d0, 3
        ret
    "
    .to_string();
    let patched_enc = encoding_of("movi d1, 99");
    let self_mod = format!(
        "
        .org 0x80000000
    _start:
        la a2, victim
{patch}
    victim:
        movi d1, 11
        movi d9, 3
    spin:
        addi d9, d9, -1
        jnz d9, spin
        halt
    ",
        patch = emit_patch_stores(&patched_enc),
    );
    for src in [branchy, self_mod] {
        let (slow, fast) = run_both_ways(&src);
        assert_identical(&slow, &fast, &src);
        let slow_bytes = mcds_trace_bytes(&slow.events);
        let fast_bytes = mcds_trace_bytes(&fast.events);
        assert!(!slow_bytes.is_empty(), "trace produced bytes\n{src}");
        assert_eq!(slow_bytes, fast_bytes, "MCDS trace bytes\n{src}");
    }
}
