//! Determinism guarantees: identical configurations and workloads must
//! produce bit-identical results — the property that makes replay-based
//! option evaluation (E6/E7) and regression-style profiling meaningful.

use audo_ed::{EdConfig, EmulationDevice};
use audo_platform::config::SocConfig;
use audo_profiler::metrics::Metric;
use audo_profiler::session::{profile, SessionOptions};
use audo_profiler::spec::ProfileSpec;
use audo_workloads::engine::{engine_control, EngineParams};

#[test]
fn full_sessions_are_bit_identical() {
    let run = || {
        let p = EngineParams {
            rpm: 6000,
            target_teeth: 15,
            ..EngineParams::default()
        };
        let w = engine_control(&p);
        let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
        w.install_ed(&mut ed).unwrap();
        let spec = ProfileSpec::new()
            .metric(Metric::Ipc, 1000)
            .metric(Metric::DcacheMissPerInstr, 1000)
            .with_program_trace();
        let out = profile(
            &mut ed,
            &spec,
            &SessionOptions {
                max_cycles: w.max_cycles,
                ..SessionOptions::default()
            },
        )
        .unwrap();
        (
            out.cycles,
            out.produced_bytes,
            out.timeline.to_csv(),
            ed.soc.tricore.retired_total(),
            ed.soc.tricore.arch().d,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "cycle counts");
    assert_eq!(a.1, b.1, "trace bytes");
    assert_eq!(a.2, b.2, "decoded timelines");
    assert_eq!(a.3, b.3, "retired instructions");
    assert_eq!(a.4, b.4, "architectural state");
}

#[test]
fn observation_does_not_change_behaviour_under_any_spec() {
    // Beyond the basic non-intrusiveness check: wildly different MCDS
    // programming must never change target timing or results.
    let p = EngineParams {
        rpm: 12_000,
        target_teeth: 10,
        target_bg_passes: 6,
        ..EngineParams::default()
    };
    let w = engine_control(&p);
    let baseline = {
        let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
        w.install_ed(&mut ed).unwrap();
        let cycles = ed.run(w.max_cycles, |_| {}).unwrap();
        (cycles, ed.soc.tricore.arch().d)
    };
    for spec in [
        ProfileSpec::new().metric(Metric::Ipc, 50),
        ProfileSpec::new()
            .with_program_trace()
            .with_pcp_trace()
            .with_bus_trace(None),
        ProfileSpec::new().metric(Metric::Ipc, 100).cascade(
            Metric::Ipc,
            0.9,
            vec![audo_profiler::spec::MetricRequest {
                metric: Metric::DcacheMissPerInstr,
                window: 20,
            }],
        ),
    ] {
        let mut ed = EmulationDevice::new(SocConfig::default(), EdConfig::default());
        w.install_ed(&mut ed).unwrap();
        let out = profile(
            &mut ed,
            &spec,
            &SessionOptions {
                max_cycles: w.max_cycles,
                ..SessionOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            out.cycles, baseline.0,
            "cycle count must not depend on observation"
        );
        assert_eq!(
            ed.soc.tricore.arch().d,
            baseline.1,
            "results must not depend on observation"
        );
    }
}
