//! Block-profiler determinism suite.
//!
//! The profiler's contract has three legs, each pinned here:
//!
//! 1. **Worker-count byte-identity** — a profile report is a pure
//!    function of the workload and tier; running the same workload set
//!    through the bench scheduler at `--jobs 1` and `--jobs 4` must
//!    produce byte-identical artifacts (table, JSON document, folded
//!    stacks).
//! 2. **Exact cycle attribution** — on the cycle-level pipeline, the sum
//!    of per-block cycles plus the unattributed bucket equals the
//!    pipeline's own `retire + Σ stalls == cycles` totals, per cause,
//!    with nothing lost and nothing double-counted.
//! 3. **Generation-stamped block identity** — self-modified code
//!    re-executes under a *new* block key (the region's write generation
//!    bumps), so stale and patched copies of the same addresses never
//!    pollute each other's counters.
//!
//! A committed golden pins the symbolized hot-block report for a seeded
//! engine workload. To refresh after an intentional change:
//!
//! ```text
//! PROFILE_GOLDEN_REGEN=1 cargo test --test profile_determinism
//! ```
//!
//! and commit the updated files under `tests/golden/`.

use audo_analyze::{cfg, symbols};
use audo_bench::run_jobs;
use audo_common::events::StallReason;
use audo_common::{Addr, Cycle, EventSink, SourceId};
use audo_obs::profile::{flame_stacks, render_hot_blocks, BlockProfile, ProfileDoc};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_tricore::arch::init_csa_list;
use audo_tricore::asm::assemble;
use audo_tricore::bus::TestBus;
use audo_tricore::{Core, CoreConfig, PipelineStats};
use audo_workloads::engine::{engine_control, EngineParams};
use audo_workloads::Workload;

/// A small, fully deterministic engine workload (same scale as the
/// observability goldens) with per-variant placement flags.
fn small_engine(tables_in_dspr: bool, isrs_in_pspr: bool) -> Workload {
    let p = EngineParams {
        rpm: 6_000,
        target_teeth: 5,
        target_bg_passes: 3,
        tables_in_dspr,
        isrs_in_pspr,
        ..EngineParams::default()
    };
    engine_control(&p)
}

/// Runs a workload on the full-SoC pipeline tier with block profiling on
/// and returns the profile next to the pipeline's own ground truth.
fn profile_on_soc(w: &Workload) -> (BlockProfile, PipelineStats, u64) {
    let mut soc = Soc::new(SocConfig::tc1797());
    w.install(&mut soc).expect("workload installs");
    soc.tricore.set_profile_observation(true);
    soc.run_to_halt(w.max_cycles).expect("workload completes");
    let profile = soc
        .tricore
        .block_profile()
        .cloned()
        .expect("profiling was enabled");
    let stats = *soc.tricore.stats();
    let retired = soc.tricore.retired_total();
    (profile, stats, retired)
}

/// Renders every deterministic artifact the profile CLI derives from one
/// workload — hot-block table, JSON document, folded stacks — as one
/// string, for byte comparison.
fn full_artifacts(w: &Workload) -> String {
    let (profile, stats, retired) = profile_on_soc(w);
    let soc_cfg = SocConfig::tc1797();
    let graph = cfg::recover(&w.image);
    let symbol_map = symbols::symbol_map(&graph, &soc_cfg);
    let calls = symbols::call_graph(&graph, &symbol_map);
    let stacks = flame_stacks(&profile, &symbol_map, &calls);
    let table = render_hot_blocks(&profile, &symbol_map, 10);
    let doc = ProfileDoc::new(
        &w.name,
        "pipeline",
        stats.retire_cycles + stats.stall_total(),
        retired,
        profile,
        &symbol_map,
    );
    format!("{table}\n{}\n{}", doc.to_json(), stacks.render())
}

#[test]
fn report_is_byte_identical_at_any_worker_count() {
    let specs: [(bool, bool); 3] = [(false, false), (true, false), (false, true)];
    let run = |jobs: usize| -> Vec<String> {
        run_jobs(specs.len(), jobs, |i| {
            let (tables, isrs) = specs[i];
            full_artifacts(&small_engine(tables, isrs))
        })
        .into_iter()
        .map(|j| j.output)
        .collect()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "--jobs must not leak into the artifacts");
    for s in &serial {
        assert!(s.contains("hot blocks"), "table rendered: {s}");
    }
}

#[test]
fn attribution_accounts_every_cycle_exactly() {
    let w = small_engine(false, false);
    let (profile, stats, retired) = profile_on_soc(&w);
    let cycles = stats.retire_cycles + stats.stall_total();

    // The machine check: Σ per-block cycles + unattributed == retire +
    // Σ stalls == cycles, recomputed from the raw buckets (not via the
    // profile's own total() helper).
    let mut sum_retire = profile.unattributed.retire_cycles;
    let mut sum_stall = [0u64; StallReason::COUNT];
    let mut sum_instrs = profile.unattributed.instructions;
    for (reason, slot) in StallReason::ALL.iter().zip(sum_stall.iter_mut()) {
        *slot += profile.unattributed.stall_cycles[reason.index()];
    }
    for c in profile.blocks.values() {
        sum_retire += c.retire_cycles;
        sum_instrs += c.instructions;
        for (reason, slot) in StallReason::ALL.iter().zip(sum_stall.iter_mut()) {
            *slot += c.stall_cycles[reason.index()];
        }
    }
    assert_eq!(sum_retire, stats.retire_cycles, "retire cycles balance");
    for reason in StallReason::ALL {
        assert_eq!(
            sum_stall[reason.index()],
            stats.stall_cycles[reason.index()],
            "stall cycles balance for {reason:?}"
        );
    }
    assert_eq!(
        sum_retire + sum_stall.iter().sum::<u64>(),
        cycles,
        "every cycle is attributed exactly once"
    );
    assert_eq!(sum_instrs, retired, "every retired instruction is counted");
    assert!(
        !profile.blocks.is_empty(),
        "the workload produced profiled blocks"
    );
}

/// Assembles a single instruction and returns its encoding bytes.
fn encoding_of(line: &str) -> Vec<u8> {
    let img = assemble(&format!(".org 0x80001000\n    {line}\n")).unwrap();
    img.bytes_at(Addr(0x8000_1000), img.size()).unwrap()
}

/// Emits assembly that stores `enc` (a 2- or 4-byte instruction encoding)
/// over the code at the address held in `a2`, via halfword stores.
fn emit_patch_stores(enc: &[u8]) -> String {
    let lo = u16::from_le_bytes([enc[0], enc[1]]);
    let mut s = format!("    li d14, {lo}\n    st.h d14, [a2+0]\n");
    if enc.len() == 4 {
        let hi = u16::from_le_bytes([enc[2], enc[3]]);
        s.push_str(&format!("    li d14, {hi}\n    st.h d14, [a2+2]\n"));
    }
    s
}

#[test]
fn smc_generation_bump_keeps_stale_blocks_distinct() {
    // The self-modifying loop from the pipeline-invalidation suite: pass
    // 1 executes the original `movi d1, 11`, a store patches it to
    // `movi d1, 99`, pass 2 executes the patched copy (d3 == 110).
    let patched = encoding_of("movi d1, 99");
    let src = format!(
        "
        .org 0x80000000
    _start:
        la a2, victim
        movi d3, 0
        movi d15, 2
        mov.a a5, d15
        j L0            ; force a block boundary at the loop head, so
                        ; every pass enters the body at the same offset
    L0:
    victim:
        movi d1, 11
        add d3, d3, d1
{patch}
        loop a5, L0
        halt
    ",
        patch = emit_patch_stores(&patched),
    );
    let image = assemble(&src).expect("assembles");
    let mut bus = TestBus::new();
    bus.mem.add_region(Addr(0x8000_0000), 0x1_0000);
    bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
    image.load_into(&mut bus.mem).unwrap();
    let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
    core.set_fast_path(true);
    core.set_profile_observation(true);
    core.arch_mut().fcx = init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
    let mut sink = EventSink::new();
    let mut cyc = 0u64;
    while !core.is_halted() {
        assert!(cyc < 1_000_000, "program did not halt");
        core.step(Cycle(cyc), &mut bus, None, &mut sink)
            .expect("no fault");
        cyc += 1;
    }
    assert_eq!(core.arch().d[3], 110, "patched loop body executed");

    let profile = core.block_profile().cloned().expect("profiling was on");
    // The loop body must appear under at least two distinct generations
    // of the same (region, offset): the pre-patch copy and the patched
    // one, each with its own execution count.
    let mut generations: std::collections::BTreeMap<(u32, u32), Vec<u64>> =
        std::collections::BTreeMap::new();
    for (key, counts) in &profile.blocks {
        if counts.executions > 0 {
            generations
                .entry((key.region, key.offset))
                .or_default()
                .push(key.generation);
        }
    }
    let multi: Vec<_> = generations.values().filter(|g| g.len() >= 2).collect();
    assert!(
        !multi.is_empty(),
        "self-modified code must profile under distinct generations: {:?}",
        profile.blocks.keys().collect::<Vec<_>>()
    );
    // And the profile still balances: the pipeline's stall accounting
    // invariant survives invalidation traffic.
    let stats = core.stats();
    assert_eq!(
        profile.total().cycles(),
        stats.retire_cycles + stats.stall_total(),
        "attribution stays exact across the generation bump"
    );
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PROFILE_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); see file header", path.display()));
    assert!(
        expected == actual,
        "{name} diverged from the committed golden. If the change is \
         intentional, regenerate with PROFILE_GOLDEN_REGEN=1 cargo test \
         --test profile_determinism and commit the diff."
    );
}

#[test]
fn hot_block_report_matches_committed_golden() {
    let w = small_engine(false, false);
    let (profile, stats, retired) = profile_on_soc(&w);
    let soc_cfg = SocConfig::tc1797();
    let graph = cfg::recover(&w.image);
    let symbol_map = symbols::symbol_map(&graph, &soc_cfg);
    check_golden(
        "profile_engine_hot.txt",
        &render_hot_blocks(&profile, &symbol_map, 10),
    );
    check_golden(
        "profile_engine_doc.json",
        &ProfileDoc::new(
            &w.name,
            "pipeline",
            stats.retire_cycles + stats.stall_total(),
            retired,
            profile,
            &symbol_map,
        )
        .to_json(),
    );
}
