//! Decoder-coverage report over the checked-in workload corpus.
//!
//! Runs every literate corpus program through the differential tier
//! checker ([`audo_fuzz::check_image`]) and asserts:
//!
//! 1. no corpus program diverges between tiers or hits a guest fault —
//!    the checked-in corpus is the always-green baseline the fuzzer
//!    mutates from, so a red program here means a tier bug (or a broken
//!    corpus edit), and
//! 2. the union of golden-model opcode coverage stays at or above the
//!    pinned floor, printing the uncovered mnemonics so a regression is
//!    actionable from the test log alone.

use audo_asm::{default_corpus_dir, load_corpus};
use audo_fuzz::{check_image, coverage_summary, CheckOptions};
use audo_tricore::opcodes::OPCODE_SPACE;

/// Opcode slots the corpus must exercise, out of the 87 assigned ones.
/// 86 is every slot the assembler can emit: the 32-bit `ret` encoding
/// (slot 68) decodes but is never produced by canonical assembly, so it
/// is unreachable from any corpus program by construction.
const COVERAGE_FLOOR: usize = 86;

#[test]
fn corpus_covers_the_decoder_and_stays_divergence_free() {
    let entries = load_corpus(&default_corpus_dir()).expect("corpus loads");
    assert!(entries.len() >= 10, "corpus shrank: {}", entries.len());

    let mut union = [0u64; OPCODE_SPACE];
    for e in &entries {
        let rep = check_image(&e.image, e.program.tiers, &CheckOptions::default());
        assert!(
            rep.divergence.is_none(),
            "{} diverged: {}",
            e.file_name,
            rep.divergence.unwrap()
        );
        assert!(!rep.errored, "{} hit a guest fault", e.file_name);
        assert!(rep.retired > 0, "{} retired nothing", e.file_name);
        for (slot, count) in union.iter_mut().zip(rep.coverage.iter()) {
            *slot += count;
        }
    }

    let (covered, sampleable, uncovered) = coverage_summary(&union);
    eprintln!("corpus decoder coverage: {covered}/{sampleable} opcode slots");
    if !uncovered.is_empty() {
        eprintln!("uncovered: {}", uncovered.join(", "));
    }
    assert!(
        covered >= COVERAGE_FLOOR,
        "corpus decoder coverage regressed: {covered} < floor {COVERAGE_FLOOR} \
         (uncovered: {})",
        uncovered.join(", ")
    );
}
