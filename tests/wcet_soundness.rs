//! Soundness contract of the static WCET/CSA analyzer.
//!
//! Every corpus program with a finite static WCET must run inside its
//! bound on both execution tiers: the functional ISS (retired
//! instructions can never exceed a cycle bound — every instruction
//! costs at least one cycle) and the cycle-level pipeline (measured
//! per-block and end-to-end cycles checked by
//! [`audo_analyze::wcet::check_profile`]). The fuzzer's `--check-wcet`
//! mode must render byte-identical reports at any worker count. The
//! engine workload's WCET/CSA report is pinned as a golden; refresh an
//! intentional change with:
//!
//! ```text
//! WCET_GOLDEN_REGEN=1 cargo test --test wcet_soundness
//! ```

use audo_analyze::{cfg, constprop, wcet};
use audo_asm::{default_corpus_dir, load_corpus, Tiers};
use audo_bench::run_jobs;
use audo_common::{Addr, Cycle, EventSink, SourceId};
use audo_fuzz::tiers::{CSA_BASE, CSA_FRAMES, REGIONS};
use audo_fuzz::{run_fuzz, serial_schedule, CaseResult, FuzzOptions};
use audo_tricore::arch::init_csa_list;
use audo_tricore::bus::TestBus;
use audo_tricore::iss::{Iss, RunStop};
use audo_tricore::pipeline::{CostModel, MemCosts};
use audo_tricore::{Core, CoreConfig, Image};

fn fuzz_tier_bus(image: &Image) -> Option<TestBus> {
    let mut bus = TestBus::new();
    for &(base, len) in REGIONS {
        bus.mem.add_region(Addr(base), len);
    }
    image.load_into(&mut bus.mem).ok()?;
    Some(bus)
}

fn analyze_image(image: &Image, name: &str) -> (cfg::Cfg, wcet::WcetReport, CostModel) {
    let g = cfg::recover(image);
    let sol = constprop::solve(&g);
    let model = CostModel::new(
        CoreConfig::default(),
        MemCosts::of_test_bus(&TestBus::new()),
    );
    let report = wcet::analyze_wcet(&g, &sol, &model, CSA_FRAMES, name);
    (g, report, model)
}

/// Retired instructions of a halted ISS run, `None` when the program
/// faults, waits, or exceeds the budget (no completed run to bound).
fn iss_retired(image: &Image, max_instrs: u64) -> Option<u64> {
    let mut iss = Iss::new();
    for &(base, len) in REGIONS {
        iss.map_region(Addr(base), len);
    }
    iss.init_csa(Addr(CSA_BASE), CSA_FRAMES).ok()?;
    iss.load(image).ok()?;
    iss.set_fast_path(true);
    match iss.run_resumable(max_instrs) {
        Ok(RunStop::Halted) => Some(iss.instr_count()),
        _ => None,
    }
}

/// Every corpus program with a finite static WCET measures inside its
/// bound on both tiers.
#[test]
fn corpus_measures_inside_finite_static_bounds_on_both_tiers() {
    let corpus = load_corpus(&default_corpus_dir()).expect("corpus loads");
    assert!(!corpus.is_empty(), "empty corpus proves nothing");
    let mut finite = 0usize;
    let mut pipeline_checked = 0usize;
    for e in &corpus {
        let (g, report, model) = analyze_image(&e.image, &e.file_name);
        let Some(w) = report.program_wcet.finite() else {
            continue;
        };
        finite += 1;

        // ISS tier: instructions retired can never exceed a cycle bound.
        if let Some(retired) = iss_retired(&e.image, e.program.max_instrs) {
            assert!(
                retired <= w + report.entry_overhead,
                "{}: ISS retired {retired} > static WCET {w}",
                e.file_name
            );
        }

        // Pipeline tier: exact per-block and end-to-end cycle check.
        if e.program.tiers != Tiers::All {
            continue;
        }
        let Some(mut bus) = fuzz_tier_bus(&e.image) else {
            continue;
        };
        let mut core = Core::new(CoreConfig::default(), e.image.entry(), SourceId::TRICORE);
        core.set_fast_path(true);
        core.set_profile_observation(true);
        let fcx = init_csa_list(&mut bus.mem, Addr(CSA_BASE), CSA_FRAMES).expect("CSA mapped");
        core.arch_mut().fcx = fcx;
        let stamps = wcet::code_stamps(&g, &bus);
        let mut sink = EventSink::new();
        sink.set_enabled(false);
        let max_cycles = e
            .program
            .max_instrs
            .saturating_mul(40)
            .saturating_add(10_000);
        let mut cyc = 0u64;
        let mut faulted = false;
        while !core.is_halted() && cyc < max_cycles {
            if core.step(Cycle(cyc), &mut bus, None, &mut sink).is_err() {
                faulted = true;
                break;
            }
            cyc += 1;
        }
        if faulted || !core.is_halted() {
            continue;
        }
        let profile = core.block_profile().cloned().expect("profiling was on");
        let stats = core.stats();
        let total = stats.retire_cycles + stats.stall_total();
        let check = wcet::check_profile(
            &g,
            &model,
            &report,
            &profile,
            &stamps,
            total,
            0,
            core.arch().csa_depth_peak,
        );
        assert!(
            check.sound(),
            "{}: {}",
            e.file_name,
            wcet::render_check(&e.file_name, &check)
        );
        assert!(check.checked_blocks > 0, "{}: nothing checked", e.file_name);
        pipeline_checked += 1;
    }
    assert!(finite > 0, "no corpus program has a finite WCET");
    assert!(
        pipeline_checked > 0,
        "no corpus program reached the pipeline check"
    );
}

/// The fuzz session report with the WCET check enabled is byte-identical
/// at any worker count, and clean on a healthy tree.
#[test]
fn check_wcet_fuzz_report_is_byte_identical_across_job_counts() {
    let opts = FuzzOptions {
        seed: 0x5CE7,
        iterations: 16,
        round: 8,
        corpus_dir: Some(default_corpus_dir()),
        check_wcet: true,
        ..FuzzOptions::default()
    };
    let serial = run_fuzz(&opts, serial_schedule).expect("serial session runs");
    let pooled = run_fuzz(&opts, |count, case| {
        run_jobs(count, 4, case)
            .into_iter()
            .map(|t| t.output)
            .collect::<Vec<CaseResult>>()
    })
    .expect("pooled session runs");
    assert_eq!(
        serial.render(),
        pooled.render(),
        "check-wcet report depends on worker count"
    );
    assert!(
        serial.divergences.is_empty(),
        "clean tree has WCET violations: {:#?}",
        serial.divergences
    );
}

/// The engine workload's WCET/CSA report is pinned byte-for-byte.
#[test]
fn engine_wcet_report_matches_golden() {
    use audo_platform::config::SocConfig;
    use audo_platform::soc::CSA_AREAS;
    use audo_workloads::engine::{engine_control, EngineParams};

    let w = engine_control(&EngineParams::default());
    let soc_cfg = SocConfig::tc1797();
    let g = cfg::recover(&w.image);
    let sol = constprop::solve(&g);
    let model = CostModel::new(soc_cfg.cpu.clone(), wcet::soc_mem_costs(&soc_cfg));
    let report = wcet::analyze_wcet(&g, &sol, &model, CSA_AREAS, &w.name);
    let actual = wcet::render_report(&report);

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wcet_engine.txt");
    if std::env::var_os("WCET_GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); see file header", path.display()));
    assert!(
        expected == actual,
        "engine WCET report diverged from the golden. If intentional, \
         regenerate with WCET_GOLDEN_REGEN=1 cargo test --test wcet_soundness:\n{actual}"
    );
}
