//! Differential fault-injection matrix for the framed DAP session layer.
//!
//! The contract under test ("never silently wrong"): whatever a faulty
//! link does to the frames — bit flips, drops, truncations, duplicates —
//! the trace stream a `DapSession` drain delivers is **byte-identical** to
//! the lossless-link drain, or the session explicitly flags truncation in
//! its stats and the delivered bytes are an exact prefix of the true
//! stream. Each matrix cell is deterministic (seeded fault schedule), so a
//! failure here reproduces exactly.

use audo_dap::session::{DapSession, SessionConfig};
use audo_dap::{DapConfig, FaultConfig};
use audo_ed::{EdConfig, EmulationDevice, TraceMode};
use audo_mcds::Mcds;
use audo_platform::config::SocConfig;
use audo_tricore::asm::assemble;

/// A program producing a few KiB of flow trace; the Linear 64 KiB region
/// holds the whole run, so the device itself loses nothing and stream
/// equality is decided by the link layer alone.
const TRACED_SRC: &str = "
    .org 0x80000000
_start:
    movi d0, 0
    li d1, 1500
head:
    addi d0, d0, 1
    jne d0, d1, head
    halt
";

fn halted_traced_ed() -> EmulationDevice {
    let image = assemble(TRACED_SRC).expect("assembles");
    let mut ed = EmulationDevice::new(
        SocConfig::default(),
        EdConfig {
            trace_bytes: 64 * 1024,
            trace_mode: TraceMode::Linear,
        },
    );
    ed.soc.load_image(&image).expect("loads");
    ed.program_mcds(Mcds::builder().program_trace().build().unwrap());
    ed.run(2_000_000, |_| {}).unwrap();
    assert_eq!(ed.trace.lost(), 0, "region sized for the whole run");
    ed
}

/// The pre-existing direct tool path: what a perfect link would download.
fn lossless_reference() -> Vec<u8> {
    let mut ed = halted_traced_ed();
    let level = ed.trace.level();
    u32::try_from(level)
        .ok()
        .and_then(|l| ed.drain_trace(l).ok())
        .expect("direct drain")
}

fn drain_via_session(faults: FaultConfig) -> (Vec<u8>, bool, audo_dap::DapSessionStats) {
    let mut ed = halted_traced_ed();
    let mut session = DapSession::new(DapConfig::default(), SessionConfig::default(), faults);
    let mut out = Vec::new();
    let complete = session.drain_all(&mut ed, &mut out);
    (out, complete, *session.stats())
}

fn assert_exact_or_flagged(reference: &[u8], rate: f64, seed: u64) {
    let (out, complete, stats) = drain_via_session(FaultConfig::uniform(rate, seed));
    if complete {
        assert_eq!(
            out, reference,
            "rate {rate} seed {seed}: complete drain must be byte-identical"
        );
        assert!(
            !stats.trace_truncated,
            "rate {rate} seed {seed}: complete drain must not flag truncation"
        );
    } else {
        assert!(
            stats.trace_truncated,
            "rate {rate} seed {seed}: incomplete drain must flag truncation"
        );
        assert!(
            reference.starts_with(&out),
            "rate {rate} seed {seed}: truncated drain must be an exact prefix"
        );
    }
}

/// Acceptance criterion: the lossless session path is byte-identical to
/// the pre-existing direct `drain_trace` tool path, with zero protocol
/// friction.
#[test]
fn lossless_session_drain_equals_direct_drain() {
    let reference = lossless_reference();
    assert!(!reference.is_empty(), "the program traces");
    let (out, complete, stats) = drain_via_session(FaultConfig::lossless());
    assert!(complete);
    assert_eq!(out, reference);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.crc_errors, 0);
    assert!(!stats.trace_truncated);
    assert_eq!(stats.trace_bytes_drained, reference.len() as u64);
}

/// The ISSUE's differential matrix: rates {0, 1e-3, 1e-2} × 3 pinned
/// seeds. Fast enough to run in the default test pass.
#[test]
fn fault_matrix_exact_or_reported() {
    let reference = lossless_reference();
    for rate in [0.0, 1e-3, 1e-2] {
        for seed in [11u64, 23, 47] {
            assert_exact_or_flagged(&reference, rate, seed);
        }
    }
}

/// At the matrix's worst rate (1e-2) the default retry budget must still
/// recover the stream *exactly* for all three pinned seeds — the 64-byte
/// trace chunks keep per-frame corruption survivable.
#[test]
fn one_percent_corruption_recovers_exactly_on_pinned_seeds() {
    let reference = lossless_reference();
    for seed in [11u64, 23, 47] {
        let (out, complete, stats) = drain_via_session(FaultConfig::uniform(1e-2, seed));
        assert!(complete, "seed {seed}: 1e-2 must be recoverable");
        assert_eq!(out, reference, "seed {seed}");
        assert!(stats.retries > 0, "seed {seed}: faults actually fired");
    }
}

/// Extended stress matrix (slow; run by `scripts/ci.sh` via
/// `--include-ignored`): harsher rates, more seeds, and skewed
/// single-mechanism fault mixes (duplicate-only, truncate-only,
/// drop-only), all held to the same exact-or-flagged contract.
#[test]
#[ignore = "slow stress matrix; ci.sh runs it via --include-ignored"]
fn extended_fault_matrix_stress() {
    let reference = lossless_reference();
    for rate in [3e-2, 5e-2, 1e-1] {
        for seed in 1u64..=6 {
            assert_exact_or_flagged(&reference, rate, seed);
        }
    }
    for seed in [5u64, 6, 7] {
        for cfg in [
            FaultConfig {
                duplicate: 0.4,
                ..FaultConfig::lossless()
            },
            FaultConfig {
                truncate: 0.2,
                ..FaultConfig::lossless()
            },
            FaultConfig {
                drop: 0.3,
                ..FaultConfig::lossless()
            },
        ] {
            let cfg = FaultConfig { seed, ..cfg };
            let (out, complete, stats) = drain_via_session(cfg.clone());
            if complete {
                assert_eq!(out, reference, "cfg {cfg:?}");
            } else {
                assert!(stats.trace_truncated, "cfg {cfg:?}");
                assert!(reference.starts_with(&out), "cfg {cfg:?}");
            }
        }
    }
}
