//! Cross-tier divergence sweep: the same program, four ways.
//!
//! Every pinned program runs through the **functional ISS** (per-step
//! refetch), the **ISS basic-block fast path**, the **cycle-level pipeline
//! uncached**, and the **pipeline with the predecoded fast path** — and
//! all four must agree on the architectural outcome: final register file
//! and retired-instruction count. The two ISS runs must additionally be
//! event-identical to each other, as must the two pipeline runs (events
//! across *tiers* differ by design — the pipeline emits stall and flow
//! timing the ISS has no notion of).
//!
//! Programs whose stores patch their own upcoming code are excluded here
//! on purpose: the pipeline's fetch buffer legitimately lets a just-
//! patched instruction execute stale (hardware prefetch), while the ISS
//! refetches every step. Those semantics are pinned one tier at a time in
//! `tests/decode_cache_invalidation.rs` and
//! `tests/pipeline_invalidation.rs` instead.
//!
//! The stock SoC workload variants (engine / transmission / chassis) run
//! interrupt-driven on the full platform, so they are swept pipeline
//! cached vs. uncached on the `Soc`, down to the rendered metrics
//! snapshot.

use audo_common::{Addr, Cycle, EventSink, SourceId};
use audo_obs::{metrics_text, Registry};
use audo_platform::config::SocConfig;
use audo_platform::Soc;
use audo_tricore::arch::init_csa_list;
use audo_tricore::bus::TestBus;
use audo_tricore::iss::{Iss, IssRun};
use audo_tricore::{Core, CoreConfig};
use audo_workloads::micro::{div_kernel, mac_kernel, random_mix, stream_copy};
use audo_workloads::{stock_workloads, Workload};

fn iss_run(w: &Workload, fast: bool) -> IssRun {
    let mut iss = Iss::new();
    iss.map_region(Addr(0x8000_0000), 0x4_0000);
    iss.map_region(Addr(0x9000_0000), 0x2_0000);
    iss.map_region(Addr(0xD000_0000), 0x2_0000);
    iss.init_csa(Addr(0xD000_8000), 64).unwrap();
    iss.load(&w.image).unwrap();
    iss.set_fast_path(fast);
    iss.set_observation(true);
    iss.run(10_000_000).expect("ISS run completes")
}

struct PipeOut {
    retired: u64,
    d: [u32; 16],
    a: [u32; 16],
    events: Vec<audo_common::EventRecord>,
}

fn pipeline_run(w: &Workload, fast: bool) -> PipeOut {
    let mut bus = TestBus::new();
    bus.mem.add_region(Addr(0x8000_0000), 0x4_0000);
    bus.mem.add_region(Addr(0x9000_0000), 0x2_0000);
    bus.mem.add_region(Addr(0xD000_0000), 0x2_0000);
    w.image.load_into(&mut bus.mem).unwrap();
    let mut core = Core::new(CoreConfig::default(), w.image.entry(), SourceId::TRICORE);
    core.set_fast_path(fast);
    core.arch_mut().fcx = init_csa_list(&mut bus.mem, Addr(0xD000_8000), 64).unwrap();
    let mut sink = EventSink::new();
    let mut events = Vec::new();
    let mut cyc = 0u64;
    while !core.is_halted() {
        assert!(
            cyc < w.max_cycles,
            "{} did not halt on the pipeline",
            w.name
        );
        core.step(Cycle(cyc), &mut bus, None, &mut sink)
            .expect("no fault");
        events.append(&mut sink.drain());
        cyc += 1;
    }
    PipeOut {
        retired: core.retired_total(),
        d: core.arch().d,
        a: core.arch().a,
        events,
    }
}

/// One program through all four tiers; every architectural observable must
/// line up.
fn sweep(w: &Workload) {
    let iss_slow = iss_run(w, false);
    let iss_fast = iss_run(w, true);
    let pipe_slow = pipeline_run(w, false);
    let pipe_fast = pipeline_run(w, true);

    // Within a tier: bit-for-bit, including events.
    assert_eq!(iss_slow.state, iss_fast.state, "{}: ISS arch state", w.name);
    assert_eq!(iss_slow.events, iss_fast.events, "{}: ISS events", w.name);
    assert_eq!(pipe_slow.d, pipe_fast.d, "{}: pipeline d regs", w.name);
    assert_eq!(pipe_slow.a, pipe_fast.a, "{}: pipeline a regs", w.name);
    assert_eq!(
        pipe_slow.events, pipe_fast.events,
        "{}: pipeline events",
        w.name
    );

    // Across tiers: the architectural contract.
    assert_eq!(
        iss_slow.state.d, pipe_slow.d,
        "{}: d regs ISS vs pipeline",
        w.name
    );
    assert_eq!(
        iss_slow.state.a, pipe_slow.a,
        "{}: a regs ISS vs pipeline",
        w.name
    );
    assert_eq!(
        iss_slow.instr_count, pipe_slow.retired,
        "{}: instruction count ISS vs pipeline retired",
        w.name
    );
}

#[test]
fn microbenchmarks_agree_across_all_tiers() {
    for w in [mac_kernel(500), stream_copy(300), div_kernel(200)] {
        sweep(&w);
    }
}

/// Pinned instruction-mix seeds: the same generator seeds forever, so a
/// future divergence bisects to a code change, not to workload drift.
#[test]
fn pinned_random_mix_seeds_agree_across_all_tiers() {
    for seed in [1, 2, 3, 7, 11, 0xDEAD_BEEF] {
        sweep(&random_mix(seed, 300, 20));
    }
}

/// Every literate corpus program through the fuzzer's differential
/// checker: functional ISS vs. fast path vs. both pipeline
/// configurations, plus the encoder/disassembler round-trip and MCDS
/// byte identity. Programs that rewrite their own code carry a
/// `tiers = iss` directive and are checked on the ISS tiers only —
/// the same exclusion as the hand-written sweeps above, but expressed
/// in the workload file instead of the test.
#[test]
fn literate_corpus_agrees_across_its_pinned_tiers() {
    let entries = audo_asm::load_corpus(&audo_asm::default_corpus_dir()).expect("corpus loads");
    assert!(entries.len() >= 10, "corpus shrank: {}", entries.len());
    for e in &entries {
        let rep = audo_fuzz::check_image(
            &e.image,
            e.program.tiers,
            &audo_fuzz::CheckOptions::default(),
        );
        assert!(
            rep.divergence.is_none(),
            "{}: {}",
            e.file_name,
            rep.divergence.unwrap()
        );
        assert!(!rep.errored, "{}: agreed guest fault", e.file_name);
    }
}

/// All stock SoC workload variants, pipeline cached vs. uncached on the
/// full platform: cycles, retired instructions, register file and the
/// rendered metrics snapshot (modulo the predecode cache's own counters)
/// must be byte-identical.
#[test]
#[ignore = "slow: three full SoC workloads, two runs each (CI runs with --include-ignored)"]
fn stock_workload_variants_identical_cached_vs_uncached() {
    for w in stock_workloads() {
        let run = |fast: bool| {
            let mut soc = Soc::new(SocConfig::default());
            soc.tricore.set_fast_path(fast);
            w.install(&mut soc).unwrap();
            let cycles = soc.run_to_halt(w.max_cycles).expect("halts");
            let mut reg = Registry::new();
            soc.export_obs(&mut reg);
            let metrics: String = metrics_text::render(&reg, "audo")
                .lines()
                .filter(|l| !l.contains("predecode"))
                .map(|l| format!("{l}\n"))
                .collect();
            (
                cycles,
                soc.tricore.retired_total(),
                soc.tricore.arch().d,
                metrics,
            )
        };
        let slow = run(false);
        let fast = run(true);
        assert_eq!(slow.0, fast.0, "{}: cycles", w.name);
        assert_eq!(slow.1, fast.1, "{}: retired", w.name);
        assert_eq!(slow.2, fast.2, "{}: d regs", w.name);
        assert_eq!(slow.3, fast.3, "{}: rendered metrics", w.name);
    }
}
