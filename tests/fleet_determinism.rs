//! Fleet determinism suite.
//!
//! The fleet's contract is that a run is a pure function of its options:
//! the same `(seed, sessions, fault rate, plant rate)` produce the same
//! report — byte-identical — at any worker count, and a vetoed unit can
//! be re-derived (and chased) from the fleet seed and its index alone.
//! These tests pin all three legs: worker-count byte-identity, exact
//! planted-unit detection, and the seed-derivation goldens the chasing
//! workflow depends on.

use audo_bench::run_jobs;
use audo_fleet::{cohort, derive, fold, plan, FleetOptions};

/// Runs a fleet with `jobs` workers and returns the JSON report.
fn run_fleet(opts: &FleetOptions, jobs: usize) -> (String, bool) {
    let plan = plan(opts.clone());
    let timed = run_jobs(plan.shard_count(), jobs, |s| plan.run_shard(s));
    let outcomes: Vec<_> = timed.into_iter().map(|j| j.output).collect();
    let report = fold(&plan, &outcomes).expect("no session may fail");
    (report.to_json(), report.is_clean())
}

#[test]
fn report_is_byte_identical_at_any_worker_count() {
    // Small but real: 24 sessions over 6 shards, with link faults on so
    // the seeded fault path is exercised, and a plant rate that catches
    // at least one unit (pinned below).
    let opts = FleetOptions {
        sessions: 24,
        seed: 0xA0D0,
        fault_rate: 0.002,
        miscalibrate: Some(8),
        shard_size: 4,
        ..FleetOptions::default()
    };
    let (serial, _) = run_fleet(&opts, 1);
    let (parallel, _) = run_fleet(&opts, 4);
    assert_eq!(serial, parallel, "--jobs must not leak into the report");
    // And the run is replayable: a second serial run is also identical.
    let (again, _) = run_fleet(&opts, 2);
    assert_eq!(serial, again);
}

#[test]
fn planted_units_are_exactly_the_derived_ones() {
    let opts = FleetOptions {
        sessions: 12,
        seed: 0xA0D0,
        miscalibrate: Some(4),
        shard_size: 4,
        ..FleetOptions::default()
    };
    // The set the derivation plants (recomputable by any chasing tool).
    let expected: Vec<u64> = (0..opts.sessions)
        .filter(|&i| derive::is_miscalibrated(derive::vehicle_seed(opts.seed, i), 4))
        .collect();
    assert_eq!(expected, vec![6, 11], "derivation golden moved");

    let p = plan(opts.clone());
    let outcomes: Vec<_> = (0..p.shard_count()).map(|s| p.run_shard(s)).collect();
    let report = fold(&p, &outcomes).expect("no session may fail");

    // Detection is exact: every planted unit vetoed, nothing else.
    let vetoed: Vec<u64> = report.vetoes.iter().map(|v| v.index).collect();
    assert_eq!(vetoed, expected);
    assert_eq!(report.planted, expected.len() as u64);
    for v in &report.vetoes {
        assert_eq!(v.seed, derive::vehicle_seed(opts.seed, v.index));
        assert_eq!(
            v.cohort,
            cohort::LEAN,
            "planted units claim the lean cohort"
        );
        assert!(
            v.rows.iter().any(|r| r.code == "FLEET-FLASH-RATE"),
            "the flash-rate finding is the detection signal: {:?}",
            v.rows
        );
    }
}

#[test]
fn seed_derivation_goldens() {
    // splitmix64 reference vector (Steele, Lea & Flood): first output of
    // the zero-seeded generator.
    assert_eq!(derive::splitmix64(0), 0xE220_A839_7B1D_CDAF);
    // Vehicle-seed goldens under fleet seed 0xA0D0 — the seed the CI
    // gate, EXPERIMENTS.md and the chasing recipe all use.
    assert_eq!(derive::vehicle_seed(0xA0D0, 0), 0x1C78_09FC_6A9F_D028);
    assert_eq!(derive::vehicle_seed(0xA0D0, 434), 0xA0F3_DCE2_F2FF_939B);
    // The 1-in-1000 plant of the documented 1000-session run is exactly
    // unit #434.
    let planted: Vec<u64> = (0..1000)
        .filter(|&i| derive::is_miscalibrated(derive::vehicle_seed(0xA0D0, i), 1000))
        .collect();
    assert_eq!(planted, vec![434]);
    // Derived specs are pure and complete.
    let v = derive::vehicle(0xA0D0, 434, 0.001, Some(1000));
    assert!(v.miscalibrated);
    assert_eq!(v.cohort, cohort::LEAN);
    assert_eq!(v, derive::vehicle(0xA0D0, 434, 0.001, Some(1000)));
}
