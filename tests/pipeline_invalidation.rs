//! Pipeline predecode invalidation and fast-path observability tests.
//!
//! The cycle-level pipeline's predecoded-block fast path
//! (`audo_tricore::pipeline`) must be invisible: identical cycle count,
//! architectural results, stall decomposition, event stream and MCDS trace
//! bytes — including when code memory is written under the cache's feet.
//! This mirrors `tests/decode_cache_invalidation.rs` one tier down, where
//! the extra wrinkle is the fetch pipeline itself: bytes already sitting
//! in the fetch buffer legitimately predate a store (hardware prefetch),
//! so the reference for every scenario is the *uncached* pipeline, not the
//! ISS.
//!
//! 1. a **store into an already cached block** re-entered by a loop,
//! 2. a **calibration-overlay swap** applied while the core idles in
//!    `WAIT`, resumed by an interrupt,
//! 3. the pinned seed programs from `seed_regressions.rs`, replayed
//!    cache-on vs. cache-off,
//! 4. MCDS byte identity on branchy and self-modifying programs.

use audo_common::{Addr, Cycle, EventRecord, EventSink, SourceId};
use audo_mcds::select::{EventClass, EventSelector};
use audo_mcds::{Basis, Mcds, RateProbe};
use audo_tricore::arch::init_csa_list;
use audo_tricore::asm::assemble;
use audo_tricore::bus::TestBus;
use audo_tricore::{Core, CoreConfig, PipelineStats};

fn prepared(src: &str, fast: bool) -> (Core, TestBus) {
    let image = assemble(src).expect("assembles");
    let mut bus = TestBus::new();
    bus.mem.add_region(Addr(0x8000_0000), 0x1_0000);
    bus.mem.add_region(Addr(0xD000_0000), 0x1_0000);
    image.load_into(&mut bus.mem).unwrap();
    let mut core = Core::new(CoreConfig::default(), image.entry(), SourceId::TRICORE);
    core.set_fast_path(fast);
    core.arch_mut().fcx = init_csa_list(&mut bus.mem, Addr(0xD000_8000), 32).unwrap();
    (core, bus)
}

struct RunOut {
    cycles: u64,
    retired: u64,
    stats: PipelineStats,
    d: [u32; 16],
    a: [u32; 16],
    events: Vec<EventRecord>,
}

fn run_to_halt(src: &str, fast: bool) -> RunOut {
    let (mut core, mut bus) = prepared(src, fast);
    let mut sink = EventSink::new();
    let mut events = Vec::new();
    let mut cyc = 0u64;
    while !core.is_halted() {
        assert!(cyc < 1_000_000, "program did not halt");
        core.step(Cycle(cyc), &mut bus, None, &mut sink)
            .expect("no fault");
        events.append(&mut sink.drain());
        cyc += 1;
    }
    RunOut {
        cycles: cyc,
        retired: core.retired_total(),
        stats: *core.stats(),
        d: core.arch().d,
        a: core.arch().a,
        events,
    }
}

fn run_both_ways(src: &str) -> (RunOut, RunOut) {
    (run_to_halt(src, false), run_to_halt(src, true))
}

/// Everything but the predecode cache's own hit/miss counters must match
/// (with the fast path off the cache is never consulted).
fn assert_identical(slow: &RunOut, fast: &RunOut, ctx: &str) {
    assert_eq!(slow.cycles, fast.cycles, "cycle count: {ctx}");
    assert_eq!(slow.retired, fast.retired, "retired count: {ctx}");
    assert_eq!(slow.d, fast.d, "data regs: {ctx}");
    assert_eq!(slow.a, fast.a, "address regs: {ctx}");
    assert_eq!(slow.events, fast.events, "event stream: {ctx}");
    let mut normalized = fast.stats;
    normalized.predecode = slow.stats.predecode;
    assert_eq!(normalized, slow.stats, "stall decomposition: {ctx}");
}

/// Assembles a single instruction and returns its encoding bytes.
fn encoding_of(line: &str) -> Vec<u8> {
    let img = assemble(&format!(".org 0x80001000\n    {line}\n")).unwrap();
    img.bytes_at(Addr(0x8000_1000), img.size()).unwrap()
}

/// Emits assembly that stores `enc` (a 2- or 4-byte instruction encoding)
/// over the code at the address held in `a2`, via halfword stores.
fn emit_patch_stores(enc: &[u8]) -> String {
    let lo = u16::from_le_bytes([enc[0], enc[1]]);
    let mut s = format!("    li d14, {lo}\n    st.h d14, [a2+0]\n");
    if enc.len() == 4 {
        let hi = u16::from_le_bytes([enc[2], enc[3]]);
        s.push_str(&format!("    li d14, {hi}\n    st.h d14, [a2+2]\n"));
    }
    s
}

/// A store rewrites an instruction in an **already cached** block (the
/// loop body executed once before the patch lands): on re-entry the stale
/// predecoded block must be invalidated and the patched bytes decoded
/// fresh, exactly like the uncached pipeline refetching them.
#[test]
fn store_into_cached_block_invalidates_on_reentry() {
    let patched = encoding_of("movi d1, 99");
    let src = format!(
        "
        .org 0x80000000
    _start:
        la a2, victim
        movi d3, 0
        movi d15, 2
        mov.a a5, d15
    L0:
    victim:
        movi d1, 11
        add d3, d3, d1
{patch}
        loop a5, L0
        halt
    ",
        patch = emit_patch_stores(&patched),
    );
    let (slow, fast) = run_both_ways(&src);
    // Pass 1 adds the original 11, pass 2 the patched 99. The back edge
    // flushes the fetch pipeline, so both modes see the patch on re-entry.
    assert_eq!(slow.d[3], 110, "patched loop body executed");
    assert!(
        fast.stats.predecode.invalidations + fast.stats.loop_buffer_invalidations >= 1,
        "the patched loop body must invalidate a cached copy: {:?}",
        fast.stats
    );
    assert_identical(&slow, &fast, "store into cached block");
}

/// Calibration-overlay swap mid-run: the program idles in `WAIT` between
/// passes; the host patches an alternative calibration immediate over the
/// code with [`audo_tricore::Image::overlay_into`] and wakes the core with
/// an interrupt. Both pipelines must execute the swapped instruction.
#[test]
fn overlay_swap_while_waiting_takes_effect() {
    let src = "
        .org 0x80000000
    _start:
        li d0, 0x80002000   ; BIV
        mtcr biv, d0
        enable
        movi d3, 0
        movi d15, 2
        mov.a a5, d15
    L0:
    hook:
        movi d1, 11
        add d3, d3, d1
        wait
        loop a5, L0
        halt

        ; priority 1 vector at BIV + 32
        .org 0x80002000 + 32
        movi d2, 9
        rfe
    ";
    let hook = assemble(src).unwrap().symbol("hook").unwrap();
    let run = |fast: bool| {
        let (mut core, mut bus) = prepared(src, fast);
        let mut sink = EventSink::new();
        let mut events = Vec::new();
        let mut overlaid = false;
        let mut cyc = 0u64;
        while !core.is_halted() {
            assert!(cyc < 1_000_000, "program did not halt (fast={fast})");
            // First time the core idles: swap the overlay, then wake it.
            let irq = if core.is_idle() && !overlaid {
                let overlay = assemble(&format!(".org {:#x}\n    movi d1, 22\n", hook.0)).unwrap();
                let written = overlay.overlay_into(&mut bus.mem, hook, 4).unwrap();
                assert!(written > 0, "overlay window covered the hook");
                overlaid = true;
                Some(1)
            } else if core.is_idle() {
                Some(1)
            } else {
                None
            };
            core.step(Cycle(cyc), &mut bus, irq, &mut sink)
                .expect("no fault");
            events.append(&mut sink.drain());
            cyc += 1;
        }
        assert!(overlaid, "core never idled (fast={fast})");
        (cyc, core.arch().d, events)
    };
    let (slow_cycles, slow_d, slow_events) = run(false);
    let (fast_cycles, fast_d, fast_events) = run(true);
    // Pass 1 adds the original 11, pass 2 the swapped 22.
    assert_eq!(slow_d[3], 33, "overlay took effect");
    assert_eq!(slow_cycles, fast_cycles, "overlay swap cycle count");
    assert_eq!(slow_d, fast_d, "overlay swap data regs");
    assert_eq!(slow_events, fast_events, "overlay swap event stream");
}

/// The committed proptest regression seeds from `tests/seed_regressions.rs`
/// (sub-word stores on conditional arms inside hardware loops), replayed
/// through the pipeline cache-on vs. cache-off. Sources duplicated
/// verbatim — integration test binaries cannot import from each other.
#[test]
fn pinned_seed_programs_agree_cache_on_vs_off() {
    let seeds: Vec<String> = vec![
        "
        .org 0x80000000
    _start:
        la a2, 0xD0000100
        la a3, 0xD0000200
        la sp, 0xD0004000
        movi d0, 3
        movi d1, -7
        movi d2, 11
        movi d3, 127
        movi d4, -1
        movi d5, 9
        movi d6, 0
        movi d7, 5
        movi d15, 1
        mov.a a5, d15
    L0:
        jz d0, L1
        st.h d0, [a3+0]
        j L2
    L1:
        add d0, d0, d0
    L2:
        loop a5, L0
        ld.hu d1, [a3+0]
        halt
    leaf_a:
        addi d6, d6, 1
        xor d5, d5, d6
        ret
    leaf_b:
        add d5, d5, d7
        ret
    "
        .to_string(),
        "
        .org 0x80000000
    _start:
        la a3, 0xD0000200
        movi d0, 0
        movi d15, 2
        mov.a a5, d15
    L0:
        jz d0, L1
        st.h d0, [a3+0]
        j L2
    L1:
        add d0, d0, d0
        addi d0, d0, 5
    L2:
        loop a5, L0
        ld.hu d1, [a3+0]
        halt
    "
        .to_string(),
    ];
    // The st.h/st.b width matrix from `subword_stores_on_both_paths_all_widths`.
    let widths = [
        (true, "st.h d2, [a3+0]", "ld.hu d4, [a3+0]", 0x0001_ABCDu32),
        (false, "st.h d2, [a3+2]", "ld.h d4, [a3+2]", 0x0000_8001),
        (true, "st.b d2, [a3+1]", "ld.bu d4, [a3+1]", 0x0000_01FE),
        (false, "st.b d2, [a3+3]", "ld.b d4, [a3+3]", 0x0000_0080),
    ];
    let mut all = seeds;
    for (taken, store, load, val) in widths {
        let d0 = u32::from(!taken);
        all.push(format!(
            "
        .org 0x80000000
    _start:
        la a3, 0xD0000200
        movi d0, {d0}
        li d2, {val}
        movi d3, 0
        movi d15, 2
        mov.a a5, d15
    L0:
        jz d0, L1
        {not_taken_insn}
        j L2
    L1:
        {taken_insn}
    L2:
        addi d3, d3, 1
        loop a5, L0
        {load}
        halt
    ",
            taken_insn = if taken { store } else { "add d5, d5, d5" },
            not_taken_insn = if taken { "add d5, d5, d5" } else { store },
        ));
    }
    for src in &all {
        let (slow, fast) = run_both_ways(src);
        assert_identical(&slow, &fast, src);
    }
}

/// Encodes a pipeline event stream through a fully armed MCDS (program
/// trace plus an instruction-rate probe) and returns the raw trace bytes.
fn mcds_trace_bytes(events: &[EventRecord]) -> Vec<u8> {
    let mut mcds = Mcds::builder()
        .program_trace()
        .probe(RateProbe {
            event: EventSelector::of(EventClass::InstrRetired).from(SourceId::TRICORE),
            basis: Basis::Cycles(4),
            group: None,
        })
        .build()
        .unwrap();
    let mut out = Vec::new();
    let last = events.last().map_or(0, |e| e.cycle.0);
    let mut i = 0;
    for cy in 0..=last {
        let start = i;
        while i < events.len() && events[i].cycle.0 == cy {
            i += 1;
        }
        mcds.observe(Cycle(cy), &events[start..i], &[], &mut out);
    }
    out
}

/// The acceptance bar from the issue: MCDS trace output is **byte
/// identical** with the pipeline fast path on vs. off, on a branchy
/// program exercising flow messages and a self-modifying one exercising
/// invalidation.
#[test]
fn mcds_trace_bytes_identical_fast_on_vs_off() {
    let branchy = "
        .org 0x80000000
    _start:
        la sp, 0xD0004000
        movi d0, 0
        movi d1, 9
    outer:
        call bump
        addi d1, d1, -1
        jnz d1, outer
        halt
    bump:
        addi d0, d0, 3
        ret
    "
    .to_string();
    let patched_enc = encoding_of("movi d1, 99");
    let self_mod = format!(
        "
        .org 0x80000000
    _start:
        la a2, victim
        movi d9, 3
    spin:
{patch}
        addi d9, d9, -1
        jnz d9, spin
    victim:
        movi d1, 11
        halt
    ",
        patch = emit_patch_stores(&patched_enc),
    );
    for src in [branchy, self_mod] {
        let (slow, fast) = run_both_ways(&src);
        assert_identical(&slow, &fast, &src);
        let slow_bytes = mcds_trace_bytes(&slow.events);
        let fast_bytes = mcds_trace_bytes(&fast.events);
        assert!(!slow_bytes.is_empty(), "trace produced bytes\n{src}");
        assert_eq!(slow_bytes, fast_bytes, "MCDS trace bytes\n{src}");
    }
}
