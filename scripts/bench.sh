#!/usr/bin/env bash
# Perf-trajectory driver: runs the Criterion suites and regenerates the
# machine-readable BENCH_*.json points. Run from anywhere.
#
# Wall-clock numbers measure *the simulator on this host*, not the modeled
# silicon. The container pinning this repo is single-CPU, so expect noisy
# absolute numbers; the recorded speedups are best-of-N ratios, which are
# far more stable than the raw times.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> criterion: cargo bench -p audo-bench"
cargo bench -p audo-bench --bench paper
cargo bench -p audo-bench --bench iss_throughput

echo "==> BENCH_iss.json (ISS decode-cache fast path speedup)"
cargo run --release -q -p audo-bench --bin iss_bench -- --json BENCH_iss.json

echo "==> BENCH_obs.json (instrumentation overhead vs the fresh baseline)"
# Runs right after BENCH_iss.json so baseline and measurement share the
# same machine state; the instrumentation-disabled fast path must stay
# within 2% (geomean) of the recorded baseline.
cargo run --release -q -p audo-bench --bin iss_bench -- \
    --obs-json BENCH_obs.json --baseline BENCH_iss.json

echo "==> BENCH_pipeline.json (pipeline predecoded fast path speedup)"
# Verifies cycle-identity between the cached and uncached pipeline before
# timing anything, then records best-of-reps speedups per workload.
cargo run --release -q -p audo-bench --bin pipeline_bench -- --json BENCH_pipeline.json

echo "==> BENCH_profile.json (block-profiling overhead vs the fresh baselines)"
# Runs right after the ISS and pipeline baselines so all three share the
# same machine state. The profiling-off fast paths must stay within 2%
# (geomean) of the recorded baselines; the profiling-on cost is recorded
# as the measured overhead of the always-on sampling profiler.
cargo run --release -q -p audo-bench --bin profile -- \
    --overhead-json BENCH_profile.json \
    --iss-baseline BENCH_iss.json --pipeline-baseline BENCH_pipeline.json

echo "==> BENCH_experiments.json (paper experiment timings)"
cargo run --release -q -p audo-bench --bin experiments -- --json BENCH_experiments.json

echo "==> BENCH_fleet.json (fleet calibration sessions/sec)"
# 1000 derived sessions at the machine's parallelism; the deterministic
# report goes to /dev/null, only the wall-clock throughput is recorded.
cargo run --release -q -p audo-bench --bin fleet -- \
    --sessions 1000 --seed 0xA0D0 --json --bench-json BENCH_fleet.json >/dev/null

echo "==> BENCH_analyze.json (static analyzer blocks/sec)"
# Full static pipeline — CFG recovery through WCET/CSA bounds — over the
# three named workloads; images are built outside the timed region.
cargo run --release -q -p audo-bench --bin analyze -- --bench-json BENCH_analyze.json

echo "==> BENCH_fuzz.json (differential fuzz programs/sec)"
# 1000 generated programs plus the corpus, each through up to four tier
# configurations and the MCDS encode/decode check; the deterministic
# report goes to /dev/null. A divergence exits non-zero and stops the
# script — the perf artifact doubles as a long clean-run gate.
cargo run --release -q -p audo-bench --bin fuzz -- \
    --seed 0xBE9C --iterations 1000 --bench-json BENCH_fuzz.json >/dev/null

echo "bench artifacts written."
