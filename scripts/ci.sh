#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 verification the
# roadmap defines (release build + full test suite). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets --workspace -- -D warnings"
cargo clippy --all-targets --workspace -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test --workspace -q"
cargo test --workspace -q

echo "==> rustdoc gate: cargo doc --no-deps (warnings are errors)"
# Vendored dependency stand-ins (vendor/*) are workspace members but not
# ours to document; gate only the audo crates.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude serde --exclude serde_derive --exclude proptest \
    --exclude rand --exclude criterion

echo "CI green."
