#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 verification the
# roadmap defines (release build + full test suite). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets --workspace -- -D warnings"
cargo clippy --all-targets --workspace -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (incl. slow fault matrices): cargo test -q --workspace -- --include-ignored"
cargo test -q --workspace -- --include-ignored

echo "==> dap test-module gate: every crates/dap/src/*.rs has #[cfg(test)]"
# Coverage-tool-free stand-in for a line-coverage floor: the tool-link
# protocol sources must each carry their own unit-test module.
for f in crates/dap/src/*.rs; do
    if ! grep -q '#\[cfg(test)\]' "$f"; then
        echo "missing #[cfg(test)] module: $f" >&2
        exit 1
    fi
done

echo "==> observability gate: generate one trace export and validate it"
# The exports are timestamped in simulated cycles, so this also exercises
# the determinism contract end to end (tests/obs_determinism.rs pins the
# byte-identity; here we check the on-disk artifacts are well-formed).
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
./target/release/experiments --filter E2,E9 \
    --trace-out "$obs_dir/trace.json" \
    --metrics-out "$obs_dir/metrics.txt" \
    --flame-out "$obs_dir/flame.txt" >/dev/null
python3 - "$obs_dir" <<'EOF'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "trace.json")))
events = trace["traceEvents"]
assert events, "trace export has no events"
for e in events:
    for key in ("ph", "pid"):
        assert key in e, f"trace event missing {key!r}: {e}"
    if e["ph"] != "M":  # metadata events carry no timestamp
        assert "ts" in e, f"trace event missing 'ts': {e}"
metrics = open(os.path.join(d, "metrics.txt")).read()
assert metrics.strip(), "metrics snapshot is empty"
assert "# TYPE" in metrics, "metrics snapshot has no TYPE lines"
flame = open(os.path.join(d, "flame.txt")).read()
assert flame.strip(), "flame export is empty"
print(f"obs exports valid: {len(events)} trace events, "
      f"{len(metrics.splitlines())} metric lines, "
      f"{len(flame.splitlines())} folded stacks")
EOF

echo "==> rustdoc gate: cargo doc --no-deps (warnings are errors)"
# Vendored dependency stand-ins (vendor/*) are workspace members but not
# ours to document; gate only the audo crates.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude serde --exclude serde_derive --exclude proptest \
    --exclude rand --exclude criterion

echo "CI green."
