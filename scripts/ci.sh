#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 verification the
# roadmap defines (release build + full test suite). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets --workspace -- -D warnings"
cargo clippy --all-targets --workspace -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (incl. slow fault matrices): cargo test -q --workspace -- --include-ignored"
cargo test -q --workspace -- --include-ignored

echo "==> dap test-module gate: every crates/dap/src/*.rs has #[cfg(test)]"
# Coverage-tool-free stand-in for a line-coverage floor: the tool-link
# protocol sources must each carry their own unit-test module.
for f in crates/dap/src/*.rs; do
    if ! grep -q '#\[cfg(test)\]' "$f"; then
        echo "missing #[cfg(test)] module: $f" >&2
        exit 1
    fi
done

echo "==> rustdoc gate: cargo doc --no-deps (warnings are errors)"
# Vendored dependency stand-ins (vendor/*) are workspace members but not
# ours to document; gate only the audo crates.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude serde --exclude serde_derive --exclude proptest \
    --exclude rand --exclude criterion

echo "CI green."
