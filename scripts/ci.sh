#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the tier-1 verification the
# roadmap defines (release build + full test suite). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets --workspace -- -D warnings"
cargo clippy --all-targets --workspace -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests (incl. slow fault matrices): cargo test -q --workspace -- --include-ignored"
cargo test -q --workspace -- --include-ignored

echo "==> dap test-module gate: every crates/dap/src/*.rs has #[cfg(test)]"
# Coverage-tool-free stand-in for a line-coverage floor: the tool-link
# protocol sources must each carry their own unit-test module.
for f in crates/dap/src/*.rs; do
    if ! grep -q '#\[cfg(test)\]' "$f"; then
        echo "missing #[cfg(test)] module: $f" >&2
        exit 1
    fi
done

echo "==> observability gate: generate one trace export and validate it"
# The exports are timestamped in simulated cycles, so this also exercises
# the determinism contract end to end (tests/obs_determinism.rs pins the
# byte-identity; here we check the on-disk artifacts are well-formed).
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
./target/release/experiments --filter E2,E9 \
    --trace-out "$obs_dir/trace.json" \
    --metrics-out "$obs_dir/metrics.txt" \
    --flame-out "$obs_dir/flame.txt" >/dev/null
python3 - "$obs_dir" <<'EOF'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "trace.json")))
events = trace["traceEvents"]
assert events, "trace export has no events"
for e in events:
    for key in ("ph", "pid"):
        assert key in e, f"trace event missing {key!r}: {e}"
    if e["ph"] != "M":  # metadata events carry no timestamp
        assert "ts" in e, f"trace event missing 'ts': {e}"
metrics = open(os.path.join(d, "metrics.txt")).read()
assert metrics.strip(), "metrics snapshot is empty"
assert "# TYPE" in metrics, "metrics snapshot has no TYPE lines"
flame = open(os.path.join(d, "flame.txt")).read()
assert flame.strip(), "flame export is empty"
print(f"obs exports valid: {len(events)} trace events, "
      f"{len(metrics.splitlines())} metric lines, "
      f"{len(flame.splitlines())} folded stacks")
EOF

echo "==> determinism gate: no wall-clock or unordered containers in export paths"
# The observability exporters and the benchmark report/json renderers are
# contractually byte-identical across runs and machines: no wall-clock
# reads, no iteration over randomized-order containers. (Duration is a
# plain value type and stays allowed.)
det_files=(crates/obs/src/*.rs crates/bench/src/json.rs crates/bench/src/report.rs)
if grep -nE 'SystemTime|Instant::now|HashMap|HashSet' "${det_files[@]}"; then
    echo "nondeterminism source in an export path (see lines above)" >&2
    exit 1
fi
if grep -nE 'std::time::' "${det_files[@]}" | grep -v 'std::time::Duration'; then
    echo "wall-clock use in an export path (see lines above)" >&2
    exit 1
fi

echo "==> allow-audit gate: every #[allow(..)] carries a // reason: comment"
# Lint suppressions must say why they are sound, on the same line or the
# line directly above, so stale ones are visible in review.
python3 - <<'EOF'
import pathlib, sys
bad = []
for root in ("crates", "src", "tests", "examples"):
    for path in sorted(pathlib.Path(root).rglob("*.rs")):
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            if "#[allow(" not in line:
                continue
            ok = "// reason:" in line
            # Walk up through the contiguous comment block above.
            j = i - 1
            while not ok and j >= 0 and lines[j].lstrip().startswith("//"):
                ok = "// reason:" in lines[j]
                j -= 1
            if not ok:
                bad.append(f"{path}:{i + 1}: {line.strip()}")
if bad:
    print("allow without a // reason: comment:", *bad, sep="\n  ", file=sys.stderr)
    sys.exit(1)
print("allow-audit gate passed")
EOF

echo "==> static analyzer gate: stock image clean, goldens pinned, veto live"
# The committed goldens are checked by `cargo test --test analyze_golden`
# above (refresh with ANALYZE_GOLDEN_REGEN=1 after intentional changes);
# here we exercise the CLI surface: a clean image exits 0 and a
# deliberately divergent snapshot trips the non-zero divergence veto.
an_dir="$(mktemp -d)"
./target/release/analyze --workload engine --config tc1797 >"$an_dir/report.txt"
grep -q '0 error(s)' "$an_dir/report.txt"
cat >"$an_dir/bogus_metrics.txt" <<'EOF'
audo_soc_tricore_instructions_retired 100000
audo_soc_flash_buffer_hits 90000
audo_soc_flash_buffer_misses 9000
audo_soc_tricore_ipc 2.9
EOF
if ./target/release/analyze --workload engine:dspr-bg --config tc1767 \
    --check-against "$an_dir/bogus_metrics.txt" >/dev/null; then
    echo "analyzer failed to veto a divergent snapshot" >&2
    exit 1
fi
rm -rf "$an_dir"
echo "analyzer gate passed"

echo "==> wcet gate: corpus soundness sweep, crafted CSA overflow vetoed, fuzz check clean"
# The static WCET/CSA bounds are gated against measured execution: the
# corpus-wide soundness sweep must hold on both tiers (and the engine
# WCET golden must match; refresh with WCET_GOLDEN_REGEN=1), the crafted
# 50-deep call chain must trip the CSA-OVERFLOW veto against the
# platform's 48-frame free list, and a fuzz session holding every
# agreeing program to its static bound must come back clean at any
# worker count.
cargo test -q --test wcet_soundness
wc_status=0
./target/release/analyze --asm workloads/csa_overflow.s --wcet \
    >/tmp/wcet_overflow.txt || wc_status=$?
if [ "$wc_status" -ne 2 ]; then
    echo "CSA overflow image: expected exit 2, got $wc_status" >&2
    exit 1
fi
grep -q 'CSA-OVERFLOW' /tmp/wcet_overflow.txt
./target/release/analyze --asm workloads/csa_overflow.s --wcet \
    --csa-frames 64 >/dev/null
./target/release/analyze --workload engine --config tc1797 \
    --wcet --check-profile >/tmp/wcet_profile.txt
grep -q ': sound' /tmp/wcet_profile.txt
wz_dir="$(mktemp -d)"
./target/release/fuzz --seed 0xF00D --iterations 64 --round 32 \
    --check-wcet --jobs 2 >"$wz_dir/j2.txt"
./target/release/fuzz --seed 0xF00D --iterations 64 --round 32 \
    --check-wcet --jobs 1 >"$wz_dir/j1.txt"
cmp "$wz_dir/j1.txt" "$wz_dir/j2.txt"
grep -q 'result: CLEAN' "$wz_dir/j1.txt"
rm -rf "$wz_dir" /tmp/wcet_overflow.txt /tmp/wcet_profile.txt
echo "wcet gate passed"

echo "==> pipeline fast-path gate: cached vs uncached byte-identical"
# The predecoded-block fast path may only change wall time: a stock engine
# workload on the full SoC must produce the same cycles, events, bus
# transactions, registers and rendered metrics with the cache on and off.
./target/release/pipeline_check

echo "==> fleet gate: clean fleet exits 0, planted unit vetoed, --jobs byte-identical"
# The fleet report is a pure function of its options: a small healthy
# fleet must self-check clean inside every cohort's static envelope, the
# worker count must not leak one byte into the report, and a planted
# miscalibrated unit must trip the exit-2 divergence veto, named by seed
# and finding code (tests/fleet_determinism.rs pins the derivation).
fl_dir="$(mktemp -d)"
./target/release/fleet --sessions 48 --seed 0xA0D0 --jobs 2 --json >"$fl_dir/clean_j2.json"
./target/release/fleet --sessions 48 --seed 0xA0D0 --jobs 1 --json >"$fl_dir/clean_j1.json"
cmp "$fl_dir/clean_j2.json" "$fl_dir/clean_j1.json"
if ./target/release/fleet --sessions 12 --seed 0xA0D0 --miscalibrate 1/4 \
    --json >"$fl_dir/planted.json"; then
    echo "fleet failed to veto a planted miscalibrated unit" >&2
    exit 1
fi
grep -q 'FLEET-FLASH-RATE' "$fl_dir/planted.json"
grep -q '"seed":"0x' "$fl_dir/planted.json"
rm -rf "$fl_dir"
echo "fleet gate passed"

echo "==> fuzz gate: clean differential session, --jobs byte-identical, injected fault pinned"
# The differential fuzzer's report is a pure function of --seed and
# --iterations: the worker count must not leak one byte into stdout, a
# healthy tree must come back CLEAN over the corpus plus generated
# programs, and an injected tier fault must exit 2 with a minimized
# literate reproducer pinned (tests/fuzz_determinism.rs pins the same
# contract at the library level).
fz_dir="$(mktemp -d)"
./target/release/fuzz --seed 0xF00D --iterations 64 --round 32 --jobs 2 >"$fz_dir/j2.txt"
./target/release/fuzz --seed 0xF00D --iterations 64 --round 32 --jobs 1 >"$fz_dir/j1.txt"
cmp "$fz_dir/j1.txt" "$fz_dir/j2.txt"
grep -q 'result: CLEAN' "$fz_dir/j1.txt"
fz_status=0
./target/release/fuzz --seed 0xF00D --iterations 24 --round 8 \
    --inject-fault mul --pin-dir "$fz_dir/pins" >"$fz_dir/fault.txt" || fz_status=$?
if [ "$fz_status" -ne 2 ]; then
    echo "injected fault: expected exit 2 (divergence), got $fz_status" >&2
    exit 1
fi
grep -q 'result: DIVERGED' "$fz_dir/fault.txt"
grep -q 'mul' "$fz_dir"/pins/*.md
rm -rf "$fz_dir"
echo "fuzz gate passed"

echo "==> profile gate: golden pinned, attribution exact, self-compare zero, --jobs byte-identical"
# The block profiler's report is a pure function of the workload and
# tier. The committed hot-block golden and the generation-bump test are
# pinned by the dedicated suite; the CLI surface must machine-check the
# cycle-attribution identity on a full workload, a self-compare must
# show all-zero deltas (parser/renderer round trip), and the worker
# count must not leak one byte into a multi-workload report.
cargo test -q --test profile_determinism
pf_dir="$(mktemp -d)"
./target/release/profile --workload engine --tier pipeline \
    --json "$pf_dir/engine.json" >"$pf_dir/report.txt"
grep -q '(exact)' "$pf_dir/report.txt"
grep -q 'hot blocks:' "$pf_dir/report.txt"
./target/release/profile --compare "$pf_dir/engine.json" "$pf_dir/engine.json" \
    >"$pf_dir/self.txt"
grep -q ' 0 of .* blocks differ' "$pf_dir/self.txt"
./target/release/profile --workload engine,transmission,chassis --jobs 4 >"$pf_dir/j4.txt"
./target/release/profile --workload engine,transmission,chassis --jobs 1 >"$pf_dir/j1.txt"
cmp "$pf_dir/j4.txt" "$pf_dir/j1.txt"
rm -rf "$pf_dir"
echo "profile gate passed"

echo "==> missing-docs gate: operator-surface crates deny undocumented items"
# The documented operator surface (observability, static analysis, fleet
# service) must carry #![warn(missing_docs)]; the rustdoc gate below turns
# those warnings into errors.
for f in crates/common crates/mcds crates/obs crates/analyze crates/fleet \
         crates/asm crates/fuzz; do
    if ! grep -q '^#!\[warn(missing_docs)\]' "$f/src/lib.rs"; then
        echo "missing #![warn(missing_docs)]: $f/src/lib.rs" >&2
        exit 1
    fi
done
# The profile data model rides inside audo-obs (covered above); the
# WCET analyzer modules and the operator-facing CLI binaries must at
# least open with module docs.
for f in crates/obs/src/profile.rs crates/bench/src/bin/profile.rs \
         crates/analyze/src/wcet.rs crates/analyze/src/loopbound.rs \
         crates/bench/src/bin/analyze.rs; do
    if ! head -1 "$f" | grep -q '^//!'; then
        echo "missing module docs (//!): $f" >&2
        exit 1
    fi
done
echo "missing-docs gate passed"

echo "==> rustdoc gate: cargo doc --no-deps (warnings are errors)"
# Vendored dependency stand-ins (vendor/*) are workspace members but not
# ours to document; gate only the audo crates.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace \
    --exclude serde --exclude serde_derive --exclude proptest \
    --exclude rand --exclude criterion

echo "CI green."
